//! The single-pass tree-walking code generator.

use std::collections::{HashMap, HashSet};

use s1lisp_analysis::{primop, tail_nodes_from};
use s1lisp_annotate::{Annotations, LambdaStrategy, Rep, VarAlloc};
use s1lisp_ast::{clip_form, CallFunc, Lambda, NodeId, NodeKind, ProgItem, Tree, VarId};
use s1lisp_interp::Value;
use s1lisp_reader::{Datum, Symbol};
use s1lisp_s1sim::{
    Asm, CallTarget, Cond, FuncCode, Insn, Label, Operand, Program, Reg, Tag, Word,
};
use s1lisp_tnbind::{pack, pack_backtracking, Location, PackRequest, TnId, TnPool};
use s1lisp_trace::{NullSink, TraceSink};

use crate::CodegenOptions;

/// A code-generation failure (unsupported construct, internal limit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// What went wrong.
    pub message: String,
}

impl CodegenError {
    fn new(m: impl Into<String>) -> CodegenError {
        CodegenError { message: m.into() }
    }
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

type R<T> = Result<T, CodegenError>;

/// Compiles the function whose tree is `tree` (root must be a lambda)
/// into `program`, along with every closure body it contains.
///
/// # Errors
///
/// Returns a [`CodegenError`] for constructs outside the compilable
/// subset (`go` across a closure boundary, `&optional` in a `let`, …).
pub fn compile(name: &str, tree: &Tree, program: &mut Program, opts: &CodegenOptions) -> R<()> {
    compile_traced(name, tree, program, opts, &mut NullSink)
}

/// [`compile`], recording per-phase telemetry into `sink`: one span per
/// Table 1 annotation phase, a "Target annotation" span per function
/// around TN packing, and "Code generation" spans around each emit pass
/// (functions whose packing promotes variables are emitted twice, so
/// they contribute two spans — the counters describe only the final
/// code).
///
/// # Errors
///
/// Same failure modes as [`compile`].
pub fn compile_traced(
    name: &str,
    tree: &Tree,
    program: &mut Program,
    opts: &CodegenOptions,
    sink: &mut dyn TraceSink,
) -> R<()> {
    // The three annotation phases, spanned and counted individually
    // (`Annotations::compute`, opened up for telemetry).
    let ann = Annotations::compute_traced(tree, name, sink);
    emit_annotated(name, tree, &ann, program, opts, sink)
}

/// The emission back half of the pipeline: TNBIND + code generation
/// over an already-annotated tree.  Runs the per-lambda work loop —
/// pass-1 emit, TN packing ("Target annotation" spans), and the pass-2
/// re-emit when packing promoted variables to registers — exactly as
/// [`compile_traced`] does after its annotation spans.  This is the
/// entry point the pass manager uses, with the annotations carried in
/// the unit state rather than recomputed here.
///
/// # Errors
///
/// Same failure modes as [`compile`].
pub fn emit_annotated(
    name: &str,
    tree: &Tree,
    ann: &Annotations,
    program: &mut Program,
    opts: &CodegenOptions,
    sink: &mut dyn TraceSink,
) -> R<()> {
    let mut counter = 0u32;
    let mut work: Vec<(String, NodeId, Vec<VarId>)> = vec![(name.to_string(), tree.root, vec![])];
    while let Some((fname, lambda, captures)) = work.pop() {
        let code = compile_lambda(
            tree,
            ann,
            &fname,
            lambda,
            &captures,
            program,
            opts,
            &mut work,
            &mut counter,
            sink,
        )?;
        program.define(code);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn compile_lambda(
    tree: &Tree,
    ann: &Annotations,
    fname: &str,
    lambda: NodeId,
    captures: &[VarId],
    program: &mut Program,
    opts: &CodegenOptions,
    work: &mut Vec<(String, NodeId, Vec<VarId>)>,
    counter: &mut u32,
    sink: &mut dyn TraceSink,
) -> R<FuncCode> {
    // Pass 1: emit with every variable in a frame slot, recording TN
    // lifetimes and call sites.
    let counter_start = *counter;
    let sp = sink.span_begin("Code generation", fname);
    let mut g = Gen::new(
        tree, ann, fname, lambda, captures, program, opts, work, counter,
    );
    let (code, pool, var_tn) = g.emit()?;
    let metrics = std::mem::take(&mut g.metrics);
    if !opts.register_allocation {
        metrics.report(sink, &code);
        sink.span_end(sp);
        return Ok(code);
    }
    sink.span_end(sp);
    // TNBIND: pack, then re-emit with winning variables promoted to
    // registers.
    let sp_tn = sink.span_begin("Target annotation", fname);
    let req = PackRequest::default();
    let packing = if opts.backtracking_pack {
        pack_backtracking(&pool, &req, 8)
    } else {
        pack(&pool, &req)
    };
    let mut promote: HashMap<VarId, Reg> = HashMap::new();
    for (&var, &tn) in &var_tn {
        if let Location::Reg(r) = packing.location(tn) {
            promote.insert(var, Reg(r));
        }
    }
    if sink.enabled() {
        sink.add("tns", pool.len() as u64);
        sink.add("tns_in_registers", packing.in_registers as u64);
        sink.add("slots_used", u64::from(packing.slots_used));
        sink.add("vars_promoted", promote.len() as u64);
        // Conflict-graph size — O(n²), computed only when tracing.
        sink.add("conflict_edges", pool.conflict_edges());
        // The packing map itself, for dossiers: where each user
        // variable's TN landed.  Sorted by arena index for determinism.
        let mut map: Vec<(VarId, TnId)> = var_tn.iter().map(|(&v, &tn)| (v, tn)).collect();
        map.sort_by_key(|&(v, _)| v.index());
        for (v, tn) in map {
            let loc = match packing.location(tn) {
                Location::Reg(r) => format!("R{r}"),
                Location::Slot(s) => format!("slot {s}"),
            };
            sink.event(
                "tn",
                &format!("{} = TN{} -> {loc}", tree.var(v).name.as_str(), tn.index()),
            );
        }
    }
    sink.span_end(sp_tn);
    if promote.is_empty() {
        // Pass-1 code is final: its counters go in now, under a zero-
        // length span so they attribute to the right phase.
        if sink.enabled() {
            let sp = sink.span_begin("Code generation", fname);
            metrics.report(sink, &code);
            sink.span_end(sp);
        }
        return Ok(code);
    }
    // Closures discovered in pass 1 are already queued; pass 2 re-derives
    // the same names (same counter start) and its duplicates are dropped.
    let mark = work.len();
    *counter = counter_start;
    let sp = sink.span_begin("Code generation", fname);
    let mut g2 = Gen::new(
        tree, ann, fname, lambda, captures, program, opts, work, counter,
    );
    g2.promote = promote;
    let (code2, _, _) = g2.emit()?;
    g2.metrics.report(sink, &code2);
    sink.span_end(sp);
    work.truncate(mark);
    Ok(code2)
}

/// Counters the generator accumulates while emitting one function.
#[derive(Clone, Debug, Default)]
struct GenMetrics {
    /// Representation coercions that emitted code (ISREP ≠ WANTREP).
    coercions: u64,
    /// Coercions satisfied by a pdl (stack) box instead of a heap box.
    pdl_promotions: u64,
    /// Coercions that had to heap-box a flonum.
    heap_boxes: u64,
    /// Pointer→raw unboxings.
    unboxes: u64,
    /// One human-readable note per coercion, in emission order
    /// (reported as "coercion" events, the dossier's coercion list).
    notes: Vec<String>,
}

impl GenMetrics {
    fn report(&self, sink: &mut dyn TraceSink, code: &FuncCode) {
        if !sink.enabled() {
            return;
        }
        sink.add("insns_emitted", code.insns.len() as u64);
        sink.add("coercions", self.coercions);
        sink.add("pdl_promotions", self.pdl_promotions);
        sink.add("heap_boxes", self.heap_boxes);
        sink.add("unboxes", self.unboxes);
        for note in &self.notes {
            sink.event("coercion", note);
        }
    }
}

/// Where a variable's value lives at run time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VLoc {
    /// Frame slot (FP-relative).
    Slot(u16),
    /// Register (TNBIND promotion).
    Reg(Reg),
    /// Frame slot holding a heap value-cell pointer.
    Cell(u16),
    /// Closure environment slot (holds a cell pointer).
    Env(u16),
    /// Deep-bound special (by symbol id).
    Special(u32),
}

/// A value produced by expression generation: an operand plus ownership
/// of the scratch register / temp slot it may occupy.
#[derive(Clone, Copy, Debug)]
struct Val {
    op: Operand,
    reg: Option<Reg>,
    temp: Option<u16>,
}

impl Val {
    fn con(w: Word) -> Val {
        Val {
            op: Operand::Const(w),
            reg: None,
            temp: None,
        }
    }

    fn reg(r: Reg) -> Val {
        Val {
            op: Operand::Reg(r),
            reg: Some(r),
            temp: None,
        }
    }

    fn borrowed(op: Operand) -> Val {
        Val {
            op,
            reg: None,
            temp: None,
        }
    }
}

/// A local-function (join point) record.
#[derive(Clone, Debug)]
struct LocalFn {
    label: Label,
    tail_mode: bool,
    /// Parameter slots, in order.
    params: Vec<u16>,
}

/// An enclosing progbody context.
struct PbCtx {
    tags: Vec<(Symbol, Label)>,
    exit: Label,
    /// Result slot (None when the progbody is in tail position).
    result: Option<u16>,
    tail: bool,
}

struct Gen<'a> {
    tree: &'a Tree,
    ann: &'a Annotations,
    opts: &'a CodegenOptions,
    program: &'a mut Program,
    work: &'a mut Vec<(String, NodeId, Vec<VarId>)>,
    counter: &'a mut u32,
    fname: String,
    lambda: Lambda,
    tails: HashSet<NodeId>,
    asm: Asm,
    var_loc: HashMap<VarId, VLoc>,
    free_regs: Vec<Reg>,
    nslots: u16,
    temp_next: u16,
    temp_high: u16,
    free_temps: Vec<u16>,
    alloc_patch: Vec<usize>,
    body_label: Label,
    simple: bool,
    local_fns: HashMap<VarId, LocalFn>,
    blocks: Vec<(VarId, NodeId)>,
    pb_stack: Vec<PbCtx>,
    specials_bound: u16,
    spec_cache: HashMap<String, u16>,
    pool: TnPool,
    var_tn: HashMap<VarId, TnId>,
    promote: HashMap<VarId, Reg>,
    call_cache: HashMap<NodeId, bool>,
    metrics: GenMetrics,
}

impl<'a> Gen<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        tree: &'a Tree,
        ann: &'a Annotations,
        fname: &str,
        lambda: NodeId,
        captures: &[VarId],
        program: &'a mut Program,
        opts: &'a CodegenOptions,
        work: &'a mut Vec<(String, NodeId, Vec<VarId>)>,
        counter: &'a mut u32,
    ) -> Gen<'a> {
        let NodeKind::Lambda(l) = tree.kind(lambda).clone() else {
            panic!("compile_lambda on a non-lambda node");
        };
        let (_, maxa) = l.arity();
        let nslots = (maxa.unwrap_or(l.required.len() + l.optional.len())
            + usize::from(l.rest.is_some())) as u16;
        let mut var_loc = HashMap::new();
        for (i, &c) in captures.iter().enumerate() {
            var_loc.insert(c, VLoc::Env(i as u16));
        }
        let tails = tail_nodes_from(tree, lambda);
        Gen {
            tree,
            ann,
            opts,
            program,
            work,
            counter,
            fname: fname.to_string(),
            lambda: l,
            tails,
            asm: Asm::new(fname, nslots),
            var_loc,
            free_regs: (Reg::FIRST_GP..=15)
                .map(Reg)
                .chain([Reg::RTB, Reg::RTA])
                .collect(),
            nslots,
            temp_next: 0,
            temp_high: 0,
            free_temps: Vec::new(),
            alloc_patch: Vec::new(),
            body_label: 0,
            simple: true,
            local_fns: HashMap::new(),
            blocks: Vec::new(),
            pb_stack: Vec::new(),
            specials_bound: 0,
            spec_cache: HashMap::new(),
            pool: TnPool::new(),
            var_tn: HashMap::new(),
            promote: HashMap::new(),
            call_cache: HashMap::new(),
            metrics: GenMetrics::default(),
        }
    }

    // ---------------------------------------------------------- plumbing

    fn pos(&self) -> u32 {
        self.asm.len() as u32
    }

    fn err<T>(&self, m: impl Into<String>) -> R<T> {
        Err(CodegenError::new(format!("{}: {}", self.fname, m.into())))
    }

    fn rep_is(&self, n: NodeId) -> Rep {
        if self.opts.representation_analysis {
            self.ann.rep.is(n)
        } else {
            Rep::Pointer
        }
    }

    fn var_rep(&self, v: VarId) -> Rep {
        if self.opts.representation_analysis {
            self.ann
                .rep
                .var_rep
                .get(&v)
                .copied()
                .unwrap_or(Rep::Pointer)
        } else {
            Rep::Pointer
        }
    }

    fn alloc_reg(&mut self) -> Option<Reg> {
        // Prefer general registers; keep RTs for arithmetic when we can.
        if let Some(i) = self.free_regs.iter().position(|r| !r.is_rt()) {
            return Some(self.free_regs.remove(i));
        }
        self.free_regs.pop()
    }

    fn alloc_rt(&mut self) -> Option<Reg> {
        let i = self.free_regs.iter().position(|r| r.is_rt())?;
        Some(self.free_regs.remove(i))
    }

    fn free_reg(&mut self, r: Reg) {
        debug_assert!(!self.free_regs.contains(&r));
        self.free_regs.push(r);
    }

    fn alloc_temp(&mut self) -> u16 {
        let t = self.free_temps.pop().unwrap_or_else(|| {
            let t = self.temp_next;
            self.temp_next += 1;
            t
        });
        self.temp_high = self.temp_high.max(self.temp_next);
        t
    }

    /// A temp slot that lives until function exit (variables, pdl slots).
    fn alloc_temp_pinned(&mut self) -> u16 {
        let t = self.temp_next;
        self.temp_next += 1;
        self.temp_high = self.temp_high.max(self.temp_next);
        t
    }

    fn temp_op(&self, t: u16) -> Operand {
        Operand::Ind(Reg::FP, i32::from(self.nslots + t))
    }

    fn release(&mut self, v: Val) {
        if let Some(r) = v.reg {
            self.free_reg(r);
        }
        if let Some(t) = v.temp {
            self.free_temps.push(t);
        }
    }

    /// A fresh writable place: register if available, else a temp slot.
    fn alloc_place(&mut self) -> Val {
        match self.alloc_reg() {
            Some(r) => Val::reg(r),
            None => {
                let t = self.alloc_temp();
                Val {
                    op: self.temp_op(t),
                    reg: None,
                    temp: Some(t),
                }
            }
        }
    }

    /// Moves `v` into a place we own (for results that must survive
    /// arbitrary later code, e.g. values read out of register A).
    fn own(&mut self, v: Val) -> Val {
        if v.reg.is_some() || v.temp.is_some() {
            return v;
        }
        let dst = self.alloc_place();
        self.asm.push(Insn::Mov {
            dst: dst.op,
            src: v.op,
        });
        dst
    }

    /// Parks a value in a temp slot so it survives a call or a sibling
    /// assignment (constants need no protection).
    fn protect(&mut self, v: Val) -> Val {
        match v.op {
            Operand::Const(_) => v,
            _ => {
                let t = self.alloc_temp();
                let op = self.temp_op(t);
                self.asm.push(Insn::Mov { dst: op, src: v.op });
                self.release(v);
                Val {
                    op,
                    reg: None,
                    temp: Some(t),
                }
            }
        }
    }

    /// Must `v` be protected while the sibling expression runs?  Calls
    /// clobber scratch registers; assignments may change borrowed
    /// variable slots.
    fn sibling_unsafe(&mut self, sibling: NodeId) -> bool {
        if self.contains_call(sibling) {
            return true;
        }
        s1lisp_ast::subtree_nodes(self.tree, sibling)
            .iter()
            .any(|&n| matches!(self.tree.kind(n), NodeKind::Setq { .. }))
    }

    /// Does evaluating `node` possibly transfer control into user code
    /// (clobbering scratch registers)?
    fn contains_call(&mut self, node: NodeId) -> bool {
        if let Some(&c) = self.call_cache.get(&node) {
            return c;
        }
        let mut found = false;
        for n in s1lisp_ast::subtree_nodes(self.tree, node) {
            match self.tree.kind(n) {
                NodeKind::Call {
                    func: CallFunc::Global(g),
                    ..
                } if (primop(g.as_str()).is_none() || matches!(g.as_str(), "apply" | "throw")) => {
                    found = true;
                    break;
                }
                NodeKind::Call {
                    func: CallFunc::Expr(f),
                    ..
                } if !matches!(self.tree.kind(*f), NodeKind::Lambda(_)) => {
                    found = true;
                    break;
                }
                _ => {}
            }
        }
        self.call_cache.insert(node, found);
        found
    }

    // ------------------------------------------------------ entry points

    fn emit(&mut self) -> R<(FuncCode, TnPool, HashMap<VarId, TnId>)> {
        self.emit_prologue()?;
        self.gen_tail(self.lambda.body)?;
        while let Some((var, lambda_node)) = self.blocks.pop() {
            self.emit_block(var, lambda_node)?;
        }
        // Patch the temp-slot allocations.
        for &site in &self.alloc_patch.clone() {
            self.asm.patch(
                site,
                Insn::AllocSlots {
                    n: self.temp_high,
                    init: Word::Ptr(Tag::Gc, 12),
                },
            );
        }
        let code = std::mem::replace(&mut self.asm, Asm::new("done", 0)).finish();
        Ok((
            code,
            std::mem::take(&mut self.pool),
            std::mem::take(&mut self.var_tn),
        ))
    }

    fn emit_prologue(&mut self) -> R<()> {
        let l = self.lambda.clone();
        let req = l.required.len() as u16;
        let maxp = req + l.optional.len() as u16;
        self.simple = l.is_simple();
        // Provisional slot locations so optional defaults can reference
        // earlier parameters; special/heap/promoted upgrades happen after
        // the frame is normalized.
        for (i, p) in l.all_params().into_iter().enumerate() {
            self.var_loc.insert(p, VLoc::Slot(i as u16));
        }
        if self.simple {
            let ok = self.asm.label();
            self.asm.push(Insn::JmpIf {
                cond: Cond::Eq,
                a: Operand::Reg(Reg::RTA),
                b: Operand::Const(Word::Raw(i64::from(req))),
                target: ok,
            });
            self.asm.push(Insn::Trap {
                msg: "wrong number of arguments",
            });
            self.asm.bind(ok);
            self.body_label = self.asm.here();
            self.alloc_patch.push(self.asm.push(Insn::AllocSlots {
                n: 0,
                init: Word::NIL,
            }));
        } else {
            let body = self.asm.label();
            let trap = self.asm.label();
            let listify = l.rest.map(|_| self.asm.label());
            if let Some(listify) = listify {
                self.asm.push(Insn::JmpIf {
                    cond: Cond::Ge,
                    a: Operand::Reg(Reg::RTA),
                    b: Operand::Const(Word::Raw(i64::from(maxp))),
                    target: listify,
                });
            }
            // Dispatch on the argument count (Table 4's four-way
            // dispatch).
            let mut targets: Vec<Label> = Vec::new();
            let mut cases: Vec<Label> = Vec::new();
            for n in 0..=maxp {
                if n < req {
                    targets.push(trap);
                } else {
                    let c = self.asm.label();
                    targets.push(c);
                    cases.push(c);
                }
            }
            self.asm.push(Insn::Dispatch {
                src: Operand::Reg(Reg::RTA),
                targets,
            });
            self.asm.bind(trap);
            self.asm.push(Insn::Trap {
                msg: "wrong number of arguments",
            });
            // One case per supplied-argument count: allocate the missing
            // slots, compute defaults, join at the body ("there is code
            // customized to the number of arguments to set up the stack
            // frame and initialize parameters for which no arguments were
            // passed", §7).
            for (idx, case) in cases.into_iter().enumerate() {
                let supplied = req + idx as u16;
                self.asm.bind(case);
                let missing = (maxp - supplied) + u16::from(l.rest.is_some());
                if missing > 0 {
                    self.asm.push(Insn::AllocSlots {
                        n: missing,
                        init: Word::NIL,
                    });
                }
                self.alloc_patch.push(self.asm.push(Insn::AllocSlots {
                    n: 0,
                    init: Word::NIL,
                }));
                for j in supplied..maxp {
                    let opt = &l.optional[(j - req) as usize];
                    let rep = self.var_rep(opt.var);
                    let v = self.gen_into(opt.default, rep)?;
                    self.asm.push(Insn::Mov {
                        dst: Operand::arg(j),
                        src: v.op,
                    });
                    self.release(v);
                    // The slot is now usable by later defaults; register
                    // its location early.
                    self.var_loc.insert(opt.var, VLoc::Slot(j));
                }
                self.asm.push(Insn::Jmp { target: body });
            }
            if let (Some(listify), Some(_)) = (listify, l.rest) {
                self.asm.bind(listify);
                self.asm.push(Insn::ListifyArgs { fixed: maxp });
                self.alloc_patch.push(self.asm.push(Insn::AllocSlots {
                    n: 0,
                    init: Word::NIL,
                }));
                self.asm.push(Insn::Jmp { target: body });
            }
            self.asm.bind(body);
            self.body_label = body;
        }

        // Register parameter locations and handle special/heap params.
        let all = l.all_params();
        for (i, &p) in all.iter().enumerate() {
            let i = i as u16;
            match self.ann.binding.var_alloc.get(&p) {
                Some(VarAlloc::Special) => {
                    let sym = self.program.sym_id(self.tree.var(p).name.as_str());
                    self.asm.push(Insn::SpecBind {
                        sym,
                        src: Operand::arg(i),
                    });
                    self.specials_bound += 1;
                    self.var_loc.insert(p, VLoc::Special(sym));
                }
                Some(VarAlloc::Heap) => {
                    let slot = self.alloc_temp_pinned();
                    let dst = self.temp_op(slot);
                    self.asm.push(Insn::MakeCell {
                        dst,
                        src: Operand::arg(i),
                    });
                    self.var_loc.insert(p, VLoc::Cell(slot));
                }
                _ => {
                    // Declared raw representations: convert the incoming
                    // pointer-format argument once, in place.
                    if self.var_rep(p) == Rep::Swflo {
                        self.asm.push(Insn::UnboxFlo {
                            dst: Operand::arg(i),
                            src: Operand::arg(i),
                        });
                    }
                    // TNBIND promotion: pass 2 loads the parameter into
                    // its register once, here.
                    if let Some(&r) = self.promote.get(&p) {
                        self.asm.push(Insn::Mov {
                            dst: Operand::Reg(r),
                            src: Operand::arg(i),
                        });
                        self.var_loc.insert(p, VLoc::Reg(r));
                    } else {
                        let tn = *self
                            .var_tn
                            .entry(p)
                            .or_insert_with(|| self.pool.new_tn(self.tree.var(p).name.as_str()));
                        self.pool.record_use(tn, self.pos());
                        self.var_loc.insert(p, VLoc::Slot(i));
                    }
                }
            }
        }
        // Remove promoted registers from the scratch pool.
        let promoted: Vec<Reg> = self.promote.values().copied().collect();
        self.free_regs.retain(|r| !promoted.contains(r));

        // Cached special lookups ("on entry to a function, all the
        // special variables needed by that function are searched for once
        // and pointers to the relevant stack locations are cached in the
        // function's local activation frame", §4.4).
        if self.opts.cache_specials {
            let mut needed: Vec<String> = self
                .tree
                .var_ids()
                .filter(|&v| {
                    self.tree.var(v).special
                        && !self.tree.var(v).refs.is_empty()
                        && within_lambda(self.tree, v)
                })
                .map(|v| self.tree.var(v).name.as_str().to_string())
                .collect();
            needed.sort();
            needed.dedup();
            for name in needed {
                let sym = self.program.sym_id(&name);
                let slot = self.alloc_temp_pinned();
                let dst = self.temp_op(slot);
                self.asm.push(Insn::SpecLookup { dst, sym });
                self.spec_cache.insert(name, slot);
            }
        }
        Ok(())
    }

    // -------------------------------------------------------- variables

    fn record_var_use(&mut self, v: VarId) {
        if matches!(self.var_loc.get(&v), Some(VLoc::Slot(_))) {
            if let Some(&tn) = self.var_tn.get(&v) {
                self.pool.record_use(tn, self.pos());
            }
        }
    }

    fn load_var(&mut self, v: VarId) -> R<Val> {
        self.record_var_use(v);
        self.locate_lazily(v);
        let Some(&loc) = self.var_loc.get(&v) else {
            return self.err(format!("unlocated variable {}", self.tree.var(v).name));
        };
        Ok(match loc {
            VLoc::Slot(i) => Val::borrowed(Operand::Ind(Reg::FP, i32::from(i))),
            VLoc::Reg(r) => Val::borrowed(Operand::Reg(r)),
            VLoc::Cell(slot) => {
                let dst = self.alloc_place();
                let cell = self.temp_op(slot);
                self.asm.push(Insn::LoadCell { dst: dst.op, cell });
                dst
            }
            VLoc::Env(i) => {
                let dst = self.alloc_place();
                self.asm.push(Insn::LoadEnv {
                    dst: dst.op,
                    index: i,
                });
                self.asm.push(Insn::LoadCell {
                    dst: dst.op,
                    cell: dst.op,
                });
                dst
            }
            VLoc::Special(sym) => {
                let dst = self.alloc_place();
                let name = self.tree.var(v).name.as_str().to_string();
                match self.spec_cache.get(&name) {
                    Some(&slot) => {
                        let cell = self.temp_op(slot);
                        self.asm.push(Insn::LoadCell { dst: dst.op, cell });
                    }
                    None => {
                        self.asm.push(Insn::SpecRead { dst: dst.op, sym });
                    }
                }
                dst
            }
        })
    }

    /// Stores `value` into variable `v`, returning the (still live) value
    /// for use as the `setq` result.
    fn store_var(&mut self, v: VarId, value: Val, value_node: NodeId) -> R<Val> {
        self.record_var_use(v);
        self.locate_lazily(v);
        let Some(&loc) = self.var_loc.get(&v) else {
            return self.err(format!("unlocated variable {}", self.tree.var(v).name));
        };
        match loc {
            VLoc::Slot(i) => {
                self.asm.push(Insn::Mov {
                    dst: Operand::Ind(Reg::FP, i32::from(i)),
                    src: value.op,
                });
                Ok(value)
            }
            VLoc::Reg(r) => {
                self.asm.push(Insn::Mov {
                    dst: Operand::Reg(r),
                    src: value.op,
                });
                Ok(value)
            }
            VLoc::Cell(slot) => {
                // Publishing into a heap cell is an unsafe operation.
                let vv = self.certify(value_node, value)?;
                let cell = self.temp_op(slot);
                self.asm.push(Insn::StoreCell { cell, src: vv.op });
                Ok(vv)
            }
            VLoc::Env(i) => {
                let vv = self.certify(value_node, value)?;
                let cellp = self.alloc_place();
                self.asm.push(Insn::LoadEnv {
                    dst: cellp.op,
                    index: i,
                });
                self.asm.push(Insn::StoreCell {
                    cell: cellp.op,
                    src: vv.op,
                });
                self.release(cellp);
                Ok(vv)
            }
            VLoc::Special(sym) => {
                let vv = self.certify(value_node, value)?;
                let name = self.tree.var(v).name.as_str().to_string();
                match self.spec_cache.get(&name) {
                    Some(&slot) => {
                        let cell = self.temp_op(slot);
                        self.asm.push(Insn::StoreCell { cell, src: vv.op });
                    }
                    None => {
                        self.asm.push(Insn::SpecWrite { sym, src: vv.op });
                    }
                }
                Ok(vv)
            }
        }
    }

    /// Global special variables have no binder: locate them on first
    /// reference.
    fn locate_lazily(&mut self, v: VarId) {
        if self.var_loc.contains_key(&v) {
            return;
        }
        let var = self.tree.var(v);
        if var.special {
            let sym = self.program.sym_id(var.name.as_str());
            self.var_loc.insert(v, VLoc::Special(sym));
        }
    }

    /// Inserts a run-time certification when the value might be an
    /// unsafe (pdl) pointer (§6.3).
    fn certify(&mut self, node: NodeId, v: Val) -> R<Val> {
        if !self.ann.pdl.unsafe_p(node) {
            return Ok(v);
        }
        if matches!(v.op, Operand::Const(_)) {
            return Ok(v);
        }
        if v.reg.is_some() {
            self.asm.push(Insn::Certify {
                dst: v.op,
                src: v.op,
            });
            return Ok(v);
        }
        let dst = self.alloc_place();
        self.asm.push(Insn::Certify {
            dst: dst.op,
            src: v.op,
        });
        self.release(v);
        Ok(dst)
    }

    /// Remembers what a coercion did and to which form, for the
    /// "coercion" events of a dossier.  Coercions are rare (a handful
    /// per function), so recording unconditionally is cheaper than
    /// threading the sink down here.
    fn note_coercion(&mut self, how: &str, node: NodeId) {
        self.metrics
            .notes
            .push(format!("{how} at {}", clip_form(self.tree, node)));
    }

    // ------------------------------------------------------- expressions

    fn gen_into(&mut self, node: NodeId, want: Rep) -> R<Val> {
        let v = self.gen(node)?;
        self.coerce(node, v, self.rep_is(node), want)
    }

    fn coerce(&mut self, node: NodeId, v: Val, from: Rep, want: Rep) -> R<Val> {
        if from == want || want == Rep::None_ || want == Rep::Jump {
            return Ok(v);
        }
        if from == Rep::Jump {
            // The boolean was already materialized as a pointer.
            return Ok(v);
        }
        match (from, want) {
            // Fixnums are immediate: raw and pointer form coincide.
            (Rep::Swfix, Rep::Pointer) | (Rep::Pointer, Rep::Swfix) => Ok(v),
            (Rep::Swflo, Rep::Pointer) => {
                self.metrics.coercions += 1;
                if self.opts.pdl_numbers && self.ann.pdl.stack_box(node) {
                    self.metrics.pdl_promotions += 1;
                    self.note_coercion("Swflo→Pointer (pdl box)", node);
                    // "Install value for PDL-allocated number" +
                    // "Pointer to PDL slot" (Table 4).
                    let slot = self.alloc_temp_pinned();
                    let slot_op = self.temp_op(slot);
                    self.asm.push(Insn::Mov {
                        dst: slot_op,
                        src: v.op,
                    });
                    self.release(v);
                    let dst = self.alloc_place();
                    self.asm.push(Insn::Movp {
                        tag: Tag::SingleFlonum,
                        dst: dst.op,
                        src: slot_op,
                    });
                    Ok(dst)
                } else {
                    self.metrics.heap_boxes += 1;
                    self.note_coercion("Swflo→Pointer (heap box)", node);
                    let dst = self.alloc_place();
                    self.asm.push(Insn::BoxFlo {
                        dst: dst.op,
                        src: v.op,
                    });
                    self.release(v);
                    Ok(dst)
                }
            }
            (Rep::Pointer, Rep::Swflo) => {
                self.metrics.coercions += 1;
                self.metrics.unboxes += 1;
                self.note_coercion("Pointer→Swflo (unbox)", node);
                let dst = self.alloc_place();
                self.asm.push(Insn::UnboxFlo {
                    dst: dst.op,
                    src: v.op,
                });
                self.release(v);
                Ok(dst)
            }
            _ => self.err(format!("unsupported coercion {from:?} → {want:?}")),
        }
    }

    fn gen(&mut self, node: NodeId) -> R<Val> {
        match self.tree.kind(node).clone() {
            NodeKind::Constant(d) => self.gen_constant(&d, self.rep_is(node)),
            NodeKind::VarRef(v) => self.load_var(v),
            NodeKind::Setq { var, value } => {
                let rep = self.var_rep(var);
                let v = self.gen_into(value, rep)?;
                self.store_var(var, v, value)
            }
            NodeKind::If { test, then, els } => {
                let rep = self.rep_is(node);
                let (tl, fl, join) = (self.asm.label(), self.asm.label(), self.asm.label());
                self.gen_test(test, tl, fl)?;
                let out = self.alloc_place();
                self.asm.bind(tl);
                let v1 = self.gen_into(then, rep)?;
                self.asm.push(Insn::Mov {
                    dst: out.op,
                    src: v1.op,
                });
                self.release(v1);
                self.asm.push(Insn::Jmp { target: join });
                self.asm.bind(fl);
                let v2 = self.gen_into(els, rep)?;
                self.asm.push(Insn::Mov {
                    dst: out.op,
                    src: v2.op,
                });
                self.release(v2);
                self.asm.bind(join);
                Ok(out)
            }
            NodeKind::Progn(body) => {
                let (last, init) = body.split_last().expect("non-empty");
                for &b in init {
                    self.gen_effect(b)?;
                }
                self.gen(*last)
            }
            NodeKind::Call { func, args } => self.gen_call(node, &func, &args),
            NodeKind::Lambda(_) => self.gen_closure(node),
            NodeKind::Caseq {
                key,
                clauses,
                default,
            } => self.gen_caseq(node, key, &clauses, default),
            NodeKind::Catcher { tag, body } => self.gen_catch(tag, body),
            NodeKind::Progbody(items) => self.gen_progbody(&items, false),
            NodeKind::Go(tag) => {
                self.gen_go(&tag)?;
                Ok(Val::con(Word::NIL))
            }
            NodeKind::Return(v) => {
                self.gen_return(v)?;
                Ok(Val::con(Word::NIL))
            }
        }
    }

    fn gen_constant(&mut self, d: &Datum, rep: Rep) -> R<Val> {
        Ok(match (d, rep) {
            (Datum::Flonum(x), Rep::Swflo) => Val::con(Word::F(*x)),
            (Datum::Fixnum(n), _) => Val::con(Word::fixnum(*n)),
            (Datum::Nil, _) => Val::con(Word::NIL),
            (Datum::Sym(s), _) if s.as_str() == "t" => Val::con(Word::T),
            (Datum::Sym(s), _) => {
                let id = self.program.sym_id(s.as_str());
                Val::con(Word::Ptr(Tag::Symbol, u64::from(id)))
            }
            (Datum::Char(c), _) => Val::con(Word::Ptr(Tag::Char, u64::from(u32::from(*c)))),
            (Datum::Str(s), _) => {
                let id = self.program.str_id(s);
                Val::con(Word::Ptr(Tag::String, u64::from(id)))
            }
            (d, _) => {
                // Structured or boxed constants live in static space.
                let idx = self.program.const_id(Value::from_datum(d));
                let dst = self.alloc_place();
                self.asm.push(Insn::LoadConst { dst: dst.op, idx });
                dst
            }
        })
    }

    fn gen_effect(&mut self, node: NodeId) -> R<()> {
        if matches!(
            self.tree.kind(node),
            NodeKind::Constant(_) | NodeKind::VarRef(_) | NodeKind::Lambda(_)
        ) {
            return Ok(());
        }
        let v = self.gen(node)?;
        self.release(v);
        Ok(())
    }

    // ------------------------------------------------------------- calls

    fn gen_call(&mut self, node: NodeId, func: &CallFunc, args: &[NodeId]) -> R<Val> {
        match func {
            CallFunc::Global(g) => self.gen_global_call(node, g, args, false),
            CallFunc::Expr(f) => {
                if let NodeKind::Lambda(_) = self.tree.kind(*f) {
                    let out = self.gen_let(node, *f, args, false)?;
                    return Ok(out.expect("non-tail let yields a value"));
                }
                if let NodeKind::VarRef(v) = *self.tree.kind(*f) {
                    if self.local_fns.contains_key(&v) {
                        let out = self.gen_local_call(v, args, false)?;
                        return Ok(out.expect("non-tail local call yields a value"));
                    }
                }
                // Computed function call.
                let fv = self.gen(*f)?;
                let fv = self.protect(fv);
                for &a in args {
                    let v = self.gen_into(a, Rep::Pointer)?;
                    self.asm.push(Insn::Push { src: v.op });
                    self.release(v);
                }
                self.pool.record_call(self.pos());
                self.asm.push(Insn::Call {
                    f: CallTarget::Value(fv.op),
                    nargs: args.len() as u8,
                });
                self.release(fv);
                Ok(self.own(Val::borrowed(Operand::Reg(Reg::A))))
            }
        }
    }

    /// `tail` selects the tail-call protocol; returns `None` for an
    /// emitted tail transfer, `Some(val)` otherwise.
    fn gen_global_call(&mut self, node: NodeId, g: &Symbol, args: &[NodeId], tail: bool) -> R<Val> {
        debug_assert!(!tail);
        let name = g.as_str();
        // Inline selections.
        if let Some(v) = self.try_inline(node, name, args)? {
            return Ok(v);
        }
        if primop(name).is_some() {
            return self.gen_rt_call(node, name, args);
        }
        // A full call to a user (or not-yet-defined) function.
        for &a in args {
            let v = self.gen_into(a, Rep::Pointer)?;
            self.asm.push(Insn::Push { src: v.op });
            self.release(v);
        }
        let id = self.program.fn_id(name);
        self.pool.record_call(self.pos());
        self.asm.push(Insn::Call {
            f: CallTarget::Func(id),
            nargs: args.len() as u8,
        });
        Ok(self.own(Val::borrowed(Operand::Reg(Reg::A))))
    }

    /// Primitives compiled via the run-time system.
    fn gen_rt_call(&mut self, node: NodeId, name: &str, args: &[NodeId]) -> R<Val> {
        let unsafe_op = primop(name).map(|p| !p.pdl_safe).unwrap_or(false);
        for &a in args {
            let v = self.gen_into(a, Rep::Pointer)?;
            let v = if unsafe_op { self.certify(a, v)? } else { v };
            self.asm.push(Insn::Push { src: v.op });
            self.release(v);
        }
        let dst = self.alloc_place();
        let static_name = primop(name).map(|p| p.name).expect("primop");
        self.asm.push(Insn::RtCall {
            name: static_name,
            nargs: args.len() as u8,
            dst: dst.op,
        });
        // Runtime routines deliver pointers; when representation analysis
        // promised a raw value (e.g. `sin$f`, which has no inline form),
        // convert here so the gen() contract holds.
        if self.rep_is(node) == Rep::Swflo {
            self.asm.push(Insn::UnboxFlo {
                dst: dst.op,
                src: dst.op,
            });
        }
        Ok(dst)
    }

    /// Inline code for selected primitives.  Returns `None` to fall back
    /// to the runtime.
    fn try_inline(&mut self, node: NodeId, name: &str, args: &[NodeId]) -> R<Option<Val>> {
        // Comparisons and type predicates: compile as a test and
        // materialize (in test position `gen_test` intercepts them
        // before this point).
        if is_test_op(name) && test_arity_ok(name, args.len()) {
            return self.materialize_test(node).map(Some);
        }
        match (name, args) {
            ("car", [x]) => {
                let v = self.gen_into(*x, Rep::Pointer)?;
                let dst = self.alloc_place();
                self.asm.push(Insn::Car {
                    dst: dst.op,
                    src: v.op,
                });
                self.release(v);
                Ok(Some(dst))
            }
            ("cdr", [x]) => {
                let v = self.gen_into(*x, Rep::Pointer)?;
                let dst = self.alloc_place();
                self.asm.push(Insn::Cdr {
                    dst: dst.op,
                    src: v.op,
                });
                self.release(v);
                Ok(Some(dst))
            }
            ("cons", [a, d]) => {
                let va = self.gen_into(*a, Rep::Pointer)?;
                let va = self.certify(*a, va)?;
                let va = if self.sibling_unsafe(*d) {
                    self.protect(va)
                } else {
                    va
                };
                let vd = self.gen_into(*d, Rep::Pointer)?;
                let vd = self.certify(*d, vd)?;
                let dst = self.alloc_place();
                self.asm.push(Insn::ConsRt {
                    dst: dst.op,
                    car: va.op,
                    cdr: vd.op,
                });
                self.release(va);
                self.release(vd);
                Ok(Some(dst))
            }
            ("throw", [tag, value]) => {
                let vt = self.gen_into(*tag, Rep::Pointer)?;
                let vt = if self.sibling_unsafe(*value) {
                    self.protect(vt)
                } else {
                    vt
                };
                let vv = self.gen_into(*value, Rep::Pointer)?;
                let vv = self.certify(*value, vv)?;
                self.asm.push(Insn::Throw {
                    tag: vt.op,
                    value: vv.op,
                });
                self.release(vt);
                self.release(vv);
                Ok(Some(Val::con(Word::NIL)))
            }
            ("apply", [f, rest @ ..]) if !rest.is_empty() => {
                if rest.len() != 1 {
                    // General apply spreads only the last list; compile
                    // the multi-arg form via the runtime? Simpler: only
                    // the common (apply f list) shape is inline.
                    return self.err("apply with spread arguments is not supported");
                }
                let fv = self.gen_into(*f, Rep::Pointer)?;
                let fv = if self.sibling_unsafe(rest[0]) {
                    self.protect(fv)
                } else {
                    fv
                };
                let lv = self.gen_into(rest[0], Rep::Pointer)?;
                self.pool.record_call(self.pos());
                self.asm.push(Insn::Apply {
                    f: fv.op,
                    list: lv.op,
                });
                self.release(fv);
                self.release(lv);
                Ok(Some(self.own(Val::borrowed(Operand::Reg(Reg::A)))))
            }
            ("%function", [x]) => {
                if let NodeKind::Constant(Datum::Sym(s)) = self.tree.kind(*x) {
                    let id = self.program.fn_id(s.as_str());
                    let dst = self.alloc_place();
                    self.asm.push(Insn::LoadFunction {
                        dst: dst.op,
                        fnid: id,
                    });
                    return Ok(Some(dst));
                }
                Ok(None)
            }
            _ if self.opts.representation_analysis => {
                match self.ann.rep.lowered.get(&node) {
                    Some(Rep::Swflo) => return self.inline_lowered_generic(node, name, args),
                    Some(Rep::Swfix) => return self.inline_lowered_int(node, name, args),
                    _ => {}
                }
                self.try_inline_typed(node, name, args)
            }
            _ => Ok(None),
        }
    }

    /// A generic arithmetic call deduced to be all-float (the type
    /// inference extension): compile with the float instructions.
    fn inline_lowered_generic(
        &mut self,
        node: NodeId,
        name: &str,
        args: &[NodeId],
    ) -> R<Option<Val>> {
        let _ = node;
        // Unary transcendentals first.
        if let ("sqrt" | "exp" | "log" | "atan", [x]) = (name, args) {
            let v = self.gen_into(*x, Rep::Swflo)?;
            let dst = self.alloc_place();
            let insn = match name {
                "sqrt" => Insn::FSqrt {
                    dst: dst.op,
                    src: v.op,
                },
                "exp" => Insn::FExp {
                    dst: dst.op,
                    src: v.op,
                },
                "log" => Insn::FLog {
                    dst: dst.op,
                    src: v.op,
                },
                _ => Insn::FAtan {
                    dst: dst.op,
                    src: v.op,
                },
            };
            self.asm.push(insn);
            self.release(v);
            return Ok(Some(dst));
        }
        let op = match name {
            "+" | "1+" => FloatOp::Add,
            "-" | "1-" => FloatOp::Sub,
            "*" => FloatOp::Mult,
            "/" => FloatOp::Div,
            "max" => FloatOp::Max,
            "min" => FloatOp::Min,
            _ => return Ok(None),
        };
        match (name, args) {
            ("1+" | "1-", [x]) => {
                let v = self.gen_into(*x, Rep::Swflo)?;
                let one = Val::con(Word::F(1.0));
                Ok(Some(self.emit_float(op, v, one)))
            }
            ("-", [x]) => {
                let v = self.gen_into(*x, Rep::Swflo)?;
                let dst = self.alloc_place();
                self.asm.push(Insn::FNeg {
                    dst: dst.op,
                    src: v.op,
                });
                self.release(v);
                Ok(Some(dst))
            }
            ("/", [x]) => {
                let v = self.gen_into(*x, Rep::Swflo)?;
                Ok(Some(self.emit_float(
                    FloatOp::Div,
                    Val::con(Word::F(1.0)),
                    v,
                )))
            }
            (_, [x]) if matches!(name, "+" | "*" | "max" | "min") => {
                // Single-operand identity-ish forms.
                Ok(Some(self.gen_into(*x, Rep::Swflo)?))
            }
            (_, [first, rest @ ..]) if !rest.is_empty() => {
                let mut acc = self.gen_into(*first, Rep::Swflo)?;
                for &b in rest {
                    if self.sibling_unsafe(b) {
                        acc = self.protect(acc);
                    }
                    let vb = self.gen_into(b, Rep::Swflo)?;
                    acc = self.emit_float(op, acc, vb);
                }
                Ok(Some(acc))
            }
            _ => Ok(None),
        }
    }

    /// Typed arithmetic, inline (the payoff of representation analysis).
    fn try_inline_typed(&mut self, node: NodeId, name: &str, args: &[NodeId]) -> R<Option<Val>> {
        let _ = node;
        let float_op = |n: &str| {
            Some(match n {
                "+$f" => FloatOp::Add,
                "-$f" => FloatOp::Sub,
                "*$f" => FloatOp::Mult,
                "/$f" => FloatOp::Div,
                "max$f" => FloatOp::Max,
                "min$f" => FloatOp::Min,
                _ => return None,
            })
        };
        if let Some(op) = float_op(name) {
            if args.len() == 1 && name == "-$f" {
                let v = self.gen_into(args[0], Rep::Swflo)?;
                let dst = self.alloc_place();
                self.asm.push(Insn::FNeg {
                    dst: dst.op,
                    src: v.op,
                });
                self.release(v);
                return Ok(Some(dst));
            }
            if args.len() < 2 {
                return Ok(None);
            }
            let mut acc = self.gen_into(args[0], Rep::Swflo)?;
            for &b in &args[1..] {
                if self.sibling_unsafe(b) {
                    acc = self.protect(acc);
                }
                let vb = self.gen_into(b, Rep::Swflo)?;
                acc = self.emit_float(op, acc, vb);
            }
            return Ok(Some(acc));
        }
        let unary = |n: &str| {
            Some(match n {
                "sinc$f" => UnFloat::Sin,
                "cosc$f" => UnFloat::Cos,
                "sqrt$f" => UnFloat::Sqrt,
                _ => return None,
            })
        };
        if let Some(op) = unary(name) {
            if args.len() != 1 {
                return Ok(None);
            }
            let v = self.gen_into(args[0], Rep::Swflo)?;
            let dst = self.alloc_place();
            let insn = match op {
                UnFloat::Sin => Insn::FSin {
                    dst: dst.op,
                    src: v.op,
                },
                UnFloat::Cos => Insn::FCos {
                    dst: dst.op,
                    src: v.op,
                },
                UnFloat::Sqrt => Insn::FSqrt {
                    dst: dst.op,
                    src: v.op,
                },
            };
            self.asm.push(insn);
            self.release(v);
            return Ok(Some(dst));
        }
        let int_op = |n: &str| {
            Some(match n {
                "+&" => IntOp::Add,
                "-&" => IntOp::Sub,
                "*&" => IntOp::Mult,
                _ => return None,
            })
        };
        if let Some(op) = int_op(name) {
            if args.len() < 2 {
                return Ok(None);
            }
            let mut acc = self.gen_into(args[0], Rep::Pointer)?;
            for &b in &args[1..] {
                if self.sibling_unsafe(b) {
                    acc = self.protect(acc);
                }
                let vb = self.gen_into(b, Rep::Pointer)?;
                acc = self.emit_int(op, acc, vb);
            }
            return Ok(Some(acc));
        }
        Ok(None)
    }

    /// All-fixnum generic arithmetic deduced by type inference: fixnum
    /// instruction selection (fixnums are immediate words, so no
    /// conversions are involved).
    fn inline_lowered_int(&mut self, node: NodeId, name: &str, args: &[NodeId]) -> R<Option<Val>> {
        let _ = node;
        let op = match name {
            "+" | "1+" => IntOp::Add,
            "-" | "1-" => IntOp::Sub,
            "*" => IntOp::Mult,
            "/" => IntOp::Div,
            "floor" => IntOp::DivFloor,
            "rem" => IntOp::Rem,
            "mod" => IntOp::ModFloor,
            _ => return Ok(None),
        };
        match (name, args) {
            ("1+" | "1-", [x]) => {
                let v = self.gen_into(*x, Rep::Pointer)?;
                let one = Val::con(Word::fixnum(1));
                Ok(Some(self.emit_int(op, v, one)))
            }
            ("-", [x]) => {
                let v = self.gen_into(*x, Rep::Pointer)?;
                let dst = self.alloc_place();
                self.asm.push(Insn::Neg {
                    dst: dst.op,
                    src: v.op,
                });
                self.release(v);
                Ok(Some(dst))
            }
            ("floor" | "mod" | "rem", [_]) => Ok(None), // unary floor is identity via rt
            ("/", [_]) => Ok(None),                     // (/ n) is a float reciprocal
            (_, [x]) if matches!(name, "+" | "*") => Ok(Some(self.gen_into(*x, Rep::Pointer)?)),
            (_, [first, rest @ ..]) if !rest.is_empty() => {
                let mut acc = self.gen_into(*first, Rep::Pointer)?;
                for &b in rest {
                    if self.sibling_unsafe(b) {
                        acc = self.protect(acc);
                    }
                    let vb = self.gen_into(b, Rep::Pointer)?;
                    acc = self.emit_int(op, acc, vb);
                }
                Ok(Some(acc))
            }
            _ => Ok(None),
        }
    }

    /// The 2½-address arithmetic discipline (§6.1): the destination is an
    /// RT register when one is free, else the first operand (in a place
    /// we own), else a fresh place primed with a MOV.
    fn arith_dst(&mut self, a: Val) -> (Operand, Val) {
        if let Some(rt) = self.alloc_rt() {
            return (Operand::Reg(rt), a);
        }
        if a.reg.is_some() || a.temp.is_some() {
            return (a.op, a);
        }
        let dst = self.alloc_place();
        self.asm.push(Insn::Mov {
            dst: dst.op,
            src: a.op,
        });
        (dst.op, dst)
    }

    fn emit_float(&mut self, op: FloatOp, a: Val, b: Val) -> Val {
        let (dst, a_owned) = self.arith_dst(a);
        let insn = match op {
            FloatOp::Add => Insn::FAdd {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            FloatOp::Sub => Insn::FSub {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            FloatOp::Mult => Insn::FMult {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            FloatOp::Div => Insn::FDiv {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            FloatOp::Max => Insn::FMax {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            FloatOp::Min => Insn::FMin {
                dst,
                a: a_owned.op,
                b: b.op,
            },
        };
        self.asm.push(insn);
        self.finish_arith(dst, a_owned, b)
    }

    fn emit_int(&mut self, op: IntOp, a: Val, b: Val) -> Val {
        let (dst, a_owned) = self.arith_dst(a);
        let insn = match op {
            IntOp::Add => Insn::Add {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            IntOp::Sub => Insn::Sub {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            IntOp::Mult => Insn::Mult {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            IntOp::Div => Insn::Div {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            IntOp::DivFloor => Insn::DivFloor {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            IntOp::Rem => Insn::Rem {
                dst,
                a: a_owned.op,
                b: b.op,
            },
            IntOp::ModFloor => Insn::ModFloor {
                dst,
                a: a_owned.op,
                b: b.op,
            },
        };
        self.asm.push(insn);
        self.finish_arith(dst, a_owned, b)
    }

    fn finish_arith(&mut self, dst: Operand, a: Val, b: Val) -> Val {
        self.release(b);
        if dst == a.op {
            return a;
        }
        self.release(a);
        match dst {
            Operand::Reg(r) => Val::reg(r),
            _ => Val::borrowed(dst),
        }
    }

    // ----------------------------------------------------------- tests

    fn gen_test(&mut self, node: NodeId, tl: Label, fl: Label) -> R<()> {
        match self.tree.kind(node).clone() {
            NodeKind::Constant(d) => {
                self.asm.push(Insn::Jmp {
                    target: if d.is_true() { tl } else { fl },
                });
                Ok(())
            }
            NodeKind::If { test, then, els } => {
                let (itl, ifl) = (self.asm.label(), self.asm.label());
                self.gen_test(test, itl, ifl)?;
                self.asm.bind(itl);
                self.gen_test(then, tl, fl)?;
                self.asm.bind(ifl);
                self.gen_test(els, tl, fl)
            }
            NodeKind::Progn(body) => {
                let (last, init) = body.split_last().expect("non-empty");
                for &b in init {
                    self.gen_effect(b)?;
                }
                self.gen_test(*last, tl, fl)
            }
            NodeKind::Call {
                func: CallFunc::Global(g),
                args,
            } => self.gen_test_call(node, &g, &args, tl, fl),
            _ => {
                let v = self.gen_into(node, Rep::Pointer)?;
                self.asm.push(Insn::JmpNotNil {
                    src: v.op,
                    target: tl,
                });
                self.release(v);
                self.asm.push(Insn::Jmp { target: fl });
                Ok(())
            }
        }
    }

    fn gen_test_call(
        &mut self,
        node: NodeId,
        g: &Symbol,
        args: &[NodeId],
        tl: Label,
        fl: Label,
    ) -> R<()> {
        let name = g.as_str();
        let cond = |n: &str| {
            Some(match n {
                "=" => Cond::Eq,
                "/=" => Cond::Ne,
                "<" => Cond::Lt,
                "<=" => Cond::Le,
                ">" => Cond::Gt,
                ">=" => Cond::Ge,
                _ => return None,
            })
        };
        if let (Some(c), [a, b]) = (cond(name), args) {
            let va = self.gen(*a)?;
            let va = if self.sibling_unsafe(*b) {
                self.protect(va)
            } else {
                va
            };
            let vb = self.gen(*b)?;
            self.asm.push(Insn::JmpIf {
                cond: c,
                a: va.op,
                b: vb.op,
                target: tl,
            });
            self.release(va);
            self.release(vb);
            self.asm.push(Insn::Jmp { target: fl });
            return Ok(());
        }
        match (name, args) {
            ("zerop", [x]) => {
                let v = self.gen(*x)?;
                self.asm.push(Insn::JmpIf {
                    cond: Cond::Eq,
                    a: v.op,
                    b: Operand::fixnum(0),
                    target: tl,
                });
                self.release(v);
                self.asm.push(Insn::Jmp { target: fl });
                Ok(())
            }
            ("null" | "not", [x]) => self.gen_test(*x, fl, tl),
            ("eq", [a, b]) => {
                let va = self.gen_into(*a, Rep::Pointer)?;
                let va = if self.sibling_unsafe(*b) {
                    self.protect(va)
                } else {
                    va
                };
                let vb = self.gen_into(*b, Rep::Pointer)?;
                self.asm.push(Insn::JmpEq {
                    a: va.op,
                    b: vb.op,
                    target: tl,
                });
                self.release(va);
                self.release(vb);
                self.asm.push(Insn::Jmp { target: fl });
                Ok(())
            }
            ("consp", [x]) => self.tag_test(*x, Tag::Cons, tl, fl),
            ("atom", [x]) => self.tag_test(*x, Tag::Cons, fl, tl),
            _ => {
                let v = self.gen_into(node, Rep::Pointer)?;
                self.asm.push(Insn::JmpNotNil {
                    src: v.op,
                    target: tl,
                });
                self.release(v);
                self.asm.push(Insn::Jmp { target: fl });
                Ok(())
            }
        }
    }

    fn tag_test(&mut self, x: NodeId, tag: Tag, tl: Label, fl: Label) -> R<()> {
        let v = self.gen_into(x, Rep::Pointer)?;
        self.asm.push(Insn::JmpTag {
            tag,
            src: v.op,
            target: tl,
        });
        self.release(v);
        self.asm.push(Insn::Jmp { target: fl });
        Ok(())
    }

    /// Compiles a boolean-producing call in value position: branch, then
    /// materialize t/nil.
    fn materialize_test(&mut self, node: NodeId) -> R<Val> {
        let (tl, fl, join) = (self.asm.label(), self.asm.label(), self.asm.label());
        let NodeKind::Call { func, args } = self.tree.kind(node).clone() else {
            unreachable!()
        };
        let CallFunc::Global(g) = func else {
            unreachable!()
        };
        self.gen_test_call(node, &g, &args, tl, fl)?;
        let out = self.alloc_place();
        self.asm.bind(tl);
        self.asm.push(Insn::Mov {
            dst: out.op,
            src: Operand::Const(Word::T),
        });
        self.asm.push(Insn::Jmp { target: join });
        self.asm.bind(fl);
        self.asm.push(Insn::Mov {
            dst: out.op,
            src: Operand::nil(),
        });
        self.asm.bind(join);
        Ok(out)
    }

    // -------------------------------------------------- let / local fns

    fn gen_let(&mut self, node: NodeId, f: NodeId, args: &[NodeId], tail: bool) -> R<Option<Val>> {
        let _ = node;
        let NodeKind::Lambda(l) = self.tree.kind(f).clone() else {
            unreachable!()
        };
        if !l.is_simple() || args.len() != l.required.len() {
            return self.err("lambda-call with &optional/&rest parameters");
        }
        let mut bound_specials = 0u16;
        for (j, &param) in l.required.iter().enumerate() {
            let arg = args[j];
            // Local function? register, defer.
            if matches!(self.tree.kind(arg), NodeKind::Lambda(_))
                && self.ann.binding.strategy.get(&arg) == Some(&LambdaStrategy::LocalFunction)
            {
                let label = self.asm.label();
                let NodeKind::Lambda(al) = self.tree.kind(arg).clone() else {
                    unreachable!()
                };
                let tail_mode = self
                    .tree
                    .var(param)
                    .refs
                    .iter()
                    .all(|&r| self.call_site_tail(r));
                let mut params = Vec::new();
                for &p in &al.required {
                    let slot = self.alloc_temp_pinned();
                    params.push(self.nslots + slot);
                    self.var_loc.insert(p, VLoc::Slot(self.nslots + slot));
                }
                self.local_fns.insert(
                    param,
                    LocalFn {
                        label,
                        tail_mode,
                        params,
                    },
                );
                self.blocks.push((param, arg));
                continue;
            }
            let rep = self.var_rep(param);
            let v = self.gen_into(arg, rep)?;
            match self.ann.binding.var_alloc.get(&param) {
                Some(VarAlloc::Special) => {
                    let vv = self.certify(arg, v)?;
                    let sym = self.program.sym_id(self.tree.var(param).name.as_str());
                    self.asm.push(Insn::SpecBind { sym, src: vv.op });
                    self.release(vv);
                    self.specials_bound += 1;
                    bound_specials += 1;
                    self.var_loc.insert(param, VLoc::Special(sym));
                }
                Some(VarAlloc::Heap) => {
                    let vv = self.certify(arg, v)?;
                    let slot = self.alloc_temp_pinned();
                    let dst = self.temp_op(slot);
                    self.asm.push(Insn::MakeCell { dst, src: vv.op });
                    self.release(vv);
                    self.var_loc.insert(param, VLoc::Cell(slot));
                }
                _ => {
                    if let Some(&r) = self.promote.get(&param) {
                        self.asm.push(Insn::Mov {
                            dst: Operand::Reg(r),
                            src: v.op,
                        });
                        self.release(v);
                        self.var_loc.insert(param, VLoc::Reg(r));
                    } else {
                        let slot = self.alloc_temp_pinned();
                        let dst = self.temp_op(slot);
                        self.asm.push(Insn::Mov { dst, src: v.op });
                        self.release(v);
                        let tn = *self.var_tn.entry(param).or_insert_with(|| {
                            self.pool.new_tn(self.tree.var(param).name.as_str())
                        });
                        self.pool.record_use(tn, self.pos());
                        self.var_loc.insert(param, VLoc::Slot(self.nslots + slot));
                    }
                }
            }
        }
        if tail {
            self.gen_tail(l.body)?;
            return Ok(None);
        }
        let out = self.gen(l.body)?;
        if bound_specials > 0 {
            self.asm.push(Insn::SpecUnbind { n: bound_specials });
            self.specials_bound -= bound_specials;
        }
        Ok(Some(out))
    }

    /// Is the call node owning reference `r` in (function-level) tail
    /// position?
    fn call_site_tail(&self, r: NodeId) -> bool {
        self.tree
            .node(r)
            .parent
            .map(|p| self.tails.contains(&p))
            .unwrap_or(false)
    }

    /// A call to a local function.  Tail transfers return `None`.
    fn gen_local_call(&mut self, v: VarId, args: &[NodeId], tail: bool) -> R<Option<Val>> {
        let lf = self.local_fns[&v].clone();
        // Evaluate arguments into the block's parameter slots.
        for (j, &a) in args.iter().enumerate() {
            let Some(&slot) = lf.params.get(j) else {
                return self.err("local function called with wrong argument count");
            };
            let val = self.gen_into(a, Rep::Pointer)?;
            self.asm.push(Insn::Mov {
                dst: Operand::Ind(Reg::FP, i32::from(slot)),
                src: val.op,
            });
            self.release(val);
        }
        if lf.tail_mode {
            // The block ends in the function's own return; just go there.
            self.asm.push(Insn::Jmp { target: lf.label });
            if tail {
                return Ok(None);
            }
            // A non-tail site of a tail-mode block cannot happen
            // (tail_mode requires all sites tail), but keep the value
            // protocol total.
            return Ok(Some(Val::con(Word::NIL)));
        }
        self.pool.record_call(self.pos());
        self.asm.push(Insn::LocalCall { target: lf.label });
        if tail {
            self.emit_return_from_a()?;
            return Ok(None);
        }
        Ok(Some(self.own(Val::borrowed(Operand::Reg(Reg::A)))))
    }

    fn emit_block(&mut self, var: VarId, lambda_node: NodeId) -> R<()> {
        let lf = self.local_fns[&var].clone();
        let NodeKind::Lambda(l) = self.tree.kind(lambda_node).clone() else {
            unreachable!()
        };
        self.asm.bind(lf.label);
        if lf.tail_mode {
            self.gen_tail(l.body)?;
        } else {
            let v = self.gen_into(l.body, Rep::Pointer)?;
            let v = self.certify(l.body, v)?;
            self.asm.push(Insn::Mov {
                dst: Operand::Reg(Reg::A),
                src: v.op,
            });
            self.release(v);
            self.asm.push(Insn::LocalRet);
        }
        Ok(())
    }

    // --------------------------------------------------------- closures

    fn gen_closure(&mut self, node: NodeId) -> R<Val> {
        let captures = self
            .ann
            .binding
            .captures
            .get(&node)
            .cloned()
            .unwrap_or_default();
        for &c in &captures {
            match self.var_loc.get(&c) {
                Some(&VLoc::Cell(slot)) => {
                    let op = self.temp_op(slot);
                    self.asm.push(Insn::Push { src: op });
                }
                Some(&VLoc::Env(i)) => {
                    let p = self.alloc_place();
                    self.asm.push(Insn::LoadEnv {
                        dst: p.op,
                        index: i,
                    });
                    self.asm.push(Insn::Push { src: p.op });
                    self.release(p);
                }
                other => {
                    return self.err(format!(
                        "captured variable {} is not cell-allocated ({other:?})",
                        self.tree.var(c).name
                    ))
                }
            }
        }
        *self.counter += 1;
        let child = format!("{}%closure{}", self.fname, self.counter);
        let fnid = self.program.fn_id(&child);
        self.work.push((child, node, captures.clone()));
        let dst = self.alloc_place();
        self.asm.push(Insn::MakeClosure {
            dst: dst.op,
            fnid,
            ncells: captures.len() as u8,
        });
        Ok(dst)
    }

    // ------------------------------------------------- caseq/catch/prog

    fn gen_caseq(
        &mut self,
        node: NodeId,
        key: NodeId,
        clauses: &[s1lisp_ast::CaseqClause],
        default: NodeId,
    ) -> R<Val> {
        let rep = self.rep_is(node);
        let keyv = self.gen_into(key, Rep::Pointer)?;
        let keyv = self.protect(keyv);
        let join = self.asm.label();
        let out = self.alloc_place();
        // Dense fixnum keys compile to the S-1's computed dispatch
        // (Table 4's jump-table idiom) instead of a compare chain.
        if let Some(plan) = dense_fixnum_plan(clauses) {
            let default_l = self.asm.label();
            let clause_ls: Vec<Label> = clauses.iter().map(|_| self.asm.label()).collect();
            // Non-fixnums and out-of-range keys take the default.
            let is_fix = self.asm.label();
            self.asm.push(Insn::JmpTag {
                tag: Tag::Fixnum,
                src: keyv.op,
                target: is_fix,
            });
            self.asm.push(Insn::Jmp { target: default_l });
            self.asm.bind(is_fix);
            let idx = self.alloc_place();
            self.asm.push(Insn::Sub {
                dst: Operand::Reg(Reg::RTA),
                a: keyv.op,
                b: Operand::fixnum(plan.min),
            });
            self.asm.push(Insn::Mov {
                dst: idx.op,
                src: Operand::Reg(Reg::RTA),
            });
            self.asm.push(Insn::JmpIf {
                cond: Cond::Lt,
                a: idx.op,
                b: Operand::fixnum(0),
                target: default_l,
            });
            self.asm.push(Insn::JmpIf {
                cond: Cond::Ge,
                a: idx.op,
                b: Operand::fixnum(plan.span),
                target: default_l,
            });
            let targets: Vec<Label> = plan
                .slots
                .iter()
                .map(|slot| slot.map_or(default_l, |c| clause_ls[c]))
                .collect();
            self.asm.push(Insn::Dispatch {
                src: idx.op,
                targets,
            });
            self.release(idx);
            self.asm.bind(default_l);
            let dv = self.gen_into(default, rep)?;
            self.asm.push(Insn::Mov {
                dst: out.op,
                src: dv.op,
            });
            self.release(dv);
            self.asm.push(Insn::Jmp { target: join });
            for (clause, l) in clauses.iter().zip(clause_ls) {
                self.asm.bind(l);
                let cv = self.gen_into(clause.body, rep)?;
                self.asm.push(Insn::Mov {
                    dst: out.op,
                    src: cv.op,
                });
                self.release(cv);
                self.asm.push(Insn::Jmp { target: join });
            }
            self.asm.bind(join);
            self.release(keyv);
            return Ok(out);
        }
        let mut labels = Vec::new();
        for clause in clauses {
            let hit = self.asm.label();
            for k in &clause.keys {
                match k {
                    Datum::Fixnum(_) | Datum::Sym(_) | Datum::Nil | Datum::Char(_) => {
                        let kv = self.gen_constant(k, Rep::Pointer)?;
                        self.asm.push(Insn::JmpEq {
                            a: keyv.op,
                            b: kv.op,
                            target: hit,
                        });
                        self.release(kv);
                    }
                    _ => {
                        // Non-immediate key: eql via the runtime.
                        self.asm.push(Insn::Push { src: keyv.op });
                        let kv = self.gen_constant(k, Rep::Pointer)?;
                        self.asm.push(Insn::Push { src: kv.op });
                        self.release(kv);
                        let t = self.alloc_place();
                        self.asm.push(Insn::RtCall {
                            name: "eql",
                            nargs: 2,
                            dst: t.op,
                        });
                        self.asm.push(Insn::JmpNotNil {
                            src: t.op,
                            target: hit,
                        });
                        self.release(t);
                    }
                }
            }
            labels.push(hit);
        }
        // Default.
        let dv = self.gen_into(default, rep)?;
        self.asm.push(Insn::Mov {
            dst: out.op,
            src: dv.op,
        });
        self.release(dv);
        self.asm.push(Insn::Jmp { target: join });
        for (clause, hit) in clauses.iter().zip(labels) {
            self.asm.bind(hit);
            let cv = self.gen_into(clause.body, rep)?;
            self.asm.push(Insn::Mov {
                dst: out.op,
                src: cv.op,
            });
            self.release(cv);
            self.asm.push(Insn::Jmp { target: join });
        }
        self.asm.bind(join);
        self.release(keyv);
        Ok(out)
    }

    fn gen_catch(&mut self, tag: NodeId, body: NodeId) -> R<Val> {
        let tv = self.gen_into(tag, Rep::Pointer)?;
        let landing = self.asm.label();
        let join = self.asm.label();
        self.asm.push(Insn::PushCatch {
            tag: tv.op,
            target: landing,
        });
        self.release(tv);
        self.pool.record_call(self.pos());
        let out = self.alloc_place();
        let bv = self.gen_into(body, Rep::Pointer)?;
        self.asm.push(Insn::Mov {
            dst: out.op,
            src: bv.op,
        });
        self.release(bv);
        self.asm.push(Insn::PopCatch);
        self.asm.push(Insn::Jmp { target: join });
        self.asm.bind(landing);
        self.asm.push(Insn::Mov {
            dst: out.op,
            src: Operand::Reg(Reg::A),
        });
        self.asm.bind(join);
        Ok(out)
    }

    fn gen_progbody(&mut self, items: &[ProgItem], tail: bool) -> R<Val> {
        let loop_start = self.pos();
        let exit = self.asm.label();
        let result = if tail {
            None
        } else {
            Some(self.alloc_temp_pinned())
        };
        let tags: Vec<(Symbol, Label)> = items
            .iter()
            .filter_map(|i| match i {
                ProgItem::Tag(t) => Some((t.clone(), self.asm.label())),
                ProgItem::Stmt(_) => None,
            })
            .collect();
        self.pb_stack.push(PbCtx {
            tags,
            exit,
            result,
            tail,
        });
        for item in items {
            match item {
                ProgItem::Tag(t) => {
                    let label = self
                        .pb_stack
                        .last()
                        .and_then(|pb| pb.tags.iter().find(|(name, _)| name == t).map(|&(_, l)| l))
                        .expect("tag registered");
                    self.asm.bind(label);
                }
                ProgItem::Stmt(s) => self.gen_effect(*s)?,
            }
        }
        let pb = self.pb_stack.pop().expect("pushed above");
        // Any go can re-enter this whole region: tell TNBIND.
        self.pool.record_loop(loop_start, self.pos());
        // Fell off the end: the progbody's value is nil.
        if tail {
            self.asm.push(Insn::Mov {
                dst: Operand::Reg(Reg::A),
                src: Operand::nil(),
            });
            self.emit_ret();
            self.asm.bind(exit);
            // In tail mode, `return` sites emitted function returns
            // directly and jump here never happens, but the label must
            // bind.
            Ok(Val::con(Word::NIL))
        } else {
            let slot = pb.result.expect("non-tail progbody has a result slot");
            let op = self.temp_op(slot);
            self.asm.push(Insn::Mov {
                dst: op,
                src: Operand::nil(),
            });
            self.asm.bind(exit);
            Ok(Val::borrowed(op))
        }
    }

    fn gen_go(&mut self, tag: &Symbol) -> R<()> {
        for pb in self.pb_stack.iter().rev() {
            if let Some(&(_, label)) = pb.tags.iter().find(|(name, _)| name == tag) {
                self.asm.push(Insn::Jmp { target: label });
                return Ok(());
            }
        }
        self.err(format!("go to unknown tag {tag}"))
    }

    fn gen_return(&mut self, value: NodeId) -> R<()> {
        let Some(top) = self.pb_stack.last() else {
            return self.err("return outside progbody");
        };
        let (tail, result, exit) = (top.tail, top.result, top.exit);
        if tail {
            self.gen_tail(value)?;
            return Ok(());
        }
        let v = self.gen_into(value, Rep::Pointer)?;
        let slot = result.expect("non-tail progbody has a result slot");
        let op = self.temp_op(slot);
        self.asm.push(Insn::Mov { dst: op, src: v.op });
        self.release(v);
        self.asm.push(Insn::Jmp { target: exit });
        Ok(())
    }

    // ------------------------------------------------------------- tail

    fn emit_ret(&mut self) {
        if self.specials_bound > 0 {
            self.asm.push(Insn::SpecUnbind {
                n: self.specials_bound,
            });
        }
        self.asm.push(Insn::Ret);
    }

    fn emit_return_from_a(&mut self) -> R<()> {
        self.emit_ret();
        Ok(())
    }

    fn gen_tail(&mut self, node: NodeId) -> R<()> {
        // Tail paths never rejoin: the compile-time special-binding
        // count must be restored for sibling emission paths.
        let save = self.specials_bound;
        let r = self.gen_tail_inner(node);
        self.specials_bound = save;
        r
    }

    fn gen_tail_inner(&mut self, node: NodeId) -> R<()> {
        match self.tree.kind(node).clone() {
            NodeKind::If { test, then, els } => {
                let (tl, fl) = (self.asm.label(), self.asm.label());
                self.gen_test(test, tl, fl)?;
                self.asm.bind(tl);
                self.gen_tail(then)?;
                self.asm.bind(fl);
                self.gen_tail(els)
            }
            NodeKind::Progn(body) => {
                let (last, init) = body.split_last().expect("non-empty");
                for &b in init {
                    self.gen_effect(b)?;
                }
                self.gen_tail(*last)
            }
            NodeKind::Progbody(items) => {
                self.gen_progbody(&items, true)?;
                Ok(())
            }
            NodeKind::Call {
                func: CallFunc::Global(g),
                args,
            } if primop(g.as_str()).is_none() => {
                // A tail call to a user function: "more akin to a
                // parameter-passing goto than to a recursive call" (§2).
                if !self.opts.tail_calls {
                    let v = self.gen_global_call(node, &g, &args, false)?;
                    return self.finish_tail_value(node, v);
                }
                for &a in &args {
                    let v = self.gen_into(a, Rep::Pointer)?;
                    self.asm.push(Insn::Push { src: v.op });
                    self.release(v);
                }
                let self_call = g.as_str() == self.fname;
                if self.specials_bound > 0 && !self_call {
                    // Unbinding before a cross-function tail call would
                    // change what the callee sees: fall back to a full
                    // call.
                    let id = self.program.fn_id(g.as_str());
                    self.pool.record_call(self.pos());
                    self.asm.push(Insn::Call {
                        f: CallTarget::Func(id),
                        nargs: args.len() as u8,
                    });
                    return self.emit_return_from_a();
                }
                if self.specials_bound > 0 {
                    self.asm.push(Insn::SpecUnbind {
                        n: self.specials_bound,
                    });
                }
                if self_call && self.simple && args.len() == self.lambda.required.len() {
                    // The whole function body is a loop for TNBIND.
                    self.pool.record_loop(0, self.pos());
                    self.asm.push(Insn::TailJmp {
                        nargs: args.len() as u8,
                        target: self.body_label,
                    });
                } else {
                    let id = self.program.fn_id(g.as_str());
                    self.asm.push(Insn::TailCall {
                        f: CallTarget::Func(id),
                        nargs: args.len() as u8,
                    });
                }
                Ok(())
            }
            NodeKind::Call {
                func: CallFunc::Expr(f),
                args,
            } => {
                if matches!(self.tree.kind(f), NodeKind::Lambda(_)) {
                    self.gen_let(node, f, &args, true)?;
                    return Ok(());
                }
                if let NodeKind::VarRef(v) = *self.tree.kind(f) {
                    if self.local_fns.contains_key(&v) {
                        self.gen_local_call(v, &args, true)?;
                        return Ok(());
                    }
                }
                if !self.opts.tail_calls || self.specials_bound > 0 {
                    let v = self.gen(node)?;
                    return self.finish_tail_value(node, v);
                }
                let fv = self.gen(f)?;
                let fv = self.protect(fv);
                for &a in &args {
                    let v = self.gen_into(a, Rep::Pointer)?;
                    self.asm.push(Insn::Push { src: v.op });
                    self.release(v);
                }
                self.asm.push(Insn::TailCall {
                    f: CallTarget::Value(fv.op),
                    nargs: args.len() as u8,
                });
                self.release(fv);
                Ok(())
            }
            NodeKind::Return(v) => {
                // Return in tail position of an enclosing tail progbody.
                self.gen_return(v)
            }
            NodeKind::Go(tag) => self.gen_go(&tag),
            _ => {
                let v = self.gen_into(node, Rep::Pointer)?;
                self.finish_tail_value(node, v)
            }
        }
    }

    fn finish_tail_value(&mut self, node: NodeId, v: Val) -> R<()> {
        let v = self.certify(node, v)?;
        self.asm.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: v.op,
        });
        self.release(v);
        self.emit_ret();
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum FloatOp {
    Add,
    Sub,
    Mult,
    Div,
    Max,
    Min,
}

#[derive(Clone, Copy)]
enum UnFloat {
    Sin,
    Cos,
    Sqrt,
}

#[derive(Clone, Copy)]
enum IntOp {
    Add,
    Sub,
    Mult,
    Div,
    DivFloor,
    Rem,
    ModFloor,
}

/// A jump-table plan for a `caseq` whose keys are dense fixnums.
struct DensePlan {
    min: i64,
    span: i64,
    /// slot\[i\] = clause index handling key `min + i`.
    slots: Vec<Option<usize>>,
}

fn dense_fixnum_plan(clauses: &[s1lisp_ast::CaseqClause]) -> Option<DensePlan> {
    let mut keys: Vec<(i64, usize)> = Vec::new();
    for (ci, c) in clauses.iter().enumerate() {
        for k in &c.keys {
            match k {
                Datum::Fixnum(n) => keys.push((*n, ci)),
                _ => return None,
            }
        }
    }
    if keys.len() < 3 {
        return None;
    }
    let min = keys.iter().map(|&(n, _)| n).min()?;
    let max = keys.iter().map(|&(n, _)| n).max()?;
    let span = max - min + 1;
    if !(1..=64).contains(&span) {
        return None;
    }
    let mut slots = vec![None; span as usize];
    for (n, ci) in keys {
        let slot = &mut slots[(n - min) as usize];
        if slot.is_none() {
            *slot = Some(ci); // first clause wins, like the chain
        }
    }
    Some(DensePlan { min, span, slots })
}

fn is_test_op(name: &str) -> bool {
    matches!(
        name,
        "=" | "/=" | "<" | ">" | "<=" | ">=" | "zerop" | "null" | "not" | "eq" | "consp" | "atom"
    )
}

fn test_arity_ok(name: &str, n: usize) -> bool {
    match name {
        "zerop" | "null" | "not" | "consp" | "atom" => n == 1,
        _ => n == 2,
    }
}

/// Whether a (special) variable has any reference (we only cache specials
/// that are actually read or written).
fn within_lambda(tree: &Tree, v: VarId) -> bool {
    let var = tree.var(v);
    !var.refs.is_empty() || !var.setqs.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_opt::Optimizer;
    use s1lisp_reader::{read_all_str, Interner};
    use s1lisp_s1sim::Machine;

    /// Compiles a program (optimizing first) and returns a machine plus a
    /// matching interpreter for differential checks.
    fn build(src: &str, opts: &CodegenOptions) -> (Machine, s1lisp_interp::Interp) {
        let mut i = Interner::new();
        let forms = read_all_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let fns = fe.convert_toplevel(&forms).unwrap();
        let mut program = Program::new();
        let mut interp = s1lisp_interp::Interp::new();
        for mut f in fns {
            let mut o = Optimizer::new();
            o.optimize(&mut f.tree);
            compile(f.name.as_str(), &f.tree, &mut program, opts).unwrap();
            interp.define(f);
        }
        (Machine::new(program), interp)
    }

    /// Runs both engines and asserts equal results.
    fn check(src: &str, calls: &[(&str, Vec<Value>)]) -> Machine {
        let opts = CodegenOptions::default();
        let (mut m, interp) = build(src, &opts);
        for (name, args) in calls {
            let want = interp.call(name, args);
            let got = m.run(name, args);
            match (want, got) {
                (Ok(w), Ok(g)) => {
                    assert_eq!(g, w, "result mismatch for {name} {args:?}");
                }
                (Err(_), Err(_)) => {}
                (w, g) => panic!("divergence for {name} {args:?}: interp={w:?} machine={g:?}"),
            }
        }
        m
    }

    fn fx(n: i64) -> Value {
        Value::Fixnum(n)
    }

    fn fl(x: f64) -> Value {
        Value::Flonum(x)
    }

    #[test]
    fn simple_arithmetic() {
        check(
            "(defun f (x y) (+ (* x x) y))",
            &[("f", vec![fx(3), fx(4)]), ("f", vec![fx(-2), fx(0)])],
        );
    }

    #[test]
    fn typed_float_pipeline() {
        check(
            "(defun norm (a b) (sqrt$f (+$f (*$f a a) (*$f b b))))",
            &[("norm", vec![fl(3.0), fl(4.0)])],
        );
    }

    #[test]
    fn conditionals_and_comparisons() {
        check(
            "(defun classify (x) (cond ((< x 0) 'neg) ((zerop x) 'zero) (t 'pos)))",
            &[
                ("classify", vec![fx(-5)]),
                ("classify", vec![fx(0)]),
                ("classify", vec![fx(7)]),
            ],
        );
    }

    #[test]
    fn exptl_runs_in_constant_stack() {
        let m = check(
            "(defun exptl (x n a)
               (cond ((zerop n) a)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                     (t (exptl (* x x) (floor (/ n 2)) a))))",
            &[("exptl", vec![fx(3), fx(10), fx(1)])],
        );
        assert!(m.stats.tail_calls > 0, "self-calls must be tail transfers");
        assert_eq!(m.stats.max_call_depth, 0, "no frames pushed");
    }

    #[test]
    fn deep_tail_recursion_does_not_grow_the_stack() {
        let opts = CodegenOptions::default();
        let (mut m, _) = build(
            "(defun loopn (n) (if (= n 0) 'done (loopn (- n 1))))",
            &opts,
        );
        let v = m.run("loopn", &[fx(1_000_000)]).unwrap();
        assert_eq!(v.to_string(), "done");
        assert_eq!(m.stats.max_call_depth, 0);
        assert!(m.stats.max_stack_words < 32);
    }

    #[test]
    fn without_tail_calls_the_stack_grows() {
        let opts = CodegenOptions {
            tail_calls: false,
            ..CodegenOptions::default()
        };
        let (mut m, _) = build(
            "(defun loopn (n) (if (= n 0) 'done (loopn (- n 1))))",
            &opts,
        );
        let err = m.run("loopn", &[fx(1_000_000)]).unwrap_err();
        assert!(matches!(err.cause(), s1lisp_s1sim::Trap::StackOverflow));
    }

    #[test]
    fn let_and_lists() {
        check(
            "(defun f (a b) (let ((x (cons a b)) (y (list a b a))) (list (car x) (cdr x) (length y))))",
            &[("f", vec![fx(1), fx(2)])],
        );
    }

    #[test]
    fn optional_defaults_dispatch() {
        let m = check(
            "(defun f (a &optional (b 3.0) (c a)) (list a b c))",
            &[("f", vec![fx(1)])],
        );
        let mut m = m;
        for args in [vec![fx(1), fx(2)], vec![fx(1), fx(2), fx(9)]] {
            let v = m.run("f", &args).unwrap();
            assert_eq!(v.to_string().matches(' ').count(), 2, "{v}");
        }
        assert!(m.run("f", &[]).is_err());
        assert!(m.run("f", &[fx(1), fx(2), fx(3), fx(4)]).is_err());
    }

    #[test]
    fn rest_parameters_listify() {
        check(
            "(defun f (a &rest r) (cons a r))",
            &[("f", vec![fx(1)]), ("f", vec![fx(1), fx(2), fx(3)])],
        );
    }

    #[test]
    fn closures_capture_and_mutate() {
        check(
            "(defun make-counter () (let ((n 0)) (lambda () (setq n (+ n 1)) n)))
             (defun run2 () (let ((c (make-counter))) (c) (c)))",
            &[("run2", vec![])],
        );
    }

    #[test]
    fn higher_order_functions() {
        check(
            "(defun add1 (x) (+ x 1))
             (defun twice (f x) (f (f x)))
             (defun go2 (x) (twice #'add1 x))",
            &[("go2", vec![fx(5)])],
        );
    }

    #[test]
    fn prog_loops() {
        check(
            "(defun sum-to (n)
               (prog (acc)
                 (setq acc 0)
                 top
                 (if (= n 0) (return acc))
                 (setq acc (+ acc n) n (- n 1))
                 (go top)))",
            &[("sum-to", vec![fx(1000)])],
        );
    }

    #[test]
    fn catch_and_throw_unwind() {
        check(
            "(defun inner (x) (if (< x 0) (throw 'out 'negative) (* x 2)))
             (defun outer (x) (catch 'out (inner x)))",
            &[("outer", vec![fx(5)]), ("outer", vec![fx(-5)])],
        );
    }

    #[test]
    fn special_variables_deep_bind() {
        let opts = CodegenOptions::default();
        let (mut m, interp) = build(
            "(proclaim '(special *level*))
             (defun probe () *level*)
             (defun with-level (*level*) (probe))",
            &opts,
        );
        interp.set_global("*level*", fx(1));
        m.set_global("*level*", &fx(1)).unwrap();
        assert_eq!(
            m.run("with-level", &[fx(42)]).unwrap(),
            interp.call("with-level", &[fx(42)]).unwrap()
        );
        assert_eq!(
            m.run("probe", &[]).unwrap(),
            interp.call("probe", &[]).unwrap()
        );
        assert!(m.stats.special_searches > 0);
    }

    #[test]
    fn pdl_numbers_avoid_heap_boxes() {
        // testfn-like: float temporaries that must take pointer form
        // because they are passed to a user function.
        let src = "(defun use2 (x y) '())
                   (defun f (a b)
                     (let ((d (+$f a b)) (e (*$f a b)))
                       (use2 d e)
                       (max$f d e)))";
        let on = CodegenOptions::default();
        let off = CodegenOptions {
            pdl_numbers: false,
            ..CodegenOptions::default()
        };
        let (mut m1, _) = build(src, &on);
        let (mut m2, _) = build(src, &off);
        let v1 = m1.run("f", &[fl(2.0), fl(3.0)]).unwrap();
        let v2 = m2.run("f", &[fl(2.0), fl(3.0)]).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(v1, fl(6.0));
        assert!(
            m1.stats.heap.flonums < m2.stats.heap.flonums,
            "pdl on: {} boxes, off: {} boxes",
            m1.stats.heap.flonums,
            m2.stats.heap.flonums
        );
        assert!(m1.stats.pdl_numbers > 0);
    }

    #[test]
    fn caseq_dispatch() {
        check(
            "(defun f (x) (caseq x ((1 2) 'small) ((10) 'ten) (t 'other)))",
            &[
                ("f", vec![fx(1)]),
                ("f", vec![fx(2)]),
                ("f", vec![fx(10)]),
                ("f", vec![fx(99)]),
            ],
        );
    }

    #[test]
    fn boolean_short_circuit_makes_no_closures() {
        let m = check(
            "(defun f (a b c) (if (and a (or b c)) (list 1) (list 2)))",
            &[
                ("f", vec![fx(1), Value::Nil, fx(1)]),
                ("f", vec![fx(1), Value::Nil, Value::Nil]),
                ("f", vec![Value::Nil, fx(1), fx(1)]),
            ],
        );
        assert_eq!(m.stats.closures_made, 0, "E3: no closures at run time");
    }

    #[test]
    fn quoted_structure_is_static() {
        let mut m = check("(defun f () '(1 2 3))", &[("f", vec![])]);
        let before = m.stats.heap.conses;
        m.run("f", &[]).unwrap();
        m.run("f", &[]).unwrap();
        assert_eq!(m.stats.heap.conses, before, "constants materialize once");
    }

    #[test]
    fn mutual_recursion() {
        check(
            "(defun even? (n) (if (zerop n) t (odd? (- n 1))))
             (defun odd? (n) (if (zerop n) '() (even? (- n 1))))",
            &[("even?", vec![fx(10)]), ("even?", vec![fx(7)])],
        );
    }

    #[test]
    fn declared_floats_stay_raw_in_loops() {
        let src = "(defun dot (ax ay bx by)
                     (declare (flonum ax ay bx by))
                     (+$f (*$f ax bx) (*$f ay by)))";
        let on = CodegenOptions::default();
        let off = CodegenOptions {
            representation_analysis: false,
            ..CodegenOptions::default()
        };
        let (mut m1, _) = build(src, &on);
        let (mut m2, _) = build(src, &off);
        let args = [fl(1.0), fl(2.0), fl(3.0), fl(4.0)];
        assert_eq!(m1.run("dot", &args).unwrap(), m2.run("dot", &args).unwrap());
        assert!(
            m1.stats.insns < m2.stats.insns,
            "representation analysis saves work: {} vs {}",
            m1.stats.insns,
            m2.stats.insns
        );
    }

    #[test]
    fn quadratic_end_to_end() {
        check(
            "(defun quadratic (a b c)
               (let ((d (- (* b b) (* 4.0 a c))))
                 (cond ((< d 0) '())
                       ((= d 0) (list (/ (- b) (* 2.0 a))))
                       (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
                            (list (/ (+ (- b) sd) two-a)
                                  (/ (- (- b) sd) two-a)))))))",
            &[
                ("quadratic", vec![fl(1.0), fl(-3.0), fl(2.0)]),
                ("quadratic", vec![fl(1.0), fl(0.0), fl(1.0)]),
                ("quadratic", vec![fl(1.0), fl(-2.0), fl(1.0)]),
            ],
        );
    }
}

#[cfg(test)]
mod backtracking_tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_opt::Optimizer;
    use s1lisp_reader::{read_all_str, Interner};
    use s1lisp_s1sim::Machine;

    #[test]
    fn backtracking_pack_is_no_worse() {
        let src = "(defun busy (a b c d)
                     (let ((p (+ a b)) (q (+ c d)) (r (+ a c)) (s (+ b d)))
                       (+ (* p q) (* r s) (* p s) (* q r))))";
        let mut results = Vec::new();
        for backtracking in [false, true] {
            let mut i = Interner::new();
            let forms = read_all_str(src, &mut i).unwrap();
            let mut fe = Frontend::new(&mut i);
            let mut f = fe.convert_toplevel(&forms).unwrap().remove(0);
            Optimizer::new().optimize(&mut f.tree);
            let mut program = Program::new();
            let opts = CodegenOptions {
                backtracking_pack: backtracking,
                ..CodegenOptions::default()
            };
            compile("busy", &f.tree, &mut program, &opts).unwrap();
            let mut m = Machine::new(program);
            let v = m
                .run(
                    "busy",
                    &[
                        Value::Fixnum(1),
                        Value::Fixnum(2),
                        Value::Fixnum(3),
                        Value::Fixnum(4),
                    ],
                )
                .unwrap();
            results.push((v, m.stats.insns));
        }
        assert_eq!(results[0].0, results[1].0);
        assert!(results[1].1 <= results[0].1 + 2, "{results:?}");
    }
}
