//! Code generation (§4.5 of the paper).
//!
//! "Code generation is performed during a single tree walk over the
//! decorated program tree."  The decorations are the annotations of
//! `s1lisp-annotate` (binding strategy, WANTREP/ISREP, pdl numbers), the
//! analyses of `s1lisp-analysis` (tail positions, special-variable
//! caching), and TNBIND's storage assignments; the output is S-1 code for
//! the `s1lisp-s1sim` machine.
//!
//! What the generated code does, in the paper's terms:
//!
//! * **Tail calls become parameter-passing gotos** (§2): self tail calls
//!   are `TailJmp`s to the function body, cross-function tail calls reuse
//!   the frame (`TailCall`).
//! * **Lambdas compile by binding annotation** (§4.4): `let`s bind in
//!   the current frame, join points become local code blocks entered by
//!   jumps or the fast local-call linkage, and only genuinely escaping
//!   lambdas construct closures.
//! * **Representation analysis drives coercions** (§6.2): raw floats flow
//!   between `$f` operations without boxing; a box is emitted only where
//!   ISREP ≠ WANTREP.
//! * **Pdl numbers** (§6.3): a box whose lifetime is frame-bounded is a
//!   `MOVP`-tagged pointer into a stack slot; certification copies it to
//!   the heap only if it reaches an unsafe operation or is returned.
//! * **TNBIND** (§6.1): let-variables whose lifetimes avoid calls are
//!   packed into registers; the rest get frame slots.  Arithmetic targets
//!   the RT registers to satisfy the 2½-address constraint.
//!
//! Every switch in [`CodegenOptions`] exists for an ablation experiment
//! (see DESIGN.md's experiment index).

#![warn(missing_docs)]

pub mod array_demo;
mod gen;
mod print;

pub use gen::{compile, compile_traced, emit_annotated, CodegenError};
pub use print::disassemble;

/// Branch tensioning — "the elimination of branches to branch
/// instructions" (§4.5), the one optimization the paper concedes may need
/// a peephole pass because "branch instructions do not appear in the
/// internal tree, but rather are artifacts of the embedding of the tree
/// into a linear instruction stream."
///
/// Every branch in this code generator goes through the label table, so
/// tensioning is a label-table fixpoint: a label that points at an
/// unconditional jump is retargeted to that jump's destination.  Returns
/// the number of labels retargeted.
pub fn tension_branches(code: &mut s1lisp_s1sim::FuncCode) -> usize {
    let mut changed = 0;
    for l in 0..code.labels.len() {
        let mut hops = 0;
        loop {
            let off = code.labels[l];
            let Some(s1lisp_s1sim::Insn::Jmp { target }) = code.insns.get(off) else {
                break;
            };
            let next = code.labels[*target as usize];
            if next == off || hops > 64 {
                break; // self-loop (or pathological chain): leave it
            }
            code.labels[l] = next;
            changed += 1;
            hops += 1;
        }
    }
    changed
}

/// Code-generation switches (each the knob for one experiment).
#[derive(Clone, Debug)]
#[allow(clippy::struct_excessive_bools)]
pub struct CodegenOptions {
    /// Compile tail calls as parameter-passing gotos (E4).
    pub tail_calls: bool,
    /// Stack-allocate frame-bounded number boxes (E7).
    pub pdl_numbers: bool,
    /// Cache special-variable lookups once per function entry (E10).
    pub cache_specials: bool,
    /// Pack call-free variables into registers via TNBIND (E12).
    pub register_allocation: bool,
    /// Honor representation analysis; off forces every value through
    /// pointer form (E6).
    pub representation_analysis: bool,
    /// Use the backtracking TN packer instead of the greedy one ("a
    /// packing method that backtracks can potentially produce better
    /// packings than one that does not", §6.1).
    pub backtracking_pack: bool,
}

impl Default for CodegenOptions {
    fn default() -> CodegenOptions {
        CodegenOptions {
            tail_calls: true,
            pdl_numbers: true,
            cache_specials: true,
            register_allocation: true,
            representation_analysis: true,
            backtracking_pack: false,
        }
    }
}

#[cfg(test)]
mod tension_tests {
    use s1lisp_s1sim::{Asm, Insn, Operand, Reg};

    #[test]
    fn jump_chains_collapse() {
        let mut a = Asm::new("f", 0);
        let l1 = a.label();
        let l2 = a.label();
        let l3 = a.label();
        a.push(Insn::Jmp { target: l1 }); // 0
        a.bind(l1);
        a.push(Insn::Jmp { target: l2 }); // 1
        a.bind(l2);
        a.push(Insn::Jmp { target: l3 }); // 2
        a.bind(l3);
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::fixnum(1),
        }); // 3
        a.push(Insn::Ret);
        let mut code = a.finish();
        let changed = crate::tension_branches(&mut code);
        assert!(changed >= 2);
        // Every label now lands on the MOV directly.
        for &l in &[l1, l2, l3] {
            assert_eq!(code.labels[l as usize], 3);
        }
    }

    #[test]
    fn self_loops_are_left_alone() {
        let mut a = Asm::new("spin", 0);
        let top = a.here();
        a.push(Insn::Jmp { target: top });
        let mut code = a.finish();
        let changed = crate::tension_branches(&mut code);
        assert_eq!(changed, 0);
        assert_eq!(code.labels[top as usize], 0);
    }
}
