//! "Parenthesized assembly language" output (Table 4's format).

use s1lisp_s1sim::{FuncCode, Insn, Operand, Program, Word};

fn op_str(program: &Program, op: Operand) -> String {
    match op {
        Operand::Reg(r) => format!("{r:?}"),
        Operand::Const(Word::Raw(n)) => format!("(? {n})"),
        Operand::Const(Word::F(x)) => format!("(QUOTE {x})"),
        Operand::Const(Word::NIL) => "(SQ *:SQ-NIL)".to_string(),
        Operand::Const(Word::T) => "(SQ *:SQ-T)".to_string(),
        Operand::Const(Word::Ptr(tag, n)) => match tag {
            s1lisp_s1sim::Tag::Fixnum => format!("(QUOTE {})", n as i64),
            s1lisp_s1sim::Tag::Symbol => format!(
                "(QUOTE {})",
                program
                    .symbols
                    .get(n as usize)
                    .map(String::as_str)
                    .unwrap_or("?")
            ),
            _ => format!("(PTR {tag:?} {n})"),
        },
        Operand::Ind(r, off) => format!("({r:?} {off})"),
        Operand::Idx {
            base,
            off,
            idx,
            shift,
        } => format!("(REF ({base:?} {off}) {idx:?}^{shift})"),
        Operand::IdxMem {
            base,
            off,
            idx_base,
            idx_off,
            shift,
        } => format!("(REF ({base:?} {off}) (REF {idx_base:?} {idx_off})^{shift})"),
    }
}

/// Renders one function in the paper's parenthesized-assembly style,
/// with `L<k>` labels interleaved.
///
/// # Examples
///
/// ```
/// use s1lisp_s1sim::{Asm, Insn, Operand, Program, Reg};
///
/// let mut asm = Asm::new("f", 1);
/// asm.push(Insn::Mov { dst: Operand::Reg(Reg::A), src: Operand::arg(0) });
/// asm.push(Insn::Ret);
/// let mut p = Program::new();
/// let id = p.define(asm.finish());
/// let text = s1lisp_codegen::disassemble(&p, p.func(id).unwrap());
/// assert!(text.contains("(MOV A (FP 0))"));
/// assert!(text.contains("(RET)"));
/// ```
pub fn disassemble(program: &Program, code: &FuncCode) -> String {
    let mut out = String::new();
    out.push_str(&format!(";;; {} ({} slots)\n", code.name, code.nslots));
    for (i, insn) in code.insns.iter().enumerate() {
        for (l, &off) in code.labels.iter().enumerate() {
            if off == i {
                out.push_str(&format!("L{l:04}\n"));
            }
        }
        out.push_str("        ");
        out.push_str(&insn_str(program, insn));
        out.push('\n');
    }
    for (l, &off) in code.labels.iter().enumerate() {
        if off == code.insns.len() {
            out.push_str(&format!("L{l:04}\n"));
        }
    }
    out
}

fn insn_str(p: &Program, insn: &Insn) -> String {
    use Insn as I;
    let o = |op: &Operand| op_str(p, *op);
    match insn {
        I::Mov { dst, src } => format!("(MOV {} {})", o(dst), o(src)),
        I::Movp { tag, dst, src } => format!("((MOVP *:DTP-{tag:?}) {} {})", o(dst), o(src)),
        I::Add { dst, a, b } => format!("(ADD {} {} {})", o(dst), o(a), o(b)),
        I::Sub { dst, a, b } => format!("(SUB {} {} {})", o(dst), o(a), o(b)),
        I::Mult { dst, a, b } => format!("(MULT {} {} {})", o(dst), o(a), o(b)),
        I::Div { dst, a, b } => format!("(DIV {} {} {})", o(dst), o(a), o(b)),
        I::DivFloor { dst, a, b } => format!("(DIVF {} {} {})", o(dst), o(a), o(b)),
        I::Rem { dst, a, b } => format!("(REM {} {} {})", o(dst), o(a), o(b)),
        I::ModFloor { dst, a, b } => format!("(MODF {} {} {})", o(dst), o(a), o(b)),
        I::Neg { dst, src } => format!("(NEG {} {})", o(dst), o(src)),
        I::FAdd { dst, a, b } => format!("((FADD S) {} {} {})", o(dst), o(a), o(b)),
        I::FSub { dst, a, b } => format!("((FSUB S) {} {} {})", o(dst), o(a), o(b)),
        I::FMult { dst, a, b } => format!("((FMULT S) {} {} {})", o(dst), o(a), o(b)),
        I::FDiv { dst, a, b } => format!("((FDIV S) {} {} {})", o(dst), o(a), o(b)),
        I::FMax { dst, a, b } => format!("((FMAX S) {} {} {})", o(dst), o(a), o(b)),
        I::FMin { dst, a, b } => format!("((FMIN S) {} {} {})", o(dst), o(a), o(b)),
        I::FNeg { dst, src } => format!("((FNEG S) {} {})", o(dst), o(src)),
        I::FSin { dst, src } => format!("((FSIN S) {} {})", o(dst), o(src)),
        I::FCos { dst, src } => format!("((FCOS S) {} {})", o(dst), o(src)),
        I::FSqrt { dst, src } => format!("((FSQRT S) {} {})", o(dst), o(src)),
        I::FAtan { dst, src } => format!("((FATAN S) {} {})", o(dst), o(src)),
        I::FExp { dst, src } => format!("((FEXP S) {} {})", o(dst), o(src)),
        I::FLog { dst, src } => format!("((FLOG S) {} {})", o(dst), o(src)),
        I::FloatIt { dst, src } => format!("(FLOAT {} {})", o(dst), o(src)),
        I::FixIt { dst, src } => format!("(FIX {} {})", o(dst), o(src)),
        I::Jmp { target } => format!("(JMPA () L{target:04})"),
        I::JmpIf { cond, a, b, target } => {
            format!("((JMPZ {cond:?}) {} {} L{target:04})", o(a), o(b))
        }
        I::JmpNil { src, target } => format!("((JMPNIL) {} L{target:04})", o(src)),
        I::JmpNotNil { src, target } => format!("((JMPNNIL) {} L{target:04})", o(src)),
        I::JmpTag { tag, src, target } => {
            format!("((JMPTAG *:DTP-{tag:?}) {} L{target:04})", o(src))
        }
        I::JmpEq { a, b, target } => format!("((JMPEQ) {} {} L{target:04})", o(a), o(b)),
        I::Dispatch { src, targets } => {
            let t: Vec<String> = targets.iter().map(|l| format!("L{l:04}")).collect();
            format!("(DISPATCH {} ({}))", o(src), t.join(" "))
        }
        I::Push { src } => format!("((PUSH UP) SP {})", o(src)),
        I::Pop { dst } => format!("((POP UP) {} SP)", o(dst)),
        I::AllocSlots { n, init } => format!("((ALLOC {n}) (? {init}))"),
        I::FreeSlots { n } => format!("((FREE {n}))"),
        I::Call { f, nargs } => format!("(%CALL {f:?} {nargs})"),
        I::TailCall { f, nargs } => format!("(%TAILCALL {f:?} {nargs})"),
        I::TailJmp { nargs, target } => format!("(%TAILJMP {nargs} L{target:04})"),
        I::Ret => "(RET)".to_string(),
        I::Trap { msg } => format!("(TRAP \"{msg}\")"),
        I::ConsRt { dst, car, cdr } => {
            format!("(%CONS {} {} {})", o(dst), o(car), o(cdr))
        }
        I::Car { dst, src } => format!("(CAR {} {})", o(dst), o(src)),
        I::Cdr { dst, src } => format!("(CDR {} {})", o(dst), o(src)),
        I::BoxFlo { dst, src } => format!("(%SINGLE-FLONUM-CONS {} {})", o(dst), o(src)),
        I::UnboxFlo { dst, src } => format!("(%FLONUM-FETCH {} {})", o(dst), o(src)),
        I::Certify { dst, src } => format!("(%CERTIFY {} {})", o(dst), o(src)),
        I::MakeCell { dst, src } => format!("(%CELL-CONS {} {})", o(dst), o(src)),
        I::LoadCell { dst, cell } => format!("(%CELL-FETCH {} {})", o(dst), o(cell)),
        I::StoreCell { cell, src } => format!("(%CELL-STORE {} {})", o(cell), o(src)),
        I::MakeClosure { dst, fnid, ncells } => {
            format!("(%CLOSURE-CONS {} FN{fnid} {ncells})", o(dst))
        }
        I::LoadEnv { dst, index } => format!("(%ENV-FETCH {} {index})", o(dst)),
        I::SpecBind { sym, src } => format!(
            "(%SPECBIND {} {})",
            p.symbols
                .get(*sym as usize)
                .map(String::as_str)
                .unwrap_or("?"),
            o(src)
        ),
        I::SpecUnbind { n } => format!("(%SPECUNBIND {n})"),
        I::SpecLookup { dst, sym } => format!(
            "(%SPECLOOKUP {} {})",
            o(dst),
            p.symbols
                .get(*sym as usize)
                .map(String::as_str)
                .unwrap_or("?")
        ),
        I::SpecRead { dst, sym } => format!(
            "(%SPECREAD {} {})",
            o(dst),
            p.symbols
                .get(*sym as usize)
                .map(String::as_str)
                .unwrap_or("?")
        ),
        I::SpecWrite { sym, src } => format!(
            "(%SPECWRITE {} {})",
            p.symbols
                .get(*sym as usize)
                .map(String::as_str)
                .unwrap_or("?"),
            o(src)
        ),
        I::RtCall { name, nargs, dst } => format!("(%CALLRT {name} {nargs} {})", o(dst)),
        I::PushCatch { tag, target } => format!("(%CATCH {} L{target:04})", o(tag)),
        I::PopCatch => "(%UNCATCH)".to_string(),
        I::Throw { tag, value } => format!("(%THROW {} {})", o(tag), o(value)),
        I::LoadFunction { dst, fnid } => format!("(%FUNCTION {} FN{fnid})", o(dst)),
        I::ListifyArgs { fixed } => format!("(%LISTIFY {fixed})"),
        I::LoadConst { dst, idx } => format!("(%CONSTANT {} K{idx})", o(dst)),
        I::LocalCall { target } => format!("(%LOCALCALL L{target:04})"),
        I::LocalRet => "(%LOCALRET)".to_string(),
        I::Apply { f, list } => format!("(%APPLY {} {})", o(f), o(list)),
    }
}
