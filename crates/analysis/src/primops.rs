//! The table of known primitive operations.
//!
//! This is the compiler's side of the builtin vocabulary whose run-time
//! semantics live in `s1lisp-interp` and whose instruction selections
//! live in `s1lisp-codegen`.  The optimizer consults it for:
//!
//! * **purity** — "invoking primitive functions known to be free of side
//!   effects on constant operands" (compile-time expression evaluation,
//!   §5), and the code-motion legality check of §7 ("the operations `*$f`
//!   and `sinc$f` … are known to the compiler to be immutable
//!   mathematical functions");
//! * **associativity/commutativity** — "certain manipulations of
//!   associative and commutative operators (such as table-driven
//!   elimination of identity operands)" (§5);
//! * **pdl-safety** — "operations are also classified as 'safe' and
//!   'unsafe'" (§6.3): an unsafe operation may smuggle a pointer into the
//!   heap or a global, so a stack-allocated (pdl) number must be
//!   certified first.

use s1lisp_reader::Datum;

/// An identity element of an associative/commutative operation, stored
/// as plain data so the table can be `static`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Identity {
    /// A fixnum identity (0 for `+`, 1 for `*`).
    Fixnum(i64),
    /// A flonum identity (0.0 for `+$f`, 1.0 for `*$f`).
    Flonum(f64),
}

impl Identity {
    /// Whether `d` is this identity element (same type and value).
    pub fn matches(self, d: &Datum) -> bool {
        match (self, d) {
            (Identity::Fixnum(a), Datum::Fixnum(b)) => a == *b,
            (Identity::Flonum(a), Datum::Flonum(b)) => a == *b,
            _ => false,
        }
    }

    /// The identity as a datum.
    pub fn to_datum(self) -> Datum {
        match self {
            Identity::Fixnum(n) => Datum::Fixnum(n),
            Identity::Flonum(x) => Datum::Flonum(x),
        }
    }
}

/// Which numeric type an operation produces, when known.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NumKind {
    /// Always a fixnum.
    Fixnum,
    /// Always a single-word flonum.
    Flonum,
    /// A number whose exact type depends on the arguments (generic
    /// arithmetic).
    Generic,
    /// A boolean (`t` or `()`).
    Boolean,
    /// Not a number (or unknown).
    Other,
}

/// Static facts about one primitive operation.
#[derive(Clone, Debug)]
pub struct Primop {
    /// Operation name as spelled in source.
    pub name: &'static str,
    /// Free of side effects *and* of dependence on mutable state: safe to
    /// fold, duplicate, reorder, or move past arbitrary calls.
    pub pure_math: bool,
    /// May allocate heap storage (a side effect that "may be eliminated
    /// but must not be duplicated", §5).
    pub allocates: bool,
    /// Mutates reachable structure (`rplaca`-class).
    pub writes: bool,
    /// Reads mutable structure (`car`-class): movable only where no
    /// intervening write can occur.
    pub reads_mutable: bool,
    /// pdl-safe: may receive a pointer into the stack without
    /// certification (§6.3).  Safe: type checks, arithmetic, comparisons,
    /// passing onward.  Unsafe: storing a pointer into reachable
    /// structure.
    pub pdl_safe: bool,
    /// Associative and commutative (may be re-associated; constants may
    /// be hoisted to the front, §7).
    pub assoc_commut: bool,
    /// Identity operand for table-driven identity elimination, e.g. 0
    /// for `+`, 1 for `*`.
    pub identity: Option<Identity>,
    /// Result type.
    pub result: NumKind,
}

macro_rules! ops {
    ($( $name:literal => pure:$p:literal alloc:$al:literal writes:$w:literal readsmut:$rm:literal
         safe:$s:literal ac:$ac:literal id:$id:expr, result:$res:ident );* $(;)?) => {
        &[ $( Primop {
            name: $name,
            pure_math: $p,
            allocates: $al,
            writes: $w,
            reads_mutable: $rm,
            pdl_safe: $s,
            assoc_commut: $ac,
            identity: $id,
            result: NumKind::$res,
        } ),* ]
    };
}

/// The primop table.
pub static PRIMOPS: &[Primop] = ops![
    // Generic arithmetic: pure mathematical functions.
    "+" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:Some(Identity::Fixnum(0)), result:Generic;
    "-" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    "*" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:Some(Identity::Fixnum(1)), result:Generic;
    "/" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    "1+" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    "1-" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    "abs" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    "min" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:None, result:Generic;
    "max" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:None, result:Generic;
    "floor" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Fixnum;
    "ceiling" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Fixnum;
    "truncate" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Fixnum;
    "round" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Fixnum;
    "mod" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    "rem" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    "expt" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Generic;
    // Comparisons and numeric predicates.
    "=" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "/=" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "<" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    ">" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "<=" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    ">=" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "zerop" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "plusp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "minusp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "oddp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "evenp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    // Type-specific arithmetic (§6.2's "+$f" family).
    "+$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:Some(Identity::Flonum(0.0)), result:Flonum;
    "-$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "*$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:Some(Identity::Flonum(1.0)), result:Flonum;
    "/$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "max$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:None, result:Flonum;
    "min$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:None, result:Flonum;
    "abs$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "+&" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:Some(Identity::Fixnum(0)), result:Fixnum;
    "-&" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Fixnum;
    "*&" => pure:true alloc:false writes:false readsmut:false safe:true ac:true id:Some(Identity::Fixnum(1)), result:Fixnum;
    // Transcendental: immutable mathematical functions (§7).
    "sqrt" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "sqrt$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "sin" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "cos" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "sin$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "cos$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "sinc$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "cosc$f" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "atan" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "exp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "log" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "float" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Flonum;
    "fix" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Fixnum;
    // Predicates on objects: pure (type of an object never changes).
    "null" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "not" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "atom" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "consp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "listp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "symbolp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "numberp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "fixnump" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "flonump" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "stringp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "functionp" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "eq" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    "eql" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Boolean;
    // equal traverses mutable structure.
    "equal" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Boolean;
    // List construction: allocates; results are fresh.
    "cons" => pure:false alloc:true writes:false readsmut:false safe:false ac:false id:None, result:Other;
    "list" => pure:false alloc:true writes:false readsmut:false safe:false ac:false id:None, result:Other;
    "list*" => pure:false alloc:true writes:false readsmut:false safe:false ac:false id:None, result:Other;
    "append" => pure:false alloc:true writes:false readsmut:true safe:false ac:false id:None, result:Other;
    "reverse" => pure:false alloc:true writes:false readsmut:true safe:false ac:false id:None, result:Other;
    // List observation: reads mutable structure.
    "car" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "cdr" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "caar" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "cadr" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "cdar" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "cddr" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "caddr" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "cdddr" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "length" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Fixnum;
    "nth" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "nthcdr" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "last" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "assq" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "assoc" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "memq" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    "member" => pure:false alloc:false writes:false readsmut:true safe:true ac:false id:None, result:Other;
    // Structure mutation: the canonical unsafe operations (§6.3).
    "rplaca" => pure:false alloc:false writes:true readsmut:false safe:false ac:false id:None, result:Other;
    "rplacd" => pure:false alloc:false writes:true readsmut:false safe:false ac:false id:None, result:Other;
    // Miscellaneous.
    "identity" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Other;
    // Control-adjacent builtins: never movable or foldable.
    "throw" => pure:false alloc:false writes:true readsmut:true safe:true ac:false id:None, result:Other;
    "apply" => pure:false alloc:true writes:true readsmut:true safe:true ac:false id:None, result:Other;
    "%function" => pure:true alloc:false writes:false readsmut:false safe:true ac:false id:None, result:Other;
    "error" => pure:false alloc:false writes:true readsmut:true safe:true ac:false id:None, result:Other;
];

/// Looks up a primitive operation by name.
pub fn primop(name: &str) -> Option<&'static Primop> {
    PRIMOPS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_known_ops() {
        assert!(primop("+").unwrap().pure_math);
        assert!(primop("+").unwrap().assoc_commut);
        assert!(primop("cons").unwrap().allocates);
        assert!(!primop("cons").unwrap().pdl_safe);
        assert!(primop("rplaca").unwrap().writes);
        assert!(primop("no-such-op").is_none());
    }

    #[test]
    fn identity_elements() {
        assert!(primop("+")
            .unwrap()
            .identity
            .unwrap()
            .matches(&Datum::Fixnum(0)));
        assert!(primop("*$f")
            .unwrap()
            .identity
            .unwrap()
            .matches(&Datum::Flonum(1.0)));
        assert!(!primop("+")
            .unwrap()
            .identity
            .unwrap()
            .matches(&Datum::Flonum(0.0)));
        assert!(primop("-").unwrap().identity.is_none());
    }

    #[test]
    fn paper_classifications_hold() {
        // §6.3: "checking the type of a pointer is safe, as is passing a
        // pointer to a procedure.  However, storing a pointer into a
        // global variable or into a heap object (as with rplaca) is
        // unsafe."
        assert!(primop("consp").unwrap().pdl_safe);
        assert!(!primop("rplaca").unwrap().pdl_safe);
        // §7: *$f and sinc$f are immutable mathematical functions.
        assert!(primop("*$f").unwrap().pure_math);
        assert!(primop("sinc$f").unwrap().pure_math);
        // car reads mutable structure: not movable past unknown calls.
        assert!(!primop("car").unwrap().pure_math);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PRIMOPS.iter().map(|p| p.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn covers_interpreter_builtins() {
        // Every interpreter builtin the compiler may meet has a primop
        // entry (so the optimizer never treats a builtin as an unknown
        // user function).
        for name in s1lisp_interp::BUILTIN_NAMES {
            assert!(primop(name).is_some(), "missing primop entry for {name}");
        }
    }
}
