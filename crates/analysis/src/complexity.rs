//! Complexity (object-code size) analysis.
//!
//! "Make a preliminary estimate of the size of the object code for each
//! subtree (this is primarily to aid the optimizer in deciding whether to
//! substitute copies of the initializing expression for several
//! occurrences of a variable)." (§4.2.)
//!
//! The unit is an abstract "instruction"; the estimates only need to be
//! *ordered* sensibly, not exact.

use std::collections::HashMap;

use s1lisp_ast::{CallFunc, NodeId, NodeKind, Tree};

/// Estimated object-code size of a subtree, in abstract instructions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Complexity(pub u32);

impl Complexity {
    /// A subtree at least this cheap may be freely duplicated by the
    /// substitution heuristics (a constant or variable reference).
    pub const TRIVIAL: Complexity = Complexity(1);
}

/// Computes size estimates for every subtree.
pub fn complexity(tree: &Tree) -> HashMap<NodeId, Complexity> {
    let mut map = HashMap::new();
    walk(tree, tree.root, &mut map);
    map
}

fn walk(tree: &Tree, node: NodeId, map: &mut HashMap<NodeId, Complexity>) -> u32 {
    let own = match tree.kind(node) {
        NodeKind::Constant(_) | NodeKind::VarRef(_) => 1,
        NodeKind::Setq { .. } => 1,
        NodeKind::If { .. } => 2, // test jump + join
        NodeKind::Progn(_) => 0,
        NodeKind::Call { func, .. } => match func {
            // Primitive: roughly one instruction; user call: frame setup,
            // argument pushes, call, result fetch.
            CallFunc::Global(g) => {
                if crate::primops::primop(g.as_str()).is_some() {
                    1
                } else {
                    4
                }
            }
            CallFunc::Expr(f) => {
                if matches!(tree.kind(*f), NodeKind::Lambda(_)) {
                    0 // a let binds in place
                } else {
                    5 // computed function call
                }
            }
        },
        NodeKind::Lambda(_) => 3, // closure construction
        NodeKind::Caseq { clauses, .. } => 2 + clauses.len() as u32,
        NodeKind::Catcher { .. } => 4,
        NodeKind::Progbody(_) => 1,
        NodeKind::Go(_) => 1,
        NodeKind::Return(_) => 1,
    };
    let mut total = own;
    for c in tree.children(node) {
        total += walk(tree, c, map);
    }
    map.insert(node, Complexity(total));
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn measure(src: &str) -> (Tree, HashMap<NodeId, Complexity>) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let c = complexity(&f.tree);
        (f.tree, c)
    }

    #[test]
    fn leaves_are_trivial() {
        let (tree, c) = measure("(defun f (x) x)");
        let NodeKind::Lambda(l) = tree.kind(tree.root) else {
            panic!()
        };
        assert_eq!(c[&l.body], Complexity::TRIVIAL);
    }

    #[test]
    fn bigger_trees_cost_more() {
        let (t1, c1) = measure("(defun f (x) (+ x 1))");
        let (t2, c2) = measure("(defun f (x) (+ (* x x) (sqrt (+ x 1))))");
        assert!(c2[&t2.root] > c1[&t1.root]);
    }

    #[test]
    fn user_calls_cost_more_than_primitives() {
        let (t1, c1) = measure("(defun f (x) (+ x x))");
        let (t2, c2) = measure("(defun f (x) (frotz x x))");
        assert!(c2[&t2.root] > c1[&t1.root]);
    }

    #[test]
    fn every_node_has_an_estimate() {
        let (tree, c) = measure("(defun f (a b) (if a (list a b) (cons b a)))");
        for id in s1lisp_ast::subtree_nodes(&tree, tree.root) {
            assert!(c.contains_key(&id));
        }
    }
}
