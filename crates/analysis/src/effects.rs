//! Side-effects analysis.
//!
//! "For each subtree, classify the possible side-effects produced by its
//! execution, and the side-effects that might adversely affect such
//! execution." (§4.2.)
//!
//! The classification drives the legality side of the source-level
//! transformations: rule 2 of §5 deletes an unused argument only when its
//! "execution … has no side effects (except possibly heap-allocation,
//! which is a side effect that may be eliminated but must not be
//! duplicated)", and rule 3 substitutes a once-referenced expression only
//! under "certain complicated conditions regarding side effects".

use std::collections::HashMap;

use s1lisp_ast::{CallFunc, NodeId, NodeKind, Tree};

use crate::primops::primop;

/// The side-effect classification of one subtree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Effects {
    /// May assign a lexical variable or a special.
    pub writes_vars: bool,
    /// May mutate heap structure (`rplaca`-class) — adversely affects
    /// any reader of mutable structure.
    pub writes_heap: bool,
    /// May allocate ("a side effect that may be eliminated but must not
    /// be duplicated").
    pub allocates: bool,
    /// Reads a lexical or special variable (affected by `writes_vars`).
    pub reads_vars: bool,
    /// Reads mutable heap structure (affected by `writes_heap`).
    pub reads_heap: bool,
    /// May transfer control non-locally (`go`, `return`, `throw`) or
    /// signal an error.
    pub control: bool,
    /// May invoke an unknown (user) function — conservatively implies
    /// everything above.
    pub calls_unknown: bool,
}

impl Effects {
    /// No effects at all: freely movable, duplicable, deletable.
    pub fn is_pure(self) -> bool {
        self == Effects::default()
    }

    /// Deletable if its value is unused: produces no observable effect.
    /// Heap allocation *is* deletable (but not duplicable).
    pub fn deletable(self) -> bool {
        !self.writes_vars && !self.writes_heap && !self.control && !self.calls_unknown
    }

    /// Duplicable: evaluating twice is indistinguishable from once
    /// (allocation excluded, per §5).
    pub fn duplicable(self) -> bool {
        self.deletable() && !self.allocates
    }

    /// Whether evaluating `self` can change what `other` observes (so
    /// `self` may not be moved past `other`).
    pub fn interferes_with(self, other: Effects) -> bool {
        if self.calls_unknown || other.calls_unknown {
            return !(self.is_pure() || other.is_pure());
        }
        (self.writes_vars && (other.reads_vars || other.writes_vars))
            || (self.writes_heap && (other.reads_heap || other.writes_heap))
            || (other.writes_vars && (self.reads_vars || self.writes_vars))
            || (other.writes_heap && (self.reads_heap || self.writes_heap))
            || (self.control && !other.is_pure())
            || (other.control && !self.is_pure())
    }

    fn union(self, o: Effects) -> Effects {
        Effects {
            writes_vars: self.writes_vars || o.writes_vars,
            writes_heap: self.writes_heap || o.writes_heap,
            allocates: self.allocates || o.allocates,
            reads_vars: self.reads_vars || o.reads_vars,
            reads_heap: self.reads_heap || o.reads_heap,
            control: self.control || o.control,
            calls_unknown: self.calls_unknown || o.calls_unknown,
        }
    }

    /// The worst case: an unknown call may do anything.
    fn unknown_call() -> Effects {
        Effects {
            writes_vars: true,
            writes_heap: true,
            allocates: true,
            reads_vars: true,
            reads_heap: true,
            control: true,
            calls_unknown: true,
        }
    }
}

/// Computes the side-effect classification of every subtree.
pub fn effects(tree: &Tree) -> HashMap<NodeId, Effects> {
    let mut map = HashMap::new();
    walk(tree, tree.root, &mut map);
    map
}

fn walk(tree: &Tree, node: NodeId, map: &mut HashMap<NodeId, Effects>) -> Effects {
    let mut e = match tree.kind(node) {
        NodeKind::Constant(_) => Effects::default(),
        NodeKind::VarRef(_) => Effects {
            reads_vars: true,
            ..Effects::default()
        },
        NodeKind::Setq { .. } => Effects {
            writes_vars: true,
            ..Effects::default()
        },
        NodeKind::Go(_) | NodeKind::Return(_) => Effects {
            control: true,
            ..Effects::default()
        },
        NodeKind::Call { func, .. } => match func {
            CallFunc::Global(g) => match primop(g.as_str()) {
                Some(p) => Effects {
                    writes_heap: p.writes,
                    allocates: p.allocates,
                    reads_heap: p.reads_mutable,
                    // throw/error are control transfers.
                    control: matches!(p.name, "throw" | "error" | "apply"),
                    calls_unknown: p.name == "apply",
                    ..Effects::default()
                },
                None => Effects::unknown_call(),
            },
            CallFunc::Expr(f) => {
                if matches!(tree.kind(*f), NodeKind::Lambda(_)) {
                    // A let: effects are just those of the subexpressions
                    // (added below via children).
                    Effects::default()
                } else {
                    Effects::unknown_call()
                }
            }
        },
        // A lambda *expression* evaluates to a closure: it allocates,
        // but its body does not run.
        NodeKind::Lambda(_) => {
            return {
                // Analyze the body for its own sake (inner nodes need
                // entries) but do not propagate body effects upward.
                for c in tree.children(node) {
                    walk(tree, c, map);
                }
                let e = Effects {
                    allocates: true,
                    ..Effects::default()
                };
                map.insert(node, e);
                e
            };
        }
        _ => Effects::default(),
    };
    // A called lambda (let) runs its body: include children effects.
    let called_lambda = match tree.kind(node) {
        NodeKind::Call {
            func: CallFunc::Expr(f),
            ..
        } => matches!(tree.kind(*f), NodeKind::Lambda(_)).then_some(*f),
        _ => None,
    };
    for c in tree.children(node) {
        if Some(c) == called_lambda {
            // The lambda's body executes as part of the let; its
            // closure-allocation effect does not occur.
            for inner in tree.children(c) {
                e = e.union(walk(tree, inner, map));
            }
            map.insert(c, e);
            continue;
        }
        e = e.union(walk(tree, c, map));
    }
    map.insert(node, e);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn analyze(src: &str) -> (Tree, HashMap<NodeId, Effects>) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let e = effects(&f.tree);
        (f.tree, e)
    }

    fn body(tree: &Tree) -> NodeId {
        let NodeKind::Lambda(l) = tree.kind(tree.root) else {
            panic!()
        };
        l.body
    }

    #[test]
    fn pure_arithmetic_is_pure() {
        let (tree, e) = analyze("(defun f (x) (+ (* x x) 1))");
        let eff = e[&body(&tree)];
        assert!(!eff.is_pure()); // reads x
        assert!(eff.deletable());
        assert!(eff.duplicable());
        assert!(!eff.writes_heap);
    }

    #[test]
    fn cons_allocates_but_is_deletable() {
        let (tree, e) = analyze("(defun f (x) (cons x x))");
        let eff = e[&body(&tree)];
        assert!(eff.allocates);
        assert!(eff.deletable());
        assert!(!eff.duplicable());
    }

    #[test]
    fn rplaca_writes_heap() {
        let (tree, e) = analyze("(defun f (x) (rplaca x 1))");
        let eff = e[&body(&tree)];
        assert!(eff.writes_heap);
        assert!(!eff.deletable());
    }

    #[test]
    fn unknown_calls_are_worst_case() {
        let (tree, e) = analyze("(defun f (x) (frotz x))");
        let eff = e[&body(&tree)];
        assert!(eff.calls_unknown);
        assert!(eff.control);
        assert!(!eff.deletable());
    }

    #[test]
    fn lambda_expression_only_allocates() {
        let (tree, e) = analyze("(defun f (x) (lambda () (rplaca x 1)))");
        let eff = e[&body(&tree)];
        assert!(eff.allocates);
        assert!(!eff.writes_heap, "body does not run at closure creation");
    }

    #[test]
    fn let_body_effects_propagate() {
        let (tree, e) = analyze("(defun f (x) (let ((y 1)) (rplaca x y)))");
        let eff = e[&body(&tree)];
        assert!(eff.writes_heap);
        // The manifest lambda of a let does not count as allocation.
        assert!(!eff.allocates);
    }

    #[test]
    fn interference() {
        let w = Effects {
            writes_heap: true,
            ..Effects::default()
        };
        let r = Effects {
            reads_heap: true,
            ..Effects::default()
        };
        let pure = Effects::default();
        assert!(w.interferes_with(r));
        assert!(r.interferes_with(w));
        assert!(!r.interferes_with(r));
        assert!(!pure.interferes_with(Effects::unknown_call()));
        // Reading a variable is unaffected by heap writes.
        let rv = Effects {
            reads_vars: true,
            ..Effects::default()
        };
        assert!(!w.interferes_with(rv));
    }

    #[test]
    fn setq_and_go_classify() {
        let (tree, e) = analyze(
            "(defun f (x) (prog () top (setq x (- x 1)) (if (zerop x) (return x)) (go top)))",
        );
        let eff = e[&body(&tree)];
        assert!(eff.writes_vars);
        assert!(eff.control);
    }
}

#[cfg(test)]
mod more_effect_tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn body_effects(src: &str) -> Effects {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let e = effects(&f.tree);
        let NodeKind::Lambda(l) = f.tree.kind(f.tree.root) else {
            panic!()
        };
        e[&l.body]
    }

    #[test]
    fn throw_is_control() {
        let e = body_effects("(defun f (x) (throw 'tag x))");
        assert!(e.control);
        assert!(!e.deletable());
    }

    #[test]
    fn caseq_unions_clause_effects() {
        let e = body_effects("(defun f (k x) (caseq k ((1) (rplaca x 1)) (t '())))");
        assert!(e.writes_heap);
    }

    #[test]
    fn reading_specials_is_a_variable_read() {
        let e = body_effects("(defun f () *mode*)");
        assert!(e.reads_vars);
        assert!(e.deletable());
    }

    #[test]
    fn setq_to_special_interferes_with_special_reads() {
        let w = body_effects("(defun f (x) (setq *mode* x))");
        let r = body_effects("(defun f () *mode*)");
        assert!(w.interferes_with(r));
        assert!(!r.interferes_with(r));
    }

    #[test]
    fn pure_against_anything_is_independent() {
        let pure = body_effects("(defun f () '5)");
        let wild = body_effects("(defun f (x) (frotz x))");
        assert!(!pure.interferes_with(wild));
        assert!(!wild.interferes_with(pure));
    }
}
