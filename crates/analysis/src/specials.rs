//! Special-variable lookup placement.
//!
//! §4.4: deep binding "in general requires a linear search when accessing
//! a variable. … on entry to a function, all the special variables needed
//! by that function are searched for once and pointers to the relevant
//! stack locations are cached … from then on each special variable can be
//! accessed indirectly through a cached pointer in constant time.
//!
//! The S-1 LISP compiler actually generalizes the trick further.  For
//! each variable the smallest subtree that contains all the references is
//! determined; the lookup and pointer caching for that variable is
//! performed before execution of that smallest subtree.  This may avoid a
//! lookup if the subtree is in an arm of a conditional.  The trick is
//! further refined to take loops into account."
//!
//! Our rendering: the placement is the least common ancestor of all
//! references, hoisted out of any enclosing `progbody` loop (so a lookup
//! inside a loop body happens once, before the loop) and out of any
//! lambda-call boundary oddity, but *no higher* — a variable referenced
//! only in one conditional arm keeps its lookup in that arm.

use s1lisp_ast::{NodeId, NodeKind, Tree, VarId};

/// One special variable's cached-lookup placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecialPlacement {
    /// The special variable.
    pub var: VarId,
    /// The node before whose execution the deep-binding search runs and
    /// the pointer is cached.
    pub at: NodeId,
    /// Number of reference sites served by the cache.
    pub ref_count: usize,
}

/// Computes lookup placements for every *referenced* special variable of
/// the tree.  Requires current backlinks.
pub fn special_placements(tree: &Tree) -> Vec<SpecialPlacement> {
    let mut out = Vec::new();
    for v in tree.var_ids() {
        let var = tree.var(v);
        if !var.special {
            continue;
        }
        let mut sites: Vec<NodeId> = var.refs.clone();
        sites.extend(var.setqs.iter().copied());
        if sites.is_empty() {
            continue;
        }
        let mut at = lca_many(tree, &sites);
        at = hoist_out_of_loops(tree, at);
        out.push(SpecialPlacement {
            var: v,
            at,
            ref_count: sites.len(),
        });
    }
    out.sort_by_key(|p| p.var);
    out
}

/// Path from `node` up to the root (inclusive).
fn ancestry(tree: &Tree, node: NodeId) -> Vec<NodeId> {
    let mut path = vec![node];
    let mut cur = node;
    while let Some(p) = tree.node(cur).parent {
        path.push(p);
        cur = p;
    }
    path
}

/// Least common ancestor of all `nodes`.
fn lca_many(tree: &Tree, nodes: &[NodeId]) -> NodeId {
    let mut acc = ancestry(tree, nodes[0]);
    for &n in &nodes[1..] {
        let path: std::collections::HashSet<NodeId> = ancestry(tree, n).into_iter().collect();
        acc.retain(|a| path.contains(a));
    }
    // The first surviving entry is the deepest common ancestor.
    acc.first().copied().unwrap_or(tree.root)
}

/// Moves the placement above any `progbody` between it and the root
/// lambda ("the trick is further refined to take loops into account"):
/// a lookup placed inside a loop would otherwise re-run on every
/// iteration.
fn hoist_out_of_loops(tree: &Tree, mut at: NodeId) -> NodeId {
    let path = ancestry(tree, at);
    // Find the outermost progbody ancestor, but do not cross a lambda
    // boundary other than the root's (a nested lambda runs at a
    // different time).
    let mut crossed_lambda = false;
    for &anc in &path[1..] {
        match tree.kind(anc) {
            NodeKind::Lambda(_)
                if anc != tree.root
                // A manifest lambda in a let is part of the same
                // execution; a true closure is not.  Being conservative,
                // we stop hoisting only at non-let lambdas.
                && !is_let_lambda(tree, anc) =>
            {
                crossed_lambda = true;
            }
            NodeKind::Progbody(_) if !crossed_lambda => {
                at = anc;
            }
            _ => {}
        }
    }
    at
}

/// Is this lambda the function of a call (i.e. a `let`)?
fn is_let_lambda(tree: &Tree, lambda: NodeId) -> bool {
    let Some(parent) = tree.node(lambda).parent else {
        return false;
    };
    matches!(tree.kind(parent),
        NodeKind::Call { func: s1lisp_ast::CallFunc::Expr(f), .. } if *f == lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn analyze(src: &str) -> (Tree, Vec<SpecialPlacement>) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let p = special_placements(&f.tree);
        (f.tree, p)
    }

    #[test]
    fn single_reference_places_at_the_reference() {
        let (tree, p) = analyze("(defun f (p) (if p *mode* '()))");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].ref_count, 1);
        // Placement is the reference itself — inside the conditional arm,
        // so no lookup happens when p is false.
        let at = p[0].at;
        assert!(matches!(tree.kind(at), NodeKind::VarRef(_)));
        let parent = tree.node(at).parent.unwrap();
        assert!(matches!(tree.kind(parent), NodeKind::If { .. }));
    }

    #[test]
    fn multiple_references_place_at_lca() {
        let (tree, p) = analyze("(defun f () (+ *a* *a*))");
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].ref_count, 2);
        // LCA of the two refs is the + call.
        assert!(matches!(tree.kind(p[0].at), NodeKind::Call { .. }));
    }

    #[test]
    fn loop_references_hoist_out_of_the_progbody() {
        let (tree, p) = analyze(
            "(defun f (n)
               (prog (acc)
                 top
                 (if (zerop n) (return acc))
                 (setq acc (+ acc *step*))
                 (setq n (- n 1))
                 (go top)))",
        );
        let step = p
            .iter()
            .find(|pl| tree.var(pl.var).name.as_str() == "*step*")
            .unwrap();
        assert!(
            matches!(tree.kind(step.at), NodeKind::Progbody(_)),
            "lookup should hoist to the loop header, got {:?}",
            tree.kind(step.at).construct_name()
        );
    }

    #[test]
    fn bound_specials_get_placements_too() {
        let (tree, p) = analyze("(defun f (x) (declare (special x)) (g) (+ x x))");
        let x = p
            .iter()
            .find(|pl| tree.var(pl.var).name.as_str() == "x")
            .unwrap();
        assert_eq!(x.ref_count, 2);
    }

    #[test]
    fn lexicals_have_no_placements() {
        let (_tree, p) = analyze("(defun f (x) (+ x x))");
        assert!(p.is_empty());
    }

    #[test]
    fn references_inside_closures_do_not_hoist_past_the_closure() {
        let (tree, p) = analyze("(defun f () (prog () top (frotz (lambda () *x*)) (go top)))");
        let x = &p[0];
        // The reference lives inside a real closure; its lookup must not
        // hoist to the outer loop (the closure runs at an unknown time).
        assert!(!matches!(tree.kind(x.at), NodeKind::Progbody(_)));
    }
}
