//! Source-program analysis phases (§4.2 of the paper).
//!
//! "The next two phases (source-program analysis and source-level
//! optimization) are actually executed in a complicated co-routining
//! manner for efficiency."  In this reproduction the analyses are pure
//! functions from a tree to maps of per-node facts; the optimizer
//! (`s1lisp-opt`) re-runs them after transforming, using the per-node
//! dirty flags to decide when a rewrite round is finished.
//!
//! The phases, in Table 1's order:
//!
//! * **Environment analysis** ([`mod@env`]): for each subtree, the sets of
//!   variables read and written within it; for each variable, all
//!   referent nodes (the back-pointers live in the tree itself).
//! * **Side-effects analysis** ([`mod@effects`]): classify each subtree's
//!   possible side effects and what side effects might adversely affect
//!   its execution.
//! * **Complexity analysis** ([`mod@complexity`]): a preliminary object-code
//!   size estimate per subtree, used by the optimizer's substitution
//!   heuristics.
//! * **Tail-recursion analysis** ([`mod@tails`]): which call sites are in
//!   tail position (compilable as parameter-passing gotos).
//! * **Special-variable lookups** ([`mod@specials`]): where to perform the
//!   one deep-binding search per special variable so that later accesses
//!   go through a cached pointer in constant time.
//!
//! The [`mod@primops`] table is the shared vocabulary of "known primitive
//! operations": purity, allocation, pdl-safety, associativity, identity
//! elements.

#![warn(missing_docs)]

pub mod complexity;
pub mod effects;
pub mod env;
pub mod primops;
pub mod specials;
pub mod tails;

pub use complexity::{complexity, Complexity};
pub use effects::{effects, Effects};
pub use env::{environment, EnvInfo};
pub use primops::{primop, Identity, NumKind, Primop};
pub use specials::{special_placements, SpecialPlacement};
pub use tails::{tail_nodes, tail_nodes_from, value_producers};

use s1lisp_ast::Tree;

/// A bundle of all per-function analyses.
///
/// # Examples
///
/// ```
/// use s1lisp_frontend::Frontend;
/// use s1lisp_reader::{read_str, Interner};
/// use s1lisp_analysis::Analysis;
///
/// let mut i = Interner::new();
/// let src = read_str("(defun f (x) (if (zerop x) 1 (f (- x 1))))", &mut i).unwrap();
/// let mut fe = Frontend::new(&mut i);
/// let func = fe.convert_defun(&src).unwrap();
/// let a = Analysis::run(&func.tree);
/// // The self-call is in tail position.
/// assert!(!a.tails.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-node environment facts.
    pub env: EnvInfo,
    /// Per-node side-effect classification.
    pub effects: std::collections::HashMap<s1lisp_ast::NodeId, Effects>,
    /// Per-node size estimates.
    pub complexity: std::collections::HashMap<s1lisp_ast::NodeId, Complexity>,
    /// Nodes in tail position with respect to the root lambda.
    pub tails: std::collections::HashSet<s1lisp_ast::NodeId>,
    /// Cached-lookup placements for special variables.
    pub specials: Vec<SpecialPlacement>,
}

impl Analysis {
    /// Runs every analysis phase on `tree` (whose backlinks must be
    /// current — call [`Tree::rebuild_backlinks`] first after edits).
    pub fn run(tree: &Tree) -> Analysis {
        Analysis {
            env: environment(tree),
            effects: effects(tree),
            complexity: complexity(tree),
            tails: tail_nodes(tree),
            specials: special_placements(tree),
        }
    }
}
