//! Environment analysis.
//!
//! "For each subtree, determine the sets of variables read and written
//! within that subtree.  For each variable binding, attach a list of all
//! referent nodes." (§4.2.)  The referent lists are the tree's own
//! backlinks; this phase computes the per-subtree read/write sets and
//! each lambda's free variables (needed by binding annotation to decide
//! which variables escape into closures).

use std::collections::{HashMap, HashSet};

use s1lisp_ast::{NodeId, NodeKind, Tree, VarId};

/// Environment facts for a whole tree.
#[derive(Debug, Clone, Default)]
pub struct EnvInfo {
    /// Variables read anywhere within each subtree.
    pub reads: HashMap<NodeId, HashSet<VarId>>,
    /// Variables assigned (`setq`) anywhere within each subtree.
    pub writes: HashMap<NodeId, HashSet<VarId>>,
    /// For each lambda node: variables referenced inside it but bound
    /// outside it (its free variables).
    pub free_vars: HashMap<NodeId, HashSet<VarId>>,
}

impl EnvInfo {
    /// Variables read within `node`'s subtree.
    pub fn reads_of(&self, node: NodeId) -> &HashSet<VarId> {
        static EMPTY: std::sync::OnceLock<HashSet<VarId>> = std::sync::OnceLock::new();
        self.reads
            .get(&node)
            .unwrap_or_else(|| EMPTY.get_or_init(HashSet::new))
    }

    /// Variables written within `node`'s subtree.
    pub fn writes_of(&self, node: NodeId) -> &HashSet<VarId> {
        static EMPTY: std::sync::OnceLock<HashSet<VarId>> = std::sync::OnceLock::new();
        self.writes
            .get(&node)
            .unwrap_or_else(|| EMPTY.get_or_init(HashSet::new))
    }

    /// Free variables of a lambda node (empty when it closes over
    /// nothing, i.e. no closure environment is needed).
    pub fn free_of(&self, lambda: NodeId) -> &HashSet<VarId> {
        static EMPTY: std::sync::OnceLock<HashSet<VarId>> = std::sync::OnceLock::new();
        self.free_vars
            .get(&lambda)
            .unwrap_or_else(|| EMPTY.get_or_init(HashSet::new))
    }
}

/// Runs environment analysis over the subtree rooted at [`Tree::root`].
pub fn environment(tree: &Tree) -> EnvInfo {
    let mut info = EnvInfo::default();
    walk(tree, tree.root, &mut info);
    info
}

/// Post-order accumulation of read/write/free sets.  The third result is
/// the set of *free* lexical variables of the subtree: referenced within
/// it but bound by no lambda inside it.
fn walk(
    tree: &Tree,
    node: NodeId,
    info: &mut EnvInfo,
) -> (HashSet<VarId>, HashSet<VarId>, HashSet<VarId>) {
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();
    let mut free = HashSet::new();
    match tree.kind(node) {
        NodeKind::VarRef(v) => {
            reads.insert(*v);
            // Special variables are dynamically looked up, never captured.
            if !tree.var(*v).special {
                free.insert(*v);
            }
        }
        NodeKind::Setq { var, .. } => {
            writes.insert(*var);
            if !tree.var(*var).special {
                free.insert(*var);
            }
        }
        _ => {}
    }
    for child in tree.children(node) {
        let (r, w, f) = walk(tree, child, info);
        reads.extend(&r);
        writes.extend(&w);
        free.extend(&f);
    }
    if let NodeKind::Lambda(l) = tree.kind(node) {
        for p in l.all_params() {
            free.remove(&p);
        }
        info.free_vars.insert(node, free.clone());
    }
    info.reads.insert(node, reads.clone());
    info.writes.insert(node, writes.clone());
    (reads, writes, free)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn analyze(src: &str) -> (Tree, EnvInfo) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let info = environment(&f.tree);
        (f.tree, info)
    }

    fn var_named(tree: &Tree, name: &str) -> VarId {
        tree.var_ids()
            .find(|&v| tree.var(v).name.as_str() == name)
            .unwrap()
    }

    #[test]
    fn read_and_write_sets() {
        let (tree, info) = analyze("(defun f (a b) (setq a (+ a b)) a)");
        let a = var_named(&tree, "a");
        let b = var_named(&tree, "b");
        assert!(info.reads_of(tree.root).contains(&a));
        assert!(info.reads_of(tree.root).contains(&b));
        assert!(info.writes_of(tree.root).contains(&a));
        assert!(!info.writes_of(tree.root).contains(&b));
    }

    #[test]
    fn lambda_free_variables() {
        let (tree, info) = analyze("(defun make-adder (n) (lambda (x) (+ x n)))");
        let n = var_named(&tree, "n");
        let inner = s1lisp_ast::subtree_nodes(&tree, tree.root)
            .into_iter()
            .filter(|&id| matches!(tree.kind(id), NodeKind::Lambda(_)))
            .nth(1)
            .unwrap();
        assert_eq!(info.free_of(inner).len(), 1);
        assert!(info.free_of(inner).contains(&n));
        // The outer lambda is closed.
        assert!(info.free_of(tree.root).is_empty());
    }

    #[test]
    fn specials_are_not_free() {
        let (tree, info) = analyze("(defun f () (lambda () *level*))");
        let inner = s1lisp_ast::subtree_nodes(&tree, tree.root)
            .into_iter()
            .filter(|&id| matches!(tree.kind(id), NodeKind::Lambda(_)))
            .nth(1)
            .unwrap();
        assert!(info.free_of(inner).is_empty());
        // But the read is still recorded.
        let lvl = var_named(&tree, "*level*");
        assert!(info.reads_of(inner).contains(&lvl));
    }

    #[test]
    fn subtree_sets_are_local() {
        let (tree, info) = analyze("(defun f (a b) (if a (setq b 1) b))");
        let NodeKind::Lambda(l) = tree.kind(tree.root) else {
            panic!()
        };
        let NodeKind::If { test, then, els } = tree.kind(l.body) else {
            panic!()
        };
        let a = var_named(&tree, "a");
        let b = var_named(&tree, "b");
        assert!(info.reads_of(*test).contains(&a));
        assert!(!info.reads_of(*test).contains(&b));
        assert!(info.writes_of(*then).contains(&b));
        assert!(info.writes_of(*els).is_empty());
        assert!(info.reads_of(*els).contains(&b));
    }
}
