//! Tail-position analysis.
//!
//! §2: "recursive procedures of a certain form have iterative behavior …
//! a procedure call in this case is more akin to a parameter-passing goto
//! than to a recursive call, and can be implemented as such, as a simple
//! unconditional branch."
//!
//! [`tail_nodes`] computes the set of nodes in tail position with respect
//! to the root lambda: the nodes whose value *is* the function's value and
//! after which no work remains.  A `call` in this set compiles to a jump.
//!
//! [`value_producers`] is §4.2's "for each node, make a list of other
//! nodes that potentially generate its value": the leaves that actually
//! produce a node's value once control flow is resolved (used by
//! representation analysis to place coercions on the producing arms).

use std::collections::HashSet;

use s1lisp_ast::{CallFunc, NodeId, NodeKind, ProgItem, Tree};

/// Nodes in tail position relative to the root lambda of `tree`.
pub fn tail_nodes(tree: &Tree) -> HashSet<NodeId> {
    tail_nodes_from(tree, tree.root)
}

/// Nodes in tail position relative to an arbitrary lambda node (used
/// when compiling closure bodies as separate functions).
pub fn tail_nodes_from(tree: &Tree, lambda: NodeId) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    if let NodeKind::Lambda(l) = tree.kind(lambda) {
        mark(tree, l.body, &mut out);
    }
    out
}

fn mark(tree: &Tree, node: NodeId, out: &mut HashSet<NodeId>) {
    out.insert(node);
    match tree.kind(node) {
        NodeKind::If { then, els, .. } => {
            mark(tree, *then, out);
            mark(tree, *els, out);
        }
        NodeKind::Progn(body) => {
            if let Some(&last) = body.last() {
                mark(tree, last, out);
            }
        }
        NodeKind::Caseq {
            clauses, default, ..
        } => {
            for c in clauses {
                mark(tree, c.body, out);
            }
            mark(tree, *default, out);
        }
        NodeKind::Call {
            func: CallFunc::Expr(f),
            ..
        } => {
            // A let: the called lambda's body is in tail position.
            // (A call to a *computed* function is itself the tail call.)
            if let NodeKind::Lambda(l) = tree.kind(*f) {
                mark(tree, l.body, out);
            }
        }
        // The value of a progbody in tail position comes from its
        // `return` statements; those `return`ed expressions are in tail
        // position.
        NodeKind::Progbody(items) => {
            for item in items {
                if let ProgItem::Stmt(s) = item {
                    mark_returns(tree, *s, out);
                }
            }
        }
        // A catcher's body is NOT in tail position: the catch frame must
        // survive until the body finishes.
        _ => {}
    }
}

/// Marks the value expressions of `return` statements belonging to the
/// current progbody (not crossing into nested progbodies or lambdas).
fn mark_returns(tree: &Tree, node: NodeId, out: &mut HashSet<NodeId>) {
    match tree.kind(node) {
        NodeKind::Return(v) => {
            mark(tree, *v, out);
        }
        NodeKind::Lambda(_) | NodeKind::Progbody(_) => {}
        _ => {
            for c in tree.children(node) {
                mark_returns(tree, c, out);
            }
        }
    }
}

/// The nodes that potentially generate the value of `node` (§4.2): the
/// control-flow leaves of the expression.
pub fn value_producers(tree: &Tree, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    producers(tree, node, &mut out);
    out
}

fn producers(tree: &Tree, node: NodeId, out: &mut Vec<NodeId>) {
    match tree.kind(node) {
        NodeKind::If { then, els, .. } => {
            producers(tree, *then, out);
            producers(tree, *els, out);
        }
        NodeKind::Progn(body) => {
            if let Some(&last) = body.last() {
                producers(tree, last, out);
            }
        }
        NodeKind::Caseq {
            clauses, default, ..
        } => {
            for c in clauses {
                producers(tree, c.body, out);
            }
            producers(tree, *default, out);
        }
        NodeKind::Call {
            func: CallFunc::Expr(f),
            ..
        } if matches!(tree.kind(*f), NodeKind::Lambda(_)) => {
            let NodeKind::Lambda(l) = tree.kind(*f) else {
                unreachable!()
            };
            producers(tree, l.body, out);
        }
        _ => out.push(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn analyze(src: &str) -> (Tree, HashSet<NodeId>) {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let t = tail_nodes(&f.tree);
        (f.tree, t)
    }

    /// All self-call sites of the (single) defun in `tree`.
    fn self_calls(tree: &Tree, name: &str) -> Vec<NodeId> {
        s1lisp_ast::subtree_nodes(tree, tree.root)
            .into_iter()
            .filter(|&id| {
                matches!(tree.kind(id), NodeKind::Call { func: CallFunc::Global(g), .. }
                         if g.as_str() == name)
            })
            .collect()
    }

    #[test]
    fn exptl_self_calls_are_tail() {
        let (tree, tails) = analyze(
            "(defun exptl (x n a)
               (cond ((zerop n) a)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                     (t (exptl (* x x) (floor (/ n 2)) a))))",
        );
        let calls = self_calls(&tree, "exptl");
        assert_eq!(calls.len(), 2);
        for c in calls {
            assert!(tails.contains(&c), "self-call not in tail position");
        }
    }

    #[test]
    fn argument_positions_are_not_tail() {
        let (tree, tails) = analyze("(defun fact (n) (if (zerop n) 1 (* n (fact (- n 1)))))");
        let calls = self_calls(&tree, "fact");
        assert_eq!(calls.len(), 1);
        assert!(
            !tails.contains(&calls[0]),
            "argument of * is not a tail call"
        );
    }

    #[test]
    fn let_body_is_tail() {
        let (tree, tails) = analyze("(defun f (x) (let ((y (g x))) (h y)))");
        let h_calls = self_calls(&tree, "h");
        let g_calls = self_calls(&tree, "g");
        assert!(tails.contains(&h_calls[0]));
        assert!(!tails.contains(&g_calls[0]));
    }

    #[test]
    fn returned_expressions_are_tail() {
        let (tree, tails) = analyze(
            "(defun f (n) (prog () top (if (zerop n) (return (g n))) (setq n (- n 1)) (go top)))",
        );
        let g_calls = self_calls(&tree, "g");
        assert!(tails.contains(&g_calls[0]));
    }

    #[test]
    fn catch_body_is_not_tail() {
        let (tree, tails) = analyze("(defun f (x) (catch 'done (g x)))");
        let g_calls = self_calls(&tree, "g");
        assert!(!tails.contains(&g_calls[0]));
    }

    #[test]
    fn producers_of_if_are_its_arms() {
        let mut i = Interner::new();
        let form = read_str("(defun f (p q r) (if p (sqrt q) (car r)))", &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        let f = fe.convert_defun(&form).unwrap();
        let NodeKind::Lambda(l) = f.tree.kind(f.tree.root) else {
            panic!()
        };
        let prods = value_producers(&f.tree, l.body);
        assert_eq!(prods.len(), 2);
        for p in prods {
            assert!(matches!(f.tree.kind(p), NodeKind::Call { .. }));
        }
    }
}

#[cfg(test)]
mod producer_tests {
    use super::*;
    use s1lisp_frontend::Frontend;
    use s1lisp_reader::{read_str, Interner};

    fn tree_of(src: &str) -> Tree {
        let mut i = Interner::new();
        let form = read_str(src, &mut i).unwrap();
        let mut fe = Frontend::new(&mut i);
        fe.convert_defun(&form).unwrap().tree
    }

    fn body(tree: &Tree) -> NodeId {
        let NodeKind::Lambda(l) = tree.kind(tree.root) else {
            panic!()
        };
        l.body
    }

    #[test]
    fn producers_look_through_progn_and_lets() {
        let tree = tree_of("(defun f (x) (progn (g x) (let ((y (h x))) (+ y 1))))");
        let prods = value_producers(&tree, body(&tree));
        assert_eq!(prods.len(), 1);
        assert!(matches!(tree.kind(prods[0]), NodeKind::Call { .. }));
    }

    #[test]
    fn producers_fan_out_over_caseq() {
        let tree = tree_of("(defun f (k a b) (caseq k ((1) a) ((2) (g b)) (t '())))");
        let prods = value_producers(&tree, body(&tree));
        assert_eq!(prods.len(), 3, "two clauses plus the default");
    }

    #[test]
    fn producer_of_a_leaf_is_itself() {
        let tree = tree_of("(defun f (x) x)");
        let prods = value_producers(&tree, body(&tree));
        assert_eq!(prods, vec![body(&tree)]);
    }
}
