//! The machine word: the S-1 tag architecture.
//!
//! §3: "Virtual addresses are 31 bits plus a five-bit tag.  Nine of the 32
//! possible tags have special meaning to the architecture …; the others
//! may be used freely as user data-type tags.  (S-1 LISP of course uses
//! most of these tags to indicate LISP data types.)"
//!
//! A word is either **raw machine data** (an untagged integer or
//! floating-point value — §6.2's "raw machine number") or a **tagged
//! pointer/immediate**.  The distinction between the two is the heart of
//! representation analysis.  The payload is widened from 31 to 64 bits so
//! the dialect's fixnums match the reference interpreter; the tag
//! mechanics are unchanged.

use std::fmt;

/// The 5-bit data-type tag of a pointer word.
///
/// Numbering is arbitrary but fixed; `DTP-GC` is reserved for the garbage
/// collector's scratch/forwarding marker, as seen in Table 4's
/// `(POINTER *:DTP-GC 12)` frame initialization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tag {
    /// The empty list (also boolean false).
    Nil,
    /// The canonical truth object.
    T,
    /// Immediate fixnum (payload is the value).
    Fixnum,
    /// Immediate character (payload is the code point).
    Char,
    /// Pointer to a one-word single flonum object (`*:DTP-SINGLE-FLONUM`).
    SingleFlonum,
    /// Pointer to a two-word cons cell.
    Cons,
    /// Immediate symbol (payload indexes the program's symbol table).
    Symbol,
    /// Immediate string (payload indexes the program's string table).
    String,
    /// Global function object (payload indexes the function table).
    Function,
    /// Pointer to a closure object: `[len, fnid, cell…]`.
    Closure,
    /// Pointer to a one-word value cell (heap-allocated variable).
    Cell,
    /// Garbage-collector scratch / free-space marker.
    Gc,
}

/// Where a pointer's address points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// The heap (a "safe" pointer, §6.3).
    Heap,
    /// The stack (an "unsafe" pdl pointer that may need certification).
    Stack,
}

/// Address space partitioning: addresses at or above this value are stack
/// addresses (the pdl-pointer test of §6.3 — "determining at run time
/// that the pointer … does not point into the stack").
pub const STACK_BASE: u64 = 1 << 40;

/// A machine word.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Word {
    /// Raw machine integer (§6.2's raw representation of a fixnum, also
    /// used for untagged scratch data).
    Raw(i64),
    /// Raw machine floating-point number (SWFLO in a register).
    F(f64),
    /// A tagged word: immediate or pointer, depending on the tag.
    Ptr(Tag, u64),
}

impl Word {
    /// The canonical nil word.
    pub const NIL: Word = Word::Ptr(Tag::Nil, 0);
    /// The canonical truth word.
    pub const T: Word = Word::Ptr(Tag::T, 0);

    /// An immediate fixnum in pointer format.
    pub fn fixnum(n: i64) -> Word {
        Word::Ptr(Tag::Fixnum, n as u64)
    }

    /// Lisp truth of a pointer-format word.
    pub fn is_true(self) -> bool {
        !matches!(self, Word::Ptr(Tag::Nil, _))
    }

    /// The fixnum value, if this word is an immediate fixnum.
    pub fn as_fixnum(self) -> Option<i64> {
        match self {
            Word::Ptr(Tag::Fixnum, n) => Some(n as i64),
            _ => None,
        }
    }

    /// The raw integer, if this word is raw.
    pub fn as_raw(self) -> Option<i64> {
        match self {
            Word::Raw(n) => Some(n),
            _ => None,
        }
    }

    /// The raw float, if this word is one.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Word::F(x) => Some(x),
            _ => None,
        }
    }

    /// The tag of a tagged word.
    pub fn tag(self) -> Option<Tag> {
        match self {
            Word::Ptr(t, _) => Some(t),
            _ => None,
        }
    }

    /// Whether this tagged word is a pointer into memory (rather than an
    /// immediate), and to which region.
    pub fn region(self) -> Option<Region> {
        match self {
            Word::Ptr(t, addr) if t.is_reference() => Some(if addr >= STACK_BASE {
                Region::Stack
            } else {
                Region::Heap
            }),
            _ => None,
        }
    }

    /// §6.3's safety test: "such pointers never point into the stack."
    /// Raw words and immediates are trivially safe.
    pub fn is_safe(self) -> bool {
        self.region() != Some(Region::Stack)
    }
}

impl Tag {
    /// Whether words with this tag carry a memory address (as opposed to
    /// an immediate payload).
    pub fn is_reference(self) -> bool {
        matches!(
            self,
            Tag::SingleFlonum | Tag::Cons | Tag::Closure | Tag::Cell
        )
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Word::Raw(n) => write!(f, "#raw:{n}"),
            Word::F(x) => write!(f, "#flo:{x}"),
            Word::Ptr(Tag::Nil, _) => write!(f, "()"),
            Word::Ptr(Tag::T, _) => write!(f, "t"),
            Word::Ptr(Tag::Fixnum, n) => write!(f, "{}", *n as i64),
            Word::Ptr(t, a) => write!(f, "#<{t:?} @{a:#x}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixnum_round_trip() {
        assert_eq!(Word::fixnum(-5).as_fixnum(), Some(-5));
        assert_eq!(Word::fixnum(i64::MAX).as_fixnum(), Some(i64::MAX));
        assert_eq!(Word::Raw(3).as_fixnum(), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Word::NIL.is_true());
        assert!(Word::T.is_true());
        assert!(Word::fixnum(0).is_true());
        assert!(Word::Raw(0).is_true()); // raw words are not nil
    }

    #[test]
    fn regions_and_safety() {
        let heap_ptr = Word::Ptr(Tag::Cons, 100);
        let stack_ptr = Word::Ptr(Tag::SingleFlonum, STACK_BASE + 4);
        assert_eq!(heap_ptr.region(), Some(Region::Heap));
        assert_eq!(stack_ptr.region(), Some(Region::Stack));
        assert!(heap_ptr.is_safe());
        assert!(!stack_ptr.is_safe());
        // Immediates are safe and regionless.
        assert_eq!(Word::fixnum(7).region(), None);
        assert!(Word::fixnum(7).is_safe());
        assert!(Word::F(1.0).is_safe());
    }

    #[test]
    fn reference_tags() {
        assert!(Tag::Cons.is_reference());
        assert!(Tag::SingleFlonum.is_reference());
        assert!(!Tag::Fixnum.is_reference());
        assert!(!Tag::Symbol.is_reference());
    }
}
