//! The tagged heap with mark–sweep garbage collection.
//!
//! "The run-time system, and especially the garbage collector, has been
//! written with multiprocessing in mind" (§3) — our reproduction is
//! single-threaded, but the collector is real: allocation failure
//! triggers a mark–sweep over the roots the machine supplies, and the
//! statistics it produces (allocations by kind, collections, live words)
//! feed the pdl-number experiment (E7), whose whole point is *avoiding*
//! "consequent garbage-collection overhead" (§6.2).

use crate::word::{Tag, Word, STACK_BASE};

/// Kinds of heap objects, for allocation statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A boxed flonum (1 word).
    Flonum,
    /// A cons cell (2 words).
    Cons,
    /// A value cell (1 word).
    Cell,
    /// A closure (2 + n words: length, code id, captured cells).
    Closure,
    /// A raw word block (untagged data, e.g. the E5 demo's float
    /// matrices).  Not scanned by the collector — callers must keep such
    /// blocks alive by not collecting while they are in use.
    Block,
}

/// The heap: a word array with a bump/free-list allocator.
#[derive(Clone, Debug)]
pub struct Heap {
    words: Vec<Word>,
    /// Next never-used address (bump frontier).
    frontier: usize,
    /// Free blocks from previous collections: (address, size).
    free: Vec<(usize, usize)>,
    /// Mark bits, one per word (object marks live on the header word).
    marks: Vec<bool>,
    /// Allocation counters by kind.
    pub allocs: AllocStats,
    telemetry: HeapTelemetry,
}

/// Allocation-size histogram bounds, in words (must match
/// `s1lisp_trace::metrics::SIZE_BUCKETS_WORDS` so the heap's plain
/// counters merge into a registry histogram loss-free; pinned by test).
pub const ALLOC_SIZE_BOUNDS: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// One live-set sample, taken at the end of every collection — the
/// "live-set curve" the GC-stress experiments plot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveSample {
    /// Which collection this sample closed (1-based, equals
    /// [`AllocStats::collections`] at sample time).
    pub collection: u64,
    /// Words found live (marked) below the frontier.
    pub live_words: u64,
    /// Words swept onto the free list.
    pub reclaimed_words: u64,
    /// Free-list fragments left after the sweep.
    pub free_blocks: u64,
}

/// Heap telemetry beyond the plain [`AllocStats`] counters: the
/// allocation-size distribution, the live-set curve, and mark/sweep
/// pause attribution.  All fields are plain values (no interior
/// mutability), so cloning a [`Heap`] clones its telemetry rather than
/// sharing it.
#[derive(Clone, Debug, Default)]
pub struct HeapTelemetry {
    /// Successful allocations per size bucket (bounds are
    /// [`ALLOC_SIZE_BOUNDS`], inclusive upper bounds).
    pub alloc_size_counts: [u64; ALLOC_SIZE_BOUNDS.len()],
    /// Allocations larger than the last bound.
    pub alloc_size_overflow: u64,
    /// Total words across all successful allocations (histogram sum).
    pub alloc_size_sum: u64,
    /// One sample per collection, in collection order.
    pub live_samples: Vec<LiveSample>,
    /// Host nanoseconds spent in the mark phase, summed over
    /// collections.  Host-time: zeroed for deterministic snapshots.
    pub mark_pause_ns: u64,
    /// Host nanoseconds spent in the sweep phase, summed over
    /// collections.  Host-time: zeroed for deterministic snapshots.
    pub sweep_pause_ns: u64,
}

impl HeapTelemetry {
    fn record_alloc(&mut self, size: usize) {
        let size = size as u64;
        match ALLOC_SIZE_BOUNDS.iter().position(|&b| size <= b) {
            Some(i) => self.alloc_size_counts[i] += 1,
            None => self.alloc_size_overflow += 1,
        }
        self.alloc_size_sum += size;
    }

    /// Total successful allocations recorded by the size histogram.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_size_counts.iter().sum::<u64>() + self.alloc_size_overflow
    }
}

/// Allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Boxed flonums allocated (the number the pdl-number machinery
    /// tries to minimize).
    pub flonums: u64,
    /// Cons cells allocated.
    pub conses: u64,
    /// Value cells allocated.
    pub cells: u64,
    /// Closures allocated.
    pub closures: u64,
    /// Raw blocks allocated.
    pub blocks: u64,
    /// Total heap words handed out.
    pub words: u64,
    /// Garbage collections run.
    pub collections: u64,
}

impl AllocStats {
    /// Total objects allocated.
    pub fn objects(&self) -> u64 {
        self.flonums + self.conses + self.cells + self.closures
    }
}

impl Heap {
    /// A heap of `capacity` words.
    pub fn new(capacity: usize) -> Heap {
        assert!((capacity as u64) < STACK_BASE, "heap too large");
        Heap {
            words: vec![Word::Ptr(Tag::Gc, 0); capacity],
            frontier: 1, // address 0 is reserved (nil's address)
            free: Vec::new(),
            marks: vec![false; capacity],
            allocs: AllocStats::default(),
            telemetry: HeapTelemetry::default(),
        }
    }

    /// The heap's accumulated telemetry (size histogram, live-set curve,
    /// pause attribution).
    pub fn telemetry(&self) -> &HeapTelemetry {
        &self.telemetry
    }

    /// Free-list fragmentation in permille: the share of reclaimed-but-
    /// unreused space that sits in blocks too small to hold a closure
    /// header (< 3 words).  0 when the free list is empty.
    pub fn fragmentation_permille(&self) -> u64 {
        let total: usize = self.free.iter().map(|&(_, s)| s).sum();
        if total == 0 {
            return 0;
        }
        let slivers: usize = self.free.iter().map(|&(_, s)| s).filter(|&s| s < 3).sum();
        (slivers as u64 * 1000) / total as u64
    }

    /// Exports the heap's telemetry into `reg` under `heap.*` metric
    /// names.  Bulk-merges the plain counters, so exporting twice
    /// double-counts — callers export once per finished run.
    pub fn export_metrics(&self, reg: &s1lisp_trace::metrics::MetricsRegistry) {
        use s1lisp_trace::metrics::SIZE_BUCKETS_WORDS;
        let t = &self.telemetry;
        reg.counter("heap.alloc.flonums").add(self.allocs.flonums);
        reg.counter("heap.alloc.conses").add(self.allocs.conses);
        reg.counter("heap.alloc.cells").add(self.allocs.cells);
        reg.counter("heap.alloc.closures").add(self.allocs.closures);
        reg.counter("heap.alloc.blocks").add(self.allocs.blocks);
        reg.counter("heap.alloc.words").add(self.allocs.words);
        reg.counter("heap.collections").add(self.allocs.collections);
        reg.counter("heap.gc.mark_pause_ns").add(t.mark_pause_ns);
        reg.counter("heap.gc.sweep_pause_ns").add(t.sweep_pause_ns);
        reg.histogram("heap.alloc_size_words", SIZE_BUCKETS_WORDS)
            .record_prebucketed(
                &t.alloc_size_counts,
                t.alloc_size_overflow,
                t.alloc_size_sum,
            );
        reg.gauge("heap.fragmentation_permille")
            .set(self.fragmentation_permille() as i64);
        if let Some(last) = t.live_samples.last() {
            reg.gauge("heap.live_words").set(last.live_words as i64);
            reg.gauge("heap.free_blocks").set(last.free_blocks as i64);
        }
    }

    /// Words still available without collecting.
    pub fn headroom(&self) -> usize {
        (self.words.len() - self.frontier) + self.free.iter().map(|&(_, s)| s).sum::<usize>()
    }

    /// Attempts to allocate `size` words, returning the base address, or
    /// `None` when a collection is needed.  The machine wraps this with
    /// GC-and-retry.
    pub fn try_alloc(&mut self, size: usize, kind: ObjKind) -> Option<u64> {
        // Prefer an exact-size free block; otherwise split a larger one;
        // otherwise bump the frontier.
        let addr = if let Some(pos) = self.free.iter().position(|&(_, s)| s == size) {
            let (addr, _) = self.free.swap_remove(pos);
            addr
        } else if let Some(pos) = self.free.iter().position(|&(_, s)| s > size) {
            let (addr, s) = self.free.swap_remove(pos);
            self.free.push((addr + size, s - size));
            addr
        } else if self.frontier + size <= self.words.len() {
            let addr = self.frontier;
            self.frontier += size;
            addr
        } else {
            return None;
        };
        self.telemetry.record_alloc(size);
        self.allocs.words += size as u64;
        match kind {
            ObjKind::Flonum => self.allocs.flonums += 1,
            ObjKind::Cons => self.allocs.conses += 1,
            ObjKind::Cell => self.allocs.cells += 1,
            ObjKind::Closure => self.allocs.closures += 1,
            ObjKind::Block => self.allocs.blocks += 1,
        }
        Some(addr as u64)
    }

    /// Reads heap word `addr`.
    pub fn read(&self, addr: u64) -> Word {
        self.words[addr as usize]
    }

    /// Writes heap word `addr`.
    pub fn write(&mut self, addr: u64, w: Word) {
        self.words[addr as usize] = w;
    }

    /// Runs a mark–sweep collection.  `roots` yields every word the
    /// mutator can reach directly (registers, stack, special bindings,
    /// globals).  Returns the number of words reclaimed.
    pub fn collect(&mut self, roots: &[Word]) -> usize {
        self.allocs.collections += 1;
        let mark_start = std::time::Instant::now();
        self.marks.iter_mut().for_each(|m| *m = false);
        let mut work: Vec<(u64, usize)> = roots
            .iter()
            .filter_map(|&r| object_extent(self, r))
            .collect();
        // Mark.
        while let Some((addr, size)) = work.pop() {
            if self.marks[addr as usize] {
                continue;
            }
            for i in 0..size {
                self.marks[addr as usize + i] = true;
            }
            for i in 0..size {
                let w = self.words[addr as usize + i];
                if let Some((child, csize)) = object_extent(self, w) {
                    if !self.marks[child as usize] {
                        work.push((child, csize));
                    }
                }
            }
        }
        self.telemetry.mark_pause_ns += mark_start.elapsed().as_nanos() as u64;
        let sweep_start = std::time::Instant::now();
        // Sweep: coalesce unmarked spans below the frontier into the free
        // list (simple span accounting; spans are reused only for
        // same-size requests, which is fine for our small object zoo).
        self.free.clear();
        let mut reclaimed = 0;
        let mut i = 1usize;
        while i < self.frontier {
            if self.marks[i] {
                i += 1;
                continue;
            }
            let start = i;
            while i < self.frontier && !self.marks[i] {
                self.words[i] = Word::Ptr(Tag::Gc, 0);
                i += 1;
            }
            let len = i - start;
            reclaimed += len;
            // Whole spans go on the free list; the allocator splits them
            // on demand.
            self.free.push((start, len));
        }
        self.telemetry.sweep_pause_ns += sweep_start.elapsed().as_nanos() as u64;
        // Live-set sample: everything below the frontier that survived.
        let live_words = (self.frontier - 1 - reclaimed) as u64;
        self.telemetry.live_samples.push(LiveSample {
            collection: self.allocs.collections,
            live_words,
            reclaimed_words: reclaimed as u64,
            free_blocks: self.free.len() as u64,
        });
        reclaimed
    }
}

/// If `w` references a heap object, its base address and size.
fn object_extent(heap: &Heap, w: Word) -> Option<(u64, usize)> {
    match w {
        Word::Ptr(tag, addr) if tag.is_reference() && addr < STACK_BASE => {
            let size = match tag {
                Tag::SingleFlonum | Tag::Cell => 1,
                Tag::Cons => 2,
                Tag::Closure => match heap.words.get(addr as usize) {
                    Some(Word::Raw(n)) => *n as usize,
                    _ => 1,
                },
                _ => return None,
            };
            Some((addr, size))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_counts() {
        let mut h = Heap::new(64);
        let a = h.try_alloc(2, ObjKind::Cons).unwrap();
        let b = h.try_alloc(1, ObjKind::Flonum).unwrap();
        assert_ne!(a, b);
        assert_eq!(h.allocs.conses, 1);
        assert_eq!(h.allocs.flonums, 1);
        assert_eq!(h.allocs.words, 3);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut h = Heap::new(8);
        while h.try_alloc(2, ObjKind::Cons).is_some() {}
        assert!(h.try_alloc(2, ObjKind::Cons).is_none());
    }

    #[test]
    fn collection_reclaims_garbage_and_keeps_live_data() {
        let mut h = Heap::new(32);
        // live cons → (flonum . nil)
        let f = h.try_alloc(1, ObjKind::Flonum).unwrap();
        h.write(f, Word::F(2.5));
        let live = h.try_alloc(2, ObjKind::Cons).unwrap();
        h.write(live, Word::Ptr(Tag::SingleFlonum, f));
        h.write(live + 1, Word::NIL);
        // garbage conses
        for _ in 0..5 {
            let g = h.try_alloc(2, ObjKind::Cons).unwrap();
            h.write(g, Word::fixnum(0));
            h.write(g + 1, Word::NIL);
        }
        let root = Word::Ptr(Tag::Cons, live);
        let reclaimed = h.collect(&[root]);
        assert!(reclaimed >= 10, "reclaimed {reclaimed}");
        // Live data survives.
        assert_eq!(h.read(live), Word::Ptr(Tag::SingleFlonum, f));
        assert_eq!(h.read(f), Word::F(2.5));
        // And the freed space is reusable.
        assert!(h.try_alloc(2, ObjKind::Cons).is_some());
        assert_eq!(h.allocs.collections, 1);
    }

    #[test]
    fn telemetry_tracks_sizes_and_live_set_across_collections() {
        // Same shape as the churn test, but small enough to force several
        // collections, and we audit the telemetry after each one.
        let mut h = Heap::new(96);
        let mut root = Word::NIL;
        let mut live_len = 0usize;
        for i in 0..300 {
            if i % 7 == 0 {
                // Periodically drop the list so the live set shrinks.
                root = Word::NIL;
                live_len = 0;
            }
            let addr = match h.try_alloc(2, ObjKind::Cons) {
                Some(a) => a,
                None => {
                    h.collect(&[root]);
                    h.try_alloc(2, ObjKind::Cons).expect("post-gc alloc")
                }
            };
            h.write(addr, Word::fixnum(i));
            h.write(addr + 1, root);
            root = Word::Ptr(Tag::Cons, addr);
            live_len += 1;
            // The live-set sample taken by the most recent collection can
            // never exceed what the list held at that point.
            if let Some(s) = h.telemetry().live_samples.last() {
                assert!(s.live_words <= h.allocs.words);
            }
            let _ = live_len;
        }
        let t = h.telemetry().clone();
        assert!(
            h.allocs.collections >= 2,
            "workload too small: {} collections",
            h.allocs.collections
        );
        // One sample per collection, in collection order (monotone ids).
        assert_eq!(t.live_samples.len() as u64, h.allocs.collections);
        for (i, s) in t.live_samples.iter().enumerate() {
            assert_eq!(s.collection, i as u64 + 1);
            // live + reclaimed is exactly the allocated span below the
            // frontier at collection time, so it can never exceed the
            // words AllocStats says were ever handed out.
            assert!(s.live_words + s.reclaimed_words <= h.allocs.words);
        }
        // The size histogram saw every allocation AllocStats counted.
        assert_eq!(t.alloc_count(), h.allocs.objects() + h.allocs.blocks);
        assert_eq!(t.alloc_size_sum, h.allocs.words);
        // All conses: every size lands in the 2-word bucket.
        assert_eq!(t.alloc_size_counts[1], t.alloc_count());
    }

    #[test]
    fn heap_size_bounds_match_registry_buckets() {
        // export_metrics merges the plain bucket table into a registry
        // histogram positionally — the bounds must agree exactly.
        assert_eq!(
            ALLOC_SIZE_BOUNDS.as_slice(),
            s1lisp_trace::metrics::SIZE_BUCKETS_WORDS
        );
    }

    #[test]
    fn export_metrics_round_trips_through_registry() {
        let mut h = Heap::new(64);
        for _ in 0..5 {
            h.try_alloc(2, ObjKind::Cons).unwrap();
        }
        h.try_alloc(1, ObjKind::Flonum).unwrap();
        h.collect(&[]);
        let reg = s1lisp_trace::metrics::MetricsRegistry::new();
        h.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("heap.alloc.conses"), Some(5));
        assert_eq!(snap.counter("heap.alloc.flonums"), Some(1));
        assert_eq!(snap.counter("heap.collections"), Some(1));
        let hist = snap.histogram("heap.alloc_size_words").unwrap();
        assert_eq!(hist.count, 6);
        assert_eq!(hist.sum, 11);
        // Everything was garbage, so the whole span is one free block.
        assert_eq!(snap.gauge("heap.live_words"), Some(0));
    }

    #[test]
    fn gc_then_alloc_cycle_sustains() {
        let mut h = Heap::new(64);
        let mut root = Word::NIL;
        for i in 0..200 {
            // Keep a 3-cons list live; everything older is garbage.
            let addr = match h.try_alloc(2, ObjKind::Cons) {
                Some(a) => a,
                None => {
                    h.collect(&[root]);
                    h.try_alloc(2, ObjKind::Cons).expect("post-gc alloc")
                }
            };
            h.write(addr, Word::fixnum(i));
            h.write(addr + 1, Word::NIL);
            root = Word::Ptr(Tag::Cons, addr);
        }
        assert!(h.allocs.collections > 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use s1lisp_trace::rng::SplitMix64;

    /// Random alternating allocate/collect cycles never corrupt live
    /// list structure.
    #[test]
    fn live_lists_survive_random_churn() {
        let mut rng = SplitMix64::new(0x5115_0001);
        for _case in 0..64 {
            let ops: Vec<(u8, i64)> = (0..rng.range_usize(1, 60))
                .map(|_| (rng.below(4) as u8, rng.range_i64(1, 100)))
                .collect();
            let mut h = Heap::new(256);
            // The live list we must preserve (addresses of its conses).
            let mut live: Vec<(u64, i64)> = Vec::new();
            let mut head = Word::NIL;
            for (op, n) in ops {
                match op {
                    // Extend the live list.
                    0 => {
                        let addr = match h.try_alloc(2, ObjKind::Cons) {
                            Some(a) => a,
                            None => {
                                h.collect(&[head]);
                                match h.try_alloc(2, ObjKind::Cons) {
                                    Some(a) => a,
                                    None => continue, // genuinely full of live data
                                }
                            }
                        };
                        h.write(addr, Word::fixnum(n));
                        h.write(addr + 1, head);
                        head = Word::Ptr(Tag::Cons, addr);
                        live.push((addr, n));
                    }
                    // Drop the whole live list (becomes garbage).
                    1 => {
                        head = Word::NIL;
                        live.clear();
                    }
                    // Allocate garbage.
                    2 => {
                        if let Some(a) = h.try_alloc(1, ObjKind::Flonum) {
                            h.write(a, Word::F(n as f64));
                        }
                    }
                    // Collect.
                    _ => {
                        h.collect(&[head]);
                    }
                }
                // Verify the live chain after every step (mark–sweep
                // never moves objects, so addresses must be stable).
                let mut cur = head;
                for &(addr, n) in live.iter().rev() {
                    match cur {
                        Word::Ptr(Tag::Cons, a) => {
                            assert_eq!(a, addr);
                            assert_eq!(h.read(a), Word::fixnum(n));
                            cur = h.read(a + 1);
                        }
                        other => panic!("chain broken at {other}"),
                    }
                }
                assert_eq!(cur, Word::NIL);
            }
        }
    }
}
