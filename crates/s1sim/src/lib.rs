//! An instruction-level simulator for the S-1 architecture subset used by
//! the `s1lisp` compiler, together with the Lisp run-time system.
//!
//! §3 of the paper describes the real machine: 36-bit words, 32
//! general-purpose registers with the special "RT" registers RTA and RTB,
//! 5-bit pointer tags, "2½-address" arithmetic instruction formats, and
//! hardware `SIN`/`SQRT`/etc.  The authors' claims are about *compiler
//! output shape* — instruction counts, heap-allocation counts, register
//! traffic, stack behavior — so this substrate reproduces the ISA at the
//! level those measurements need:
//!
//! * a word model with the S-1's tag architecture ([`Word`], [`Tag`]) —
//!   the payload is widened from 31 to 64 bits so Rust-sized fixnums fit
//!   (see DESIGN.md §7);
//! * the register file with RTA/RTB and the 2½-address *constraint*
//!   ([`Insn::check_two_and_a_half`]) that shapes register allocation
//!   (§6.1's "clever dance");
//! * an instruction encoding model (see [`encoded_size`]) (each instruction occupies 1–3
//!   36-bit words depending on operand complexity) for code-size metrics;
//! * the run-time system: a tagged [`Heap`] with mark–sweep garbage
//!   collection, the deep-binding stack for special variables, pdl-number
//!   certification (§6.3), and the "known primitive operations" that are
//!   too large to compile in line;
//! * execution [`MachineStats`]: instructions retired, allocations by kind,
//!   maximum stack depth, special-variable searches vs. cached reads,
//!   certifications — the quantities the experiments report.
//!
//! # Examples
//!
//! Hand-assembled `(1+ x)`:
//!
//! ```
//! use s1lisp_s1sim::{Asm, Insn, Machine, Operand, Program, Reg, Word};
//! use s1lisp_interp::Value;
//!
//! let mut asm = Asm::new("inc1", 1);
//! // 2½-address discipline: route the result through RTA (§6.1).
//! asm.push(Insn::Add {
//!     dst: Operand::Reg(Reg::RTA),
//!     a: Operand::arg(0),
//!     b: Operand::fixnum(1),
//! });
//! asm.push(Insn::Mov { dst: Operand::Reg(Reg::A), src: Operand::Reg(Reg::RTA) });
//! asm.push(Insn::Ret);
//! let mut program = Program::new();
//! program.define(asm.finish());
//! let mut m = Machine::new(program);
//! let v = m.run("inc1", &[Value::Fixnum(41)]).unwrap();
//! assert_eq!(v, Value::Fixnum(42));
//! ```

#![warn(missing_docs)]

mod asm;
mod encoding;
mod heap;
mod insn;
mod machine;
mod postmortem;
mod profile;
mod program;
mod runtime;
mod stats;
mod word;

pub use asm::Asm;
pub use encoding::{encoded_size, program_size_words};
pub use heap::{AllocStats, Heap, HeapTelemetry, LiveSample, ObjKind, ALLOC_SIZE_BOUNDS};
pub use insn::{CallTarget, Cond, Insn, Label, Operand, Reg};
pub use machine::{Machine, Trap};
pub use postmortem::{FrameAt, PostMortem, RetiredAt};
pub use profile::{opcode_class, ExecProfile, Retired, StackFrameCycles, DEFAULT_STACK_DEPTH_CAP};
pub use program::{FnNameTable, FuncCode, Program};
pub use stats::MachineStats;
pub use word::{Tag, Word};

/// Re-export of the value type used at the host boundary.
pub use s1lisp_interp::Value;
