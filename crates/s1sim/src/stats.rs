//! Execution statistics.
//!
//! These counters are the measurement surface of the reproduction: the
//! experiments compare instruction counts, allocation counts, stack
//! depths, and special-variable search costs across compiler
//! configurations.

use crate::heap::AllocStats;

/// Counters accumulated while a [`Machine`](crate::Machine) runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineStats {
    /// Instructions retired.
    pub insns: u64,
    /// `Mov`/`Movp` data-movement instructions retired (§6.1 measures
    /// "reduction of data movement" — "nearly all of the time it is
    /// possible … to generate code … that requires no MOV instructions").
    pub moves: u64,
    /// Function calls (full frames pushed).
    pub calls: u64,
    /// Tail calls / tail self-jumps (frames *reused*).
    pub tail_calls: u64,
    /// Deepest control-stack nesting reached.
    pub max_call_depth: usize,
    /// Deepest data-stack extent reached, in words.
    pub max_stack_words: usize,
    /// Deep-binding searches performed (`SpecLookup`/`SpecRead`).
    pub special_searches: u64,
    /// Constant-time reads/writes through cached special pointers.
    pub special_cached: u64,
    /// Pdl numbers created (flonums boxed into stack slots).
    pub pdl_numbers: u64,
    /// Certifications that found a safe (heap) pointer.
    pub certify_safe: u64,
    /// Certifications that had to copy a stack object to the heap.
    pub certify_copies: u64,
    /// Closures constructed at run time.
    pub closures_made: u64,
    /// Heap allocation counters (mirrored from the heap at read time).
    pub heap: AllocStats,
}

impl MachineStats {
    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = MachineStats::default();
    }

    /// Every counter as `(label, value)`, in display order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("instructions retired", self.insns),
            ("data moves (MOV/MOVP)", self.moves),
            ("calls (frames pushed)", self.calls),
            ("tail calls (frames reused)", self.tail_calls),
            ("max call depth", self.max_call_depth as u64),
            ("max stack words", self.max_stack_words as u64),
            ("special deep searches", self.special_searches),
            ("special cached accesses", self.special_cached),
            ("pdl numbers created", self.pdl_numbers),
            ("certify: safe pointers", self.certify_safe),
            ("certify: stack copies", self.certify_copies),
            ("closures made", self.closures_made),
            ("heap objects allocated", self.heap.objects()),
            ("heap words allocated", self.heap.words),
            ("heap flonums boxed", self.heap.flonums),
            ("garbage collections", self.heap.collections),
        ]
    }
}

/// An aligned counter table, one counter per line.
impl std::fmt::Display for MachineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let counters = self.counters();
        let width = counters.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in counters {
            writeln!(f, "{label:<width$}  {value:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes() {
        let mut s = MachineStats {
            insns: 5,
            ..MachineStats::default()
        };
        s.reset();
        assert_eq!(s.insns, 0);
    }

    #[test]
    fn display_is_an_aligned_table() {
        let s = MachineStats {
            insns: 1234,
            tail_calls: 7,
            ..MachineStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("instructions retired"));
        assert!(text.contains("1234"));
        // Every line has the same total width (label padded + value).
        let widths: Vec<usize> = text.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }
}
