//! Execution statistics.
//!
//! These counters are the measurement surface of the reproduction: the
//! experiments compare instruction counts, allocation counts, stack
//! depths, and special-variable search costs across compiler
//! configurations.

use crate::heap::AllocStats;

/// Counters accumulated while a [`Machine`](crate::Machine) runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineStats {
    /// Instructions retired.
    pub insns: u64,
    /// `Mov`/`Movp` data-movement instructions retired (§6.1 measures
    /// "reduction of data movement" — "nearly all of the time it is
    /// possible … to generate code … that requires no MOV instructions").
    pub moves: u64,
    /// Function calls (full frames pushed).
    pub calls: u64,
    /// Tail calls / tail self-jumps (frames *reused*).
    pub tail_calls: u64,
    /// Deepest control-stack nesting reached.
    pub max_call_depth: usize,
    /// Deepest data-stack extent reached, in words.
    pub max_stack_words: usize,
    /// Deep-binding searches performed (`SpecLookup`/`SpecRead`).
    pub special_searches: u64,
    /// Constant-time reads/writes through cached special pointers.
    pub special_cached: u64,
    /// Pdl numbers created (flonums boxed into stack slots).
    pub pdl_numbers: u64,
    /// Certifications that found a safe (heap) pointer.
    pub certify_safe: u64,
    /// Certifications that had to copy a stack object to the heap.
    pub certify_copies: u64,
    /// Closures constructed at run time.
    pub closures_made: u64,
    /// Heap allocation counters (mirrored from the heap at read time).
    pub heap: AllocStats,
}

impl MachineStats {
    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = MachineStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes() {
        let mut s = MachineStats {
            insns: 5,
            ..MachineStats::default()
        };
        s.reset();
        assert_eq!(s.insns, 0);
    }
}
