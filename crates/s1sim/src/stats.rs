//! Execution statistics.
//!
//! These counters are the measurement surface of the reproduction: the
//! experiments compare instruction counts, allocation counts, stack
//! depths, and special-variable search costs across compiler
//! configurations.
//!
//! The struct fields are the *accumulation* surface (the machine's hot
//! loop bumps plain `u64`s); the [`MetricsRegistry`] is the *reporting*
//! surface.  A single `(metric, label, value)` table drives both
//! [`MachineStats::export`] and [`MachineStats::counters`] — and
//! `counters()` reads its values back through a registry snapshot, so
//! the Display table and the metrics a snapshot reports cannot drift
//! (a workspace test pins this after a tak run).

use s1lisp_trace::metrics::{MetricsRegistry, MetricsSnapshot};

use crate::heap::AllocStats;

/// Counters accumulated while a [`Machine`](crate::Machine) runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineStats {
    /// Instructions retired.
    pub insns: u64,
    /// `Mov`/`Movp` data-movement instructions retired (§6.1 measures
    /// "reduction of data movement" — "nearly all of the time it is
    /// possible … to generate code … that requires no MOV instructions").
    pub moves: u64,
    /// Function calls (full frames pushed).
    pub calls: u64,
    /// Tail calls / tail self-jumps (frames *reused*).
    pub tail_calls: u64,
    /// Deepest control-stack nesting reached.
    pub max_call_depth: usize,
    /// Deepest data-stack extent reached, in words.
    pub max_stack_words: usize,
    /// Deep-binding searches performed (`SpecLookup`/`SpecRead`).
    pub special_searches: u64,
    /// Constant-time reads/writes through cached special pointers.
    pub special_cached: u64,
    /// Pdl numbers created (flonums boxed into stack slots).
    pub pdl_numbers: u64,
    /// Certifications that found a safe (heap) pointer.
    pub certify_safe: u64,
    /// Certifications that had to copy a stack object to the heap.
    pub certify_copies: u64,
    /// Closures constructed at run time.
    pub closures_made: u64,
    /// Heap allocation counters (mirrored from the heap at read time).
    pub heap: AllocStats,
}

/// The one table every `MachineStats` view is derived from:
/// `(registry metric name, display label)` in display order.
const STAT_TABLE: &[(&str, &str)] = &[
    ("sim.insns_retired", "instructions retired"),
    ("sim.moves", "data moves (MOV/MOVP)"),
    ("sim.calls", "calls (frames pushed)"),
    ("sim.tail_calls", "tail calls (frames reused)"),
    ("sim.max_call_depth", "max call depth"),
    ("sim.max_stack_words", "max stack words"),
    ("sim.special_searches", "special deep searches"),
    ("sim.special_cached", "special cached accesses"),
    ("sim.pdl_numbers", "pdl numbers created"),
    ("sim.certify_safe", "certify: safe pointers"),
    ("sim.certify_copies", "certify: stack copies"),
    ("sim.closures_made", "closures made"),
    ("sim.heap_objects", "heap objects allocated"),
    ("sim.heap_words", "heap words allocated"),
    ("sim.heap_flonums", "heap flonums boxed"),
    ("sim.collections", "garbage collections"),
];

impl MachineStats {
    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = MachineStats::default();
    }

    /// The raw value for one `STAT_TABLE` metric name.
    fn value_of(&self, metric: &str) -> u64 {
        match metric {
            "sim.insns_retired" => self.insns,
            "sim.moves" => self.moves,
            "sim.calls" => self.calls,
            "sim.tail_calls" => self.tail_calls,
            "sim.max_call_depth" => self.max_call_depth as u64,
            "sim.max_stack_words" => self.max_stack_words as u64,
            "sim.special_searches" => self.special_searches,
            "sim.special_cached" => self.special_cached,
            "sim.pdl_numbers" => self.pdl_numbers,
            "sim.certify_safe" => self.certify_safe,
            "sim.certify_copies" => self.certify_copies,
            "sim.closures_made" => self.closures_made,
            "sim.heap_objects" => self.heap.objects(),
            "sim.heap_words" => self.heap.words,
            "sim.heap_flonums" => self.heap.flonums,
            "sim.collections" => self.heap.collections,
            other => unreachable!("unknown stat metric {other}"),
        }
    }

    /// Exports every counter into `reg` under its `sim.*` metric name.
    /// `add`s rather than `set`s, so a registry can aggregate several
    /// runs; export once per finished run.
    pub fn export(&self, reg: &MetricsRegistry) {
        for &(metric, _) in STAT_TABLE {
            reg.counter(metric).add(self.value_of(metric));
        }
    }

    /// Every counter as `(label, value)`, in display order — derived by
    /// round-tripping through a metrics registry snapshot, so this table
    /// and an exported snapshot are the same numbers by construction.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let reg = MetricsRegistry::new();
        self.export(&reg);
        let snap = reg.snapshot();
        self.labeled_from(&snap)
    }

    /// The display table read out of `snap` (which must contain this
    /// stats object's export).  Exposed so reports can render a table
    /// from an already-taken snapshot without re-exporting.
    pub fn labeled_from(&self, snap: &MetricsSnapshot) -> Vec<(&'static str, u64)> {
        STAT_TABLE
            .iter()
            .map(|&(metric, label)| (label, snap.counter(metric).unwrap_or(0)))
            .collect()
    }
}

/// An aligned counter table, one counter per line.
impl std::fmt::Display for MachineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let counters = self.counters();
        let width = counters.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in counters {
            writeln!(f, "{label:<width$}  {value:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_zeroes() {
        let mut s = MachineStats {
            insns: 5,
            ..MachineStats::default()
        };
        s.reset();
        assert_eq!(s.insns, 0);
    }

    #[test]
    fn display_is_an_aligned_table() {
        let s = MachineStats {
            insns: 1234,
            tail_calls: 7,
            ..MachineStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("instructions retired"));
        assert!(text.contains("1234"));
        // Every line has the same total width (label padded + value).
        let widths: Vec<usize> = text.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn counters_round_trip_through_the_registry() {
        let s = MachineStats {
            insns: 99,
            moves: 3,
            max_call_depth: 12,
            heap: AllocStats {
                flonums: 2,
                words: 40,
                ..AllocStats::default()
            },
            ..MachineStats::default()
        };
        let reg = MetricsRegistry::new();
        s.export(&reg);
        let snap = reg.snapshot();
        // The snapshot and the display table agree entry for entry.
        assert_eq!(snap.counter("sim.insns_retired"), Some(99));
        assert_eq!(snap.counter("sim.max_call_depth"), Some(12));
        assert_eq!(snap.counter("sim.heap_flonums"), Some(2));
        let table = s.counters();
        assert_eq!(table.len(), STAT_TABLE.len());
        for (&(metric, label), &(got_label, got_value)) in STAT_TABLE.iter().zip(table.iter()) {
            assert_eq!(label, got_label);
            assert_eq!(snap.counter(metric), Some(got_value));
        }
    }
}
