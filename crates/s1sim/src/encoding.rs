//! Instruction size model.
//!
//! §3: "Instructions occupy one, two, or three 36-bit words.  Every
//! operation has a one-word format, consisting of a 12-bit opcode and two
//! 12-bit operand specifiers.  The second and third words are needed only
//! for the more complex addressing modes, one extra word for each of two
//! operands."
//!
//! The model: each instruction starts at one word; each operand needing
//! an extended specifier (a large constant, a long displacement, or the
//! indexed mode with a long displacement) adds one word.  The clever
//! "2½-address" encoding means a three-operand arithmetic instruction
//! pays for at most two operand specifiers — exactly why the RT registers
//! matter.  Code-size results (e.g. experiment E12) are reported in these
//! words.

use crate::insn::{CallTarget, Insn, Operand};
use crate::program::Program;
use crate::word::Word;

/// Words of extended-specifier space an operand needs beyond its 12-bit
/// short form.
fn operand_extra(op: Operand) -> usize {
    match op {
        Operand::Reg(_) => 0,
        // Short immediates pack into the specifier; anything else spills.
        Operand::Const(Word::Ptr(_, payload)) => {
            let v = payload as i64;
            usize::from(!(-(1 << 5)..1 << 5).contains(&v))
        }
        Operand::Const(_) => 1,
        // A short displacement fits (6-bit index offsets, §3); longer
        // ones take the 26-bit extended form.
        Operand::Ind(_, off) => usize::from(!(-32..32).contains(&off)),
        Operand::Idx { off, .. } => usize::from(!(-32..32).contains(&off)),
        // The memory-index mode always needs an extended specifier.
        Operand::IdxMem { .. } => 1,
    }
}

/// The encoded size of one instruction in 36-bit words (1–3).
pub fn encoded_size(insn: &Insn) -> usize {
    let ops: Vec<Operand> = match insn {
        Insn::Mov { dst, src }
        | Insn::Movp { dst, src, .. }
        | Insn::Neg { dst, src }
        | Insn::FNeg { dst, src }
        | Insn::FSin { dst, src }
        | Insn::FCos { dst, src }
        | Insn::FSqrt { dst, src }
        | Insn::FAtan { dst, src }
        | Insn::FExp { dst, src }
        | Insn::FLog { dst, src }
        | Insn::FloatIt { dst, src }
        | Insn::FixIt { dst, src }
        | Insn::Car { dst, src }
        | Insn::Cdr { dst, src }
        | Insn::BoxFlo { dst, src }
        | Insn::UnboxFlo { dst, src }
        | Insn::Certify { dst, src }
        | Insn::MakeCell { dst, src } => vec![*dst, *src],
        Insn::Add { dst, a, b }
        | Insn::Sub { dst, a, b }
        | Insn::Mult { dst, a, b }
        | Insn::Div { dst, a, b }
        | Insn::DivFloor { dst, a, b }
        | Insn::Rem { dst, a, b }
        | Insn::ModFloor { dst, a, b }
        | Insn::FAdd { dst, a, b }
        | Insn::FSub { dst, a, b }
        | Insn::FMult { dst, a, b }
        | Insn::FDiv { dst, a, b }
        | Insn::FMax { dst, a, b }
        | Insn::FMin { dst, a, b } => {
            // 2½-address: when dst == a, only two specifiers are used;
            // when an RT register is involved it rides in the opcode.
            if dst == a {
                vec![*a, *b]
            } else {
                let mut v: Vec<Operand> = [*dst, *a, *b]
                    .into_iter()
                    .filter(|o| !matches!(o, Operand::Reg(r) if r.is_rt()))
                    .collect();
                v.truncate(2);
                v
            }
        }
        Insn::JmpIf { a, b, .. } => vec![*a, *b],
        Insn::JmpNil { src, .. }
        | Insn::JmpNotNil { src, .. }
        | Insn::JmpTag { src, .. }
        | Insn::Push { src }
        | Insn::SpecBind { src, .. }
        | Insn::SpecWrite { src, .. } => vec![*src],
        Insn::JmpEq { a, b, .. } => vec![*a, *b],
        Insn::Pop { dst }
        | Insn::SpecLookup { dst, .. }
        | Insn::SpecRead { dst, .. }
        | Insn::RtCall { dst, .. }
        | Insn::LoadEnv { dst, .. }
        | Insn::LoadFunction { dst, .. }
        | Insn::MakeClosure { dst, .. } => vec![*dst],
        Insn::LoadCell { dst, cell } => vec![*dst, *cell],
        Insn::StoreCell { cell, src } => vec![*cell, *src],
        Insn::ConsRt { dst, car, cdr } => {
            let mut v = vec![*dst, *car, *cdr];
            v.truncate(2);
            v
        }
        Insn::Throw { tag, value } => vec![*tag, *value],
        Insn::PushCatch { tag, .. } => vec![*tag],
        Insn::Call { f, .. } | Insn::TailCall { f, .. } => match f {
            CallTarget::Value(op) => vec![*op],
            CallTarget::Func(_) => vec![],
        },
        Insn::Dispatch { src, targets } => {
            // The dispatch table itself occupies code words (Table 4's
            // `(DATA …)` word).
            return 1 + operand_extra(*src) + targets.len().div_ceil(4);
        }
        Insn::Apply { f, list } => vec![*f, *list],
        Insn::LoadConst { dst, .. } => vec![*dst],
        Insn::Jmp { .. }
        | Insn::TailJmp { .. }
        | Insn::Ret
        | Insn::Trap { .. }
        | Insn::AllocSlots { .. }
        | Insn::FreeSlots { .. }
        | Insn::SpecUnbind { .. }
        | Insn::ListifyArgs { .. }
        | Insn::LocalCall { .. }
        | Insn::LocalRet
        | Insn::PopCatch => vec![],
    };
    let size = 1 + ops.into_iter().map(operand_extra).sum::<usize>();
    size.min(3)
}

/// The total encoded size of every defined function, in words.
pub fn program_size_words(program: &Program) -> usize {
    program
        .functions
        .iter()
        .flatten()
        .map(|f| f.insns.iter().map(encoded_size).sum::<usize>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Reg;

    #[test]
    fn simple_forms_are_one_word() {
        let i = Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::Ind(Reg::FP, 0),
            b: Operand::Ind(Reg::FP, 1),
        };
        assert_eq!(encoded_size(&i), 1);
        assert_eq!(encoded_size(&Insn::Ret), 1);
    }

    #[test]
    fn long_displacements_take_extra_words() {
        let i = Insn::Mov {
            dst: Operand::Ind(Reg::TP, -112),
            src: Operand::Reg(Reg::RTA),
        };
        assert_eq!(encoded_size(&i), 2);
        let j = Insn::Mov {
            dst: Operand::Ind(Reg::TP, -112),
            src: Operand::Ind(Reg::FP, -100),
        };
        assert_eq!(encoded_size(&j), 3);
    }

    #[test]
    fn large_constants_spill() {
        let i = Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::float(0.159154942),
        };
        assert_eq!(encoded_size(&i), 2);
        let j = Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::fixnum(3),
        };
        assert_eq!(encoded_size(&j), 1);
    }

    #[test]
    fn size_never_exceeds_three() {
        let i = Insn::FAdd {
            dst: Operand::Ind(Reg::TP, -500),
            a: Operand::Ind(Reg::TP, -500),
            b: Operand::Ind(Reg::FP, -400),
        };
        assert_eq!(encoded_size(&i), 3);
    }
}
