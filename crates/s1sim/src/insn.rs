//! Instructions, operands, and registers.
//!
//! The instruction set is the subset of the S-1 the compiler targets,
//! plus the run-time-system entry points that the real compiler reached
//! through `%CALL`-style macros (Table 4).  Arithmetic obeys the S-1's
//! "2½-address" constraint: "the three operands to ADD (for example) may
//! be in three distinct places, provided that one of them is one of the
//! two registers named RTA and RTB" (§3).

use crate::word::{Tag, Word};

/// A register name.  R0–R31 exist; a few have fixed conventions
/// (mirroring §7's commentary): SP the stack pointer, FP the frame
/// pointer, TP the temporaries pointer, RTA/RTB the 2½-address
/// bottleneck registers (general registers 4 and 6 on the real machine),
/// CP the (callee) procedure register, A the argument/value register, EV
/// the closure-environment register.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Stack pointer.
    pub const SP: Reg = Reg(1);
    /// Frame pointer (arguments live at `FP+0 … FP+n-1`).
    pub const FP: Reg = Reg(2);
    /// Temporaries pointer (frame-local scratch and pdl-number slots).
    pub const TP: Reg = Reg(3);
    /// First 2½-address bottleneck register (general register 4).
    pub const RTA: Reg = Reg(4);
    /// Procedure register.
    pub const CP: Reg = Reg(5);
    /// Second 2½-address bottleneck register (general register 6).
    pub const RTB: Reg = Reg(6);
    /// Argument / return-value register.
    pub const A: Reg = Reg(7);
    /// Closure environment register.
    pub const EV: Reg = Reg(8);
    /// First general-purpose register available to the allocator.
    pub const FIRST_GP: u8 = 9;

    /// Whether this is one of the RT (bottleneck) registers.
    pub fn is_rt(self) -> bool {
        self == Reg::RTA || self == Reg::RTB
    }
}

impl std::fmt::Debug for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Reg::SP => write!(f, "SP"),
            Reg::FP => write!(f, "FP"),
            Reg::TP => write!(f, "TP"),
            Reg::RTA => write!(f, "RTA"),
            Reg::CP => write!(f, "CP"),
            Reg::RTB => write!(f, "RTB"),
            Reg::A => write!(f, "A"),
            Reg::EV => write!(f, "EV"),
            Reg(n) => write!(f, "R{n}"),
        }
    }
}

/// An operand.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An assembler constant (the hardware would fetch it from an
    /// extended instruction word).
    Const(Word),
    /// Memory at `reg + offset` (stack slots are `FP`/`TP`/`SP`-relative).
    Ind(Reg, i32),
    /// The S-1's indexed mode (§3): memory at
    /// `(base + offset) + (index << shift)` — "in one operand, fetch from
    /// a record a component that is a pointer to an array, … adjust the
    /// index for the array's element size, and fetch the selected array
    /// element."
    Idx {
        /// Base register.
        base: Reg,
        /// Signed displacement added to the base.
        off: i32,
        /// Index register (its value is left-shifted).
        idx: Reg,
        /// Shift amount (0–3 on the S-1).
        shift: u8,
    },
    /// The full S-1 mode with a memory-resident index: memory at
    /// `(base + off) + (mem[idx_base + idx_off] << shift)` — the
    /// `(.Rb+bo)+((.(.Rn+(no^2)))^sh)` calculation of §3, which lets the
    /// paper's harder matrix statement write `FADD Z(TEMP),RTA,C(RTB)`
    /// with the Z subscript parked in a stack slot.
    IdxMem {
        /// Base register.
        base: Reg,
        /// Signed displacement added to the base.
        off: i32,
        /// Register addressing the index word.
        idx_base: Reg,
        /// Displacement of the index word.
        idx_off: i32,
        /// Shift applied to the fetched index.
        shift: u8,
    },
}

impl Operand {
    /// Argument slot `i` of the current frame.
    pub fn arg(i: u16) -> Operand {
        Operand::Ind(Reg::FP, i32::from(i))
    }

    /// Frame temporary slot `i` (TP-relative).
    pub fn temp(i: u16) -> Operand {
        Operand::Ind(Reg::TP, i32::from(i))
    }

    /// An immediate fixnum constant in pointer format.
    pub fn fixnum(n: i64) -> Operand {
        Operand::Const(Word::fixnum(n))
    }

    /// A raw floating-point constant.
    pub fn float(x: f64) -> Operand {
        Operand::Const(Word::F(x))
    }

    /// The nil constant.
    pub fn nil() -> Operand {
        Operand::Const(Word::NIL)
    }

    /// Is this operand a memory reference?
    pub fn is_mem(self) -> bool {
        matches!(self, Operand::Ind(..) | Operand::Idx { .. })
    }

    /// Is this operand the given register?
    pub fn is_reg(self, r: Reg) -> bool {
        self == Operand::Reg(r)
    }
}

/// A branch condition comparing two numeric operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A branch target: an index into the owning function's label table
/// (bound by [`Asm::bind`](crate::Asm::bind)).
pub type Label = u32;

/// The target of a call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CallTarget {
    /// A named global function (index into the program's function name
    /// table; resolution is late, as in Lisp).
    Func(u32),
    /// A computed function or closure object.
    Value(Operand),
}

/// One machine instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Insn {
    // ---- data movement ----
    /// `dst := src`.
    Mov {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// Table 4's `MOVP`: "creates a pointer to its second operand,
    /// installing the indicated type in the tag field."  When `src`
    /// addresses a stack slot the result is a pdl (unsafe) pointer.
    Movp {
        /// Tag to install.
        tag: Tag,
        /// Destination.
        dst: Operand,
        /// Addressed operand (must be a memory operand).
        src: Operand,
    },
    // ---- integer arithmetic (2½-address) ----
    /// Integer add: `dst := a + b`.
    Add {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Integer subtract: `dst := a - b`.
    Sub {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Integer multiply: `dst := a * b`.
    Mult {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Integer divide (truncating; the S-1 had all sixteen rounding
    /// modes as primitive instructions, §3): `dst := a / b`.
    Div {
        /// Destination.
        dst: Operand,
        /// Dividend.
        a: Operand,
        /// Divisor.
        b: Operand,
    },
    /// Integer division, floor rounding (`f l o o r` is "a primitive
    /// instruction", §3).
    DivFloor {
        /// Destination.
        dst: Operand,
        /// Dividend.
        a: Operand,
        /// Divisor.
        b: Operand,
    },
    /// Integer remainder (truncating pair of [`Insn::Div`]).
    Rem {
        /// Destination.
        dst: Operand,
        /// Dividend.
        a: Operand,
        /// Divisor.
        b: Operand,
    },
    /// Integer remainder, floor rounding (`mod`).
    ModFloor {
        /// Destination.
        dst: Operand,
        /// Dividend.
        a: Operand,
        /// Divisor.
        b: Operand,
    },
    /// Integer negate: `dst := -src`.
    Neg {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
    },
    // ---- floating-point arithmetic (2½-address, raw floats) ----
    /// Floating add.
    FAdd {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating subtract.
    FSub {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating multiply.
    FMult {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating divide.
    FDiv {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating maximum (Table 4's `FMAX`).
    FMax {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating minimum.
    FMin {
        /// Destination.
        dst: Operand,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// Floating negate.
    FNeg {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// The S-1 `SIN` instruction — argument in **cycles** (§7).
    FSin {
        /// Destination.
        dst: Operand,
        /// Source (cycles).
        src: Operand,
    },
    /// Cosine, argument in cycles.
    FCos {
        /// Destination.
        dst: Operand,
        /// Source (cycles).
        src: Operand,
    },
    /// Square root.
    FSqrt {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// Arctangent (radians).
    FAtan {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// e^x.
    FExp {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// Natural logarithm.
    FLog {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
    },
    /// Convert integer to float.
    FloatIt {
        /// Destination.
        dst: Operand,
        /// Source (raw integer or fixnum).
        src: Operand,
    },
    /// Convert float to integer (truncating).
    FixIt {
        /// Destination.
        dst: Operand,
        /// Source (raw float).
        src: Operand,
    },
    // ---- control ----
    /// Unconditional jump.
    Jmp {
        /// Target label.
        target: Label,
    },
    /// Compare-and-branch on a numeric condition.
    JmpIf {
        /// The condition.
        cond: Cond,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Target label.
        target: Label,
    },
    /// Branch if the operand is nil.
    JmpNil {
        /// Tested operand.
        src: Operand,
        /// Target label.
        target: Label,
    },
    /// Branch if the operand is non-nil.
    JmpNotNil {
        /// Tested operand.
        src: Operand,
        /// Target label.
        target: Label,
    },
    /// Branch if the operand carries the given tag (type dispatch).
    JmpTag {
        /// Tag to test.
        tag: Tag,
        /// Tested operand.
        src: Operand,
        /// Target label.
        target: Label,
    },
    /// Branch if the two operands are `eq` (identical words).
    JmpEq {
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
        /// Target label.
        target: Label,
    },
    /// Table 4's computed dispatch: jump to `targets[src]` (trap if out
    /// of range).
    Dispatch {
        /// Raw index operand.
        src: Operand,
        /// Jump table.
        targets: Vec<Label>,
    },
    // ---- stack and frames ----
    /// Push a word.
    Push {
        /// Source.
        src: Operand,
    },
    /// Pop into a destination.
    Pop {
        /// Destination.
        dst: Operand,
    },
    /// Allocate `n` stack slots initialized to `init` (Table 4's frame
    /// `ALLOC`s: nil for pointer slots, a `DTP-GC` marker for scratch).
    AllocSlots {
        /// Number of slots.
        n: u16,
        /// Initial word for each slot.
        init: Word,
    },
    /// Pop `n` slots.
    FreeSlots {
        /// Number of slots.
        n: u16,
    },
    /// Call a function with the top `nargs` stack words as arguments;
    /// result arrives in register A.
    Call {
        /// Callee.
        f: CallTarget,
        /// Argument count.
        nargs: u8,
    },
    /// The parameter-passing goto (§2): replace the current frame with
    /// the top `nargs` stack words and jump to the callee.
    TailCall {
        /// Callee.
        f: CallTarget,
        /// Argument count.
        nargs: u8,
    },
    /// Tail self-jump: move the top `nargs` words into the argument slots
    /// and continue at a label of the *current* function (the compiled
    /// form of `exptl`'s self-call).
    TailJmp {
        /// Argument count.
        nargs: u8,
        /// Restart label (usually the function body).
        target: Label,
    },
    /// Return with the value in register A.
    Ret,
    /// Signal a run-time error (wrong argument count, wrong type…).
    Trap {
        /// Diagnostic message.
        msg: &'static str,
    },
    // ---- run-time system ----
    /// Allocate a cons cell.
    ConsRt {
        /// Destination (receives a Cons pointer).
        dst: Operand,
        /// Car value.
        car: Operand,
        /// Cdr value.
        cdr: Operand,
    },
    /// `car` with type check (nil yields nil).
    Car {
        /// Destination.
        dst: Operand,
        /// Source list.
        src: Operand,
    },
    /// `cdr` with type check (nil yields nil).
    Cdr {
        /// Destination.
        dst: Operand,
        /// Source list.
        src: Operand,
    },
    /// Heap-allocate a flonum object from a raw float (the expensive
    /// direction of §6.2: "conversion from a raw number back to pointer
    /// format … may entail allocation of new storage and consequent
    /// garbage-collection overhead").
    BoxFlo {
        /// Destination (receives a SingleFlonum pointer).
        dst: Operand,
        /// Raw float source.
        src: Operand,
    },
    /// Dereference a flonum pointer to a raw float ("a simple indirection
    /// operation", with a run-time type check).  Accepts an immediate
    /// fixnum (converting it) so generic call sites degrade gracefully.
    UnboxFlo {
        /// Destination (raw float).
        dst: Operand,
        /// Flonum pointer (or already-raw float).
        src: Operand,
    },
    /// §6.3's pointer certification: "either by determining at run time
    /// that the pointer is safe (does not point into the stack) or, if
    /// that fails, by copying the stack-allocated object into the heap."
    Certify {
        /// Destination (safe pointer).
        dst: Operand,
        /// Possibly-unsafe pointer.
        src: Operand,
    },
    /// Allocate a heap value cell (for a variable that "must … be
    /// heap-allocated" because closures refer to it, §4.4).
    MakeCell {
        /// Destination (Cell pointer).
        dst: Operand,
        /// Initial value.
        src: Operand,
    },
    /// Read through a Cell pointer.
    LoadCell {
        /// Destination.
        dst: Operand,
        /// Cell pointer.
        cell: Operand,
    },
    /// Write through a Cell pointer.
    StoreCell {
        /// Cell pointer.
        cell: Operand,
        /// Value.
        src: Operand,
    },
    /// Construct a closure over the top `ncells` stack words (each a Cell
    /// or value), for function `fnid`.
    MakeClosure {
        /// Destination (Closure pointer).
        dst: Operand,
        /// Code: index into the program's function name table.
        fnid: u32,
        /// Number of captured cells to pop.
        ncells: u8,
    },
    /// Load captured cell `i` of the current closure (via register EV).
    LoadEnv {
        /// Destination.
        dst: Operand,
        /// Environment slot index.
        index: u16,
    },
    /// Deep-bind a special variable: push (symbol, value) on the binding
    /// stack (§4.4).
    SpecBind {
        /// Symbol table index.
        sym: u32,
        /// Bound value.
        src: Operand,
    },
    /// Pop `n` special bindings.
    SpecUnbind {
        /// Number of bindings.
        n: u16,
    },
    /// The deep-binding *search*: linear scan for the innermost binding
    /// of the symbol, yielding a cached pointer to its value slot ("the
    /// special variables needed by that function are searched for once
    /// and pointers to the relevant stack locations are cached", §4.4).
    SpecLookup {
        /// Destination (Cell pointer into the binding stack or globals).
        dst: Operand,
        /// Symbol table index.
        sym: u32,
    },
    /// An *uncached* special read: search plus load every time (the E10
    /// baseline).
    SpecRead {
        /// Destination (the value).
        dst: Operand,
        /// Symbol table index.
        sym: u32,
    },
    /// An uncached special write.
    SpecWrite {
        /// Symbol table index.
        sym: u32,
        /// Value.
        src: Operand,
    },
    /// Call a run-time-system routine (a "known primitive operation" too
    /// large to compile in line) on the top `nargs` stack words.
    RtCall {
        /// Routine name (from the primop table).
        name: &'static str,
        /// Argument count.
        nargs: u8,
        /// Destination for the result.
        dst: Operand,
    },
    /// Establish a catch frame for non-local exit.
    PushCatch {
        /// Tag value.
        tag: Operand,
        /// Where control resumes when a throw lands here (throw value in
        /// register A).
        target: Label,
    },
    /// Remove the innermost catch frame (normal exit).
    PopCatch,
    /// Throw to the innermost catch with an `eql` tag.
    Throw {
        /// Tag value.
        tag: Operand,
        /// Thrown value.
        value: Operand,
    },
    /// Load the global function object named by a symbol.
    LoadFunction {
        /// Destination.
        dst: Operand,
        /// Function name table index.
        fnid: u32,
    },
    /// Collect the arguments beyond the first `fixed` into a fresh list
    /// and leave it as the next frame slot (the `&rest` prologue).
    ListifyArgs {
        /// Number of fixed parameters preceding the rest list.
        fixed: u16,
    },
    /// Load a constant from the program's constant table (static space:
    /// the constant is materialized once per machine and shared).
    LoadConst {
        /// Destination.
        dst: Operand,
        /// Constant table index.
        idx: u32,
    },
    /// Call a local code block in the same frame (the paper's "special
    /// (fast) subroutine linkage that can avoid error checks … and can
    /// even use special register conventions", §4.4).
    LocalCall {
        /// Block entry label.
        target: Label,
    },
    /// Return from a local code block (frame is untouched).
    LocalRet,
    /// `apply`: call the function value with a spread argument list.
    Apply {
        /// Function value.
        f: Operand,
        /// Argument list.
        list: Operand,
    },
}

impl Insn {
    /// The mnemonic of this instruction, for retired-opcode histograms.
    pub fn opcode(&self) -> &'static str {
        match self {
            Insn::Mov { .. } => "MOV",
            Insn::Movp { .. } => "MOVP",
            Insn::Add { .. } => "ADD",
            Insn::Sub { .. } => "SUB",
            Insn::Mult { .. } => "MULT",
            Insn::Div { .. } => "DIV",
            Insn::DivFloor { .. } => "DIV-FLOOR",
            Insn::Rem { .. } => "REM",
            Insn::ModFloor { .. } => "MOD-FLOOR",
            Insn::Neg { .. } => "NEG",
            Insn::FAdd { .. } => "FADD",
            Insn::FSub { .. } => "FSUB",
            Insn::FMult { .. } => "FMULT",
            Insn::FDiv { .. } => "FDIV",
            Insn::FMax { .. } => "FMAX",
            Insn::FMin { .. } => "FMIN",
            Insn::FNeg { .. } => "FNEG",
            Insn::FSin { .. } => "FSIN",
            Insn::FCos { .. } => "FCOS",
            Insn::FSqrt { .. } => "FSQRT",
            Insn::FAtan { .. } => "FATAN",
            Insn::FExp { .. } => "FEXP",
            Insn::FLog { .. } => "FLOG",
            Insn::FloatIt { .. } => "FLOAT-IT",
            Insn::FixIt { .. } => "FIX-IT",
            Insn::Jmp { .. } => "JMP",
            Insn::JmpIf { .. } => "JMP-IF",
            Insn::JmpNil { .. } => "JMP-NIL",
            Insn::JmpNotNil { .. } => "JMP-NOT-NIL",
            Insn::JmpTag { .. } => "JMP-TAG",
            Insn::JmpEq { .. } => "JMP-EQ",
            Insn::Dispatch { .. } => "DISPATCH",
            Insn::Push { .. } => "PUSH",
            Insn::Pop { .. } => "POP",
            Insn::AllocSlots { .. } => "ALLOC-SLOTS",
            Insn::FreeSlots { .. } => "FREE-SLOTS",
            Insn::Call { .. } => "CALL",
            Insn::TailCall { .. } => "TAIL-CALL",
            Insn::TailJmp { .. } => "TAIL-JMP",
            Insn::Ret => "RET",
            Insn::Trap { .. } => "TRAP",
            Insn::ConsRt { .. } => "CONS-RT",
            Insn::Car { .. } => "CAR",
            Insn::Cdr { .. } => "CDR",
            Insn::BoxFlo { .. } => "BOX-FLO",
            Insn::UnboxFlo { .. } => "UNBOX-FLO",
            Insn::Certify { .. } => "CERTIFY",
            Insn::MakeCell { .. } => "MAKE-CELL",
            Insn::LoadCell { .. } => "LOAD-CELL",
            Insn::StoreCell { .. } => "STORE-CELL",
            Insn::MakeClosure { .. } => "MAKE-CLOSURE",
            Insn::LoadEnv { .. } => "LOAD-ENV",
            Insn::SpecBind { .. } => "SPEC-BIND",
            Insn::SpecUnbind { .. } => "SPEC-UNBIND",
            Insn::SpecLookup { .. } => "SPEC-LOOKUP",
            Insn::SpecRead { .. } => "SPEC-READ",
            Insn::SpecWrite { .. } => "SPEC-WRITE",
            Insn::RtCall { .. } => "RT-CALL",
            Insn::PushCatch { .. } => "PUSH-CATCH",
            Insn::PopCatch => "POP-CATCH",
            Insn::Throw { .. } => "THROW",
            Insn::LoadFunction { .. } => "LOAD-FUNCTION",
            Insn::ListifyArgs { .. } => "LISTIFY-ARGS",
            Insn::LoadConst { .. } => "LOAD-CONST",
            Insn::LocalCall { .. } => "LOCAL-CALL",
            Insn::LocalRet => "LOCAL-RET",
            Insn::Apply { .. } => "APPLY",
        }
    }

    /// The 2½-address legality check (§3): a three-operand arithmetic
    /// instruction is encodable only if the destination coincides with
    /// the first source, or one of the three operands is RTA or RTB.
    ///
    /// Returns `None` if legal, or a diagnostic if not — the program
    /// loader rejects illegal code, which keeps the register allocator
    /// honest (§6.1: "for the best code a clever dance is often needed").
    pub fn check_two_and_a_half(&self) -> Option<String> {
        let (dst, a, b) = match self {
            Insn::Add { dst, a, b }
            | Insn::Sub { dst, a, b }
            | Insn::Mult { dst, a, b }
            | Insn::Div { dst, a, b }
            | Insn::DivFloor { dst, a, b }
            | Insn::Rem { dst, a, b }
            | Insn::ModFloor { dst, a, b }
            | Insn::FAdd { dst, a, b }
            | Insn::FSub { dst, a, b }
            | Insn::FMult { dst, a, b }
            | Insn::FDiv { dst, a, b }
            | Insn::FMax { dst, a, b }
            | Insn::FMin { dst, a, b } => (*dst, *a, *b),
            _ => return None,
        };
        let rt = |o: Operand| matches!(o, Operand::Reg(r) if r.is_rt());
        if dst == a || rt(dst) || rt(a) || rt(b) {
            None
        } else {
            Some(format!(
                "2½-address violation: {self:?} has three distinct non-RT operands"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_names() {
        assert_eq!(format!("{:?}", Reg::RTA), "RTA");
        assert_eq!(format!("{:?}", Reg(12)), "R12");
        assert!(Reg::RTA.is_rt());
        assert!(Reg::RTB.is_rt());
        assert!(!Reg::A.is_rt());
    }

    #[test]
    fn two_and_a_half_address_rules() {
        let m1 = Operand::Ind(Reg::FP, 0);
        let m2 = Operand::Ind(Reg::FP, 1);
        let m3 = Operand::Ind(Reg::FP, 2);
        let rta = Operand::Reg(Reg::RTA);
        // SUB M1,M2  (dst==a)
        assert!(Insn::Sub {
            dst: m1,
            a: m1,
            b: m2
        }
        .check_two_and_a_half()
        .is_none());
        // SUB RTA,M1,M2
        assert!(Insn::Sub {
            dst: rta,
            a: m1,
            b: m2
        }
        .check_two_and_a_half()
        .is_none());
        // SUB M1,RTA,M2
        assert!(Insn::Sub {
            dst: m1,
            a: rta,
            b: m2
        }
        .check_two_and_a_half()
        .is_none());
        // Three distinct memory operands: illegal.
        assert!(Insn::Sub {
            dst: m1,
            a: m2,
            b: m3
        }
        .check_two_and_a_half()
        .is_some());
        // Three distinct non-RT registers: also illegal.
        let (r9, r10, r11) = (
            Operand::Reg(Reg(9)),
            Operand::Reg(Reg(10)),
            Operand::Reg(Reg(11)),
        );
        assert!(Insn::Add {
            dst: r9,
            a: r10,
            b: r11
        }
        .check_two_and_a_half()
        .is_some());
        // Non-arithmetic instructions are unconstrained.
        assert!(Insn::Mov { dst: m1, src: m2 }
            .check_two_and_a_half()
            .is_none());
    }

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::arg(2), Operand::Ind(Reg::FP, 2));
        assert_eq!(Operand::fixnum(5), Operand::Const(Word::fixnum(5)));
        assert!(Operand::arg(0).is_mem());
        assert!(!Operand::Reg(Reg::A).is_mem());
        assert!(Operand::Reg(Reg::A).is_reg(Reg::A));
    }
}
