//! Programs: collections of assembled functions plus symbol and function
//! name tables.

use std::collections::HashMap;
use std::rc::Rc;

use crate::insn::Insn;

/// One assembled function.
#[derive(Clone, Debug)]
pub struct FuncCode {
    /// Function name.
    pub name: String,
    /// Number of fixed argument slots the prologue expects at `FP`.
    /// (Functions with `&optional`/`&rest` do their own dispatch on the
    /// actual count in RTA and normalize the frame to this many slots.)
    pub nslots: u16,
    /// The code.
    pub insns: Vec<Insn>,
    /// Label table: label id → instruction index.
    pub labels: Vec<usize>,
}

/// A borrowed view of the program's fnid→name table — the one shared
/// resolver every diagnostic surface (execution profiles, post-mortems,
/// stats rendering, trap site annotation) goes through, so a function id
/// always prints the same way everywhere.
///
/// Obtain one with [`Program::names`].  Ids with no interned name
/// resolve to `#N` rather than panicking, so the table is safe to use
/// on profiles that outlived the program that produced them.
#[derive(Clone, Copy, Debug)]
pub struct FnNameTable<'a> {
    names: &'a [String],
}

impl<'a> FnNameTable<'a> {
    /// The name of function `fnid`, or `#N` if the id is unknown.
    pub fn resolve(&self, fnid: u32) -> std::borrow::Cow<'a, str> {
        match self.names.get(fnid as usize) {
            Some(name) => std::borrow::Cow::Borrowed(name.as_str()),
            None => std::borrow::Cow::Owned(format!("#{fnid}")),
        }
    }

    /// Number of interned function names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no function names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A linked program.
///
/// Function references are *names* resolved at call time (late binding,
/// as in Lisp): calls to a not-yet-defined function trap only when
/// actually executed.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Interned function names; `CallTarget::Func` indexes this table.
    pub fn_names: Vec<String>,
    fn_ids: HashMap<String, u32>,
    /// Function bodies, indexed like [`Program::fn_names`] (`None` until
    /// defined).
    pub functions: Vec<Option<Rc<FuncCode>>>,
    /// Interned symbols (for special variables, quoted symbols, catch
    /// tags).
    pub symbols: Vec<String>,
    symbol_ids: HashMap<String, u32>,
    /// Interned string constants.
    pub strings: Vec<String>,
    string_ids: HashMap<String, u32>,
    /// Static constants (quoted structure), materialized lazily by the
    /// machine.
    pub constants: Vec<s1lisp_interp::Value>,
    constant_ids: HashMap<String, u32>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Interns a function name, returning its id.
    pub fn fn_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.fn_ids.get(name) {
            return id;
        }
        let id = self.fn_names.len() as u32;
        self.fn_names.push(name.to_string());
        self.fn_ids.insert(name.to_string(), id);
        self.functions.push(None);
        id
    }

    /// Interns a symbol, returning its id.
    pub fn sym_id(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.symbol_ids.get(name) {
            return id;
        }
        let id = self.symbols.len() as u32;
        self.symbols.push(name.to_string());
        self.symbol_ids.insert(name.to_string(), id);
        id
    }

    /// Looks up a function id without interning.
    pub fn lookup_fn(&self, name: &str) -> Option<u32> {
        self.fn_ids.get(name).copied()
    }

    /// The shared fnid→name symbol table (see [`FnNameTable`]).
    pub fn names(&self) -> FnNameTable<'_> {
        FnNameTable {
            names: &self.fn_names,
        }
    }

    /// Defines (or redefines) a function.
    ///
    /// # Panics
    ///
    /// Panics if the code violates the 2½-address constraint or contains
    /// an unbound label — both are compiler bugs, not run-time
    /// conditions.
    pub fn define(&mut self, code: FuncCode) -> u32 {
        for insn in &code.insns {
            if let Some(err) = insn.check_two_and_a_half() {
                panic!("{}: {err}", code.name);
            }
        }
        for (i, &off) in code.labels.iter().enumerate() {
            assert!(
                off <= code.insns.len(),
                "{}: label {i} unbound or out of range",
                code.name
            );
        }
        let id = self.fn_id(&code.name.clone());
        self.functions[id as usize] = Some(Rc::new(code));
        id
    }

    /// The code of function `id`, if defined.
    pub fn func(&self, id: u32) -> Option<&Rc<FuncCode>> {
        self.functions.get(id as usize)?.as_ref()
    }

    /// Interns a string constant, returning its id.
    pub fn str_id(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_ids.insert(s.to_string(), id);
        id
    }

    /// Registers a static constant, returning its table index.  Equal
    /// (printed-form-identical) constants share one entry, so repeated
    /// quoted structure is materialized once per machine.
    pub fn const_id(&mut self, v: s1lisp_interp::Value) -> u32 {
        let key = v.to_string();
        if let Some(&id) = self.constant_ids.get(&key) {
            return id;
        }
        let id = self.constants.len() as u32;
        self.constants.push(v);
        self.constant_ids.insert(key, id);
        id
    }

    /// Total number of instructions across all defined functions.
    pub fn total_insns(&self) -> usize {
        self.functions.iter().flatten().map(|f| f.insns.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::{Operand, Reg};

    #[test]
    fn interning_is_stable() {
        let mut p = Program::new();
        let a = p.fn_id("foo");
        let b = p.fn_id("bar");
        assert_eq!(p.fn_id("foo"), a);
        assert_ne!(a, b);
        let s = p.sym_id("*x*");
        assert_eq!(p.sym_id("*x*"), s);
        assert_eq!(p.symbols[s as usize], "*x*");
    }

    #[test]
    fn name_table_resolves_and_falls_back() {
        let mut p = Program::new();
        let a = p.fn_id("foo");
        let names = p.names();
        assert_eq!(names.resolve(a), "foo");
        assert_eq!(names.resolve(999), "#999");
        assert_eq!(names.len(), 1);
        assert!(!names.is_empty());
    }

    #[test]
    fn define_then_lookup() {
        let mut p = Program::new();
        let mut asm = Asm::new("f", 0);
        asm.push(Insn::Ret);
        let id = p.define(asm.finish());
        assert!(p.func(id).is_some());
        assert_eq!(p.lookup_fn("f"), Some(id));
        assert_eq!(p.lookup_fn("g"), None);
        assert_eq!(p.total_insns(), 1);
    }

    #[test]
    #[should_panic(expected = "2½-address violation")]
    fn illegal_code_is_rejected() {
        let mut p = Program::new();
        let mut asm = Asm::new("bad", 3);
        asm.push(Insn::Add {
            dst: Operand::Ind(Reg::FP, 0),
            a: Operand::Ind(Reg::FP, 1),
            b: Operand::Ind(Reg::FP, 2),
        });
        asm.push(Insn::Ret);
        p.define(asm.finish());
    }
}
