//! The execution engine.
//!
//! A fetch–execute loop over [`Insn`]s, with the frame discipline the
//! compiled code relies on: arguments at `FP+0 … FP+n-1`, temporaries
//! above them, the return value in register A, tail calls reusing the
//! current frame (§2's "parameter-passing goto").

use std::rc::Rc;

use s1lisp_interp::Value;

use crate::heap::{Heap, ObjKind};
use crate::insn::{CallTarget, Cond, Insn, Operand, Reg};
use crate::postmortem::PostMortem;
use crate::profile::ExecProfile;
use crate::program::{FuncCode, Program};
use crate::runtime;
use crate::stats::MachineStats;
use crate::word::{Tag, Word, STACK_BASE};

/// Instruction-equivalent cost charged for a runtime-system call beyond
/// the call instruction itself (entry/exit sequence plus generic type
/// dispatch — see `Insn::RtCall` handling).
pub(crate) const RT_CALL_COST: u64 = 8;

/// Base address of special-binding value slots.
pub(crate) const SPECIAL_BASE: u64 = 1 << 50;
/// Base address of global value slots.
pub(crate) const GLOBAL_BASE: u64 = 1 << 51;

/// A run-time failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// A type check failed.
    WrongType(String),
    /// A function received the wrong number of arguments.
    WrongNumberOfArguments(String),
    /// Call to an undefined function.
    UndefinedFunction(String),
    /// The data or control stack overflowed.
    StackOverflow,
    /// The heap is exhausted even after collection.
    HeapExhausted,
    /// Division by zero.
    DivisionByZero,
    /// A `throw` found no matching catch frame.
    UncaughtThrow(String),
    /// The instruction budget ran out (runaway program).
    FuelExhausted,
    /// A Lisp-level `error` call.
    LispError(String),
    /// An explicit `Trap` instruction (compiler-inserted check).
    Explicit(&'static str),
    /// A trap annotated with its fault site.  [`Machine::run`] wraps
    /// every trap that surfaces from executing code in one of these, so
    /// `Display` names the faulting function and program counter instead
    /// of the bare message.  Match on [`Trap::cause`] to see through it.
    At {
        /// Name of the function executing when the trap surfaced.
        fn_name: String,
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The underlying trap.
        cause: Box<Trap>,
    },
}

impl Trap {
    /// The underlying trap, seen through any [`Trap::At`] site
    /// annotations.
    pub fn cause(&self) -> &Trap {
        match self {
            Trap::At { cause, .. } => cause.cause(),
            t => t,
        }
    }

    /// The fault site `(function, pc)`, if this trap carries one.
    pub fn site(&self) -> Option<(&str, u32)> {
        match self {
            Trap::At { fn_name, pc, .. } => Some((fn_name, *pc)),
            _ => None,
        }
    }

    /// Annotates this trap with its fault site.
    pub fn at(self, fn_name: impl Into<String>, pc: u32) -> Trap {
        Trap::At {
            fn_name: fn_name.into(),
            pc,
            cause: Box::new(self),
        }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::WrongType(m) => write!(f, "wrong type: {m}"),
            Trap::WrongNumberOfArguments(m) => write!(f, "wrong number of arguments: {m}"),
            Trap::UndefinedFunction(m) => write!(f, "undefined function {m}"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::HeapExhausted => write!(f, "heap exhausted"),
            Trap::DivisionByZero => write!(f, "division by zero"),
            Trap::UncaughtThrow(m) => write!(f, "uncaught throw to {m}"),
            Trap::FuelExhausted => write!(f, "instruction budget exhausted"),
            Trap::LispError(m) => write!(f, "error: {m}"),
            Trap::Explicit(m) => write!(f, "trap: {m}"),
            Trap::At { fn_name, pc, cause } => write!(f, "{cause} (in {fn_name} at pc {pc})"),
        }
    }
}

impl std::error::Error for Trap {}

/// A control-stack frame.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub(crate) ret_fn: u32,
    pub(crate) ret_pc: usize,
    pub(crate) saved_fp: usize,
    saved_ev: Word,
}

/// Where execution was when a trap surfaced (tracked by the
/// fetch–execute loop for [`Trap::At`] and [`PostMortem`]).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FaultSite {
    pub(crate) fnid: u32,
    pub(crate) pc: u32,
}

/// A catch frame (§2's `catch` construct).
#[derive(Clone, Debug)]
struct CatchFrame {
    tag: Word,
    fnid: u32,
    resume: usize,
    sp: usize,
    fp: usize,
    ev: Word,
    ctrl_len: usize,
    spec_len: usize,
}

/// The S-1 machine.
pub struct Machine {
    /// The loaded program.
    pub program: Program,
    /// The register file.
    pub regs: [Word; 32],
    stack: Vec<Word>,
    pub(crate) sp: usize,
    pub(crate) fp: usize,
    /// Deep-binding stack: (symbol id, value).
    pub(crate) specials: Vec<(u32, Word)>,
    /// Global value cells: (symbol id, value).
    globals: Vec<(u32, Word)>,
    /// The heap.
    pub heap: Heap,
    pub(crate) ctrl: Vec<Frame>,
    catches: Vec<CatchFrame>,
    /// Execution counters.
    pub stats: MachineStats,
    /// Optional execution profiler (opcode histogram, per-function
    /// cycles, instruction ring).  `None` by default; attaching one is
    /// host-side only and never changes simulated behavior or counts.
    pub profile: Option<Box<ExecProfile>>,
    /// Post-mortem of the most recent trapping [`Machine::run`], if any
    /// (cleared by the next `run`).
    pub post_mortem: Option<Box<PostMortem>>,
    /// Remaining instruction budget for the current `run`.
    pub fuel: u64,
    /// Instruction budget installed at each `run`.
    pub fuel_per_run: u64,
    /// Host nanoseconds the dispatch loop of the most recent `run` took
    /// (including traps).  Host-time: zeroed for deterministic snapshots.
    pub last_run_wall_ns: u64,
    /// Instructions retired by the most recent `run` alone.  Unlike the
    /// cumulative `stats.insns`, this is a per-run delta, so it pairs
    /// with `last_run_wall_ns` to give a correct throughput even after
    /// warmup runs on the same machine.
    pub last_run_insns: u64,
    /// Lazily materialized static constants (indexed like
    /// `program.constants`).
    const_cache: Vec<Option<Word>>,
}

impl Machine {
    /// A machine with default sizes (64 Ki-word stack, 1 Mi-word heap).
    pub fn new(program: Program) -> Machine {
        Machine::with_sizes(program, 1 << 16, 1 << 20)
    }

    /// A machine with explicit stack/heap sizes in words.
    pub fn with_sizes(program: Program, stack_words: usize, heap_words: usize) -> Machine {
        Machine {
            program,
            regs: [Word::NIL; 32],
            stack: vec![Word::NIL; stack_words],
            sp: 0,
            fp: 0,
            specials: Vec::new(),
            globals: Vec::new(),
            heap: Heap::new(heap_words),
            ctrl: Vec::new(),
            catches: Vec::new(),
            stats: MachineStats::default(),
            profile: None,
            post_mortem: None,
            fuel: 0,
            fuel_per_run: 2_000_000_000,
            last_run_wall_ns: 0,
            last_run_insns: 0,
            const_cache: Vec::new(),
        }
    }

    /// Sets the global value of a special variable.
    pub fn set_global(&mut self, name: &str, value: &Value) -> Result<(), Trap> {
        let w = self.inject(value)?;
        let sym = self.program.sym_id(name);
        match self.globals.iter_mut().find(|(s, _)| *s == sym) {
            Some(slot) => slot.1 = w,
            None => self.globals.push((sym, w)),
        }
        Ok(())
    }

    /// Reads the global value of a special variable.
    pub fn global(&self, name: &str) -> Option<Result<Value, Trap>> {
        let sym = self.program.lookup_fn(name); // placeholder to silence
        let _ = sym;
        let id = self.program.symbols.iter().position(|s| s == name)? as u32;
        let w = self.globals.iter().find(|(s, _)| *s == id)?.1;
        Some(self.extract(w))
    }

    /// Calls function `name` with `args`, returning the result value.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on any run-time failure.  A trap that surfaces
    /// while executing code is wrapped in [`Trap::At`] naming the
    /// faulting function and pc, and a [`PostMortem`] is captured in
    /// [`Machine::post_mortem`].
    pub fn run(&mut self, name: &str, args: &[Value]) -> Result<Value, Trap> {
        self.post_mortem = None;
        let fnid = self
            .program
            .lookup_fn(name)
            .ok_or_else(|| Trap::UndefinedFunction(name.to_string()))?;
        // Reset transient state (heap and globals persist across runs).
        self.sp = 0;
        self.fp = 0;
        self.ctrl.clear();
        self.catches.clear();
        self.specials.clear();
        self.fuel = self.fuel_per_run;
        for v in args {
            let w = self.inject(v)?;
            self.push(w)?;
        }
        let code = self
            .program
            .func(fnid)
            .ok_or_else(|| Trap::UndefinedFunction(name.to_string()))?
            .clone();
        self.fp = self.sp - args.len();
        self.regs[Reg::RTA.0 as usize] = Word::Raw(args.len() as i64);
        self.regs[Reg::EV.0 as usize] = Word::NIL;
        if let Some(p) = self.profile.as_deref_mut() {
            p.stack_reset(fnid);
        }
        let mut fault = FaultSite { fnid, pc: 0 };
        let insns_before = self.stats.insns;
        let dispatch_start = std::time::Instant::now();
        let outcome = self.execute(fnid, code, &mut fault);
        self.last_run_wall_ns = dispatch_start.elapsed().as_nanos() as u64;
        self.last_run_insns = self.stats.insns - insns_before;
        match outcome {
            Ok(result) => self.extract(result),
            Err(trap) => {
                let fn_name = self.program.names().resolve(fault.fnid).into_owned();
                let trap = trap.at(fn_name, fault.pc);
                self.post_mortem = Some(Box::new(PostMortem::capture(self, &trap, &fault)));
                Err(trap)
            }
        }
    }

    /// Enables trap post-mortems with full forensics: attaches an
    /// [`ExecProfile`] keeping the last `ring` retired instructions (if
    /// no profile is attached yet), so a trapping [`Machine::run`]
    /// captures the instruction tail and per-function cycle attribution
    /// alongside the register and frame state.
    pub fn enable_post_mortem(&mut self, ring: usize) {
        if self.profile.is_none() {
            self.profile = Some(Box::new(ExecProfile::with_ring(ring)));
        }
    }

    /// Exports everything the machine measured into `reg`: the
    /// [`MachineStats`] counters (`sim.*`), dispatch-loop wall time and
    /// throughput (`sim.run_wall_ns`, `sim.insns_per_sec` — host-time,
    /// zeroed for deterministic snapshots), the opcode-class histogram
    /// from the attached profile (`sim.opclass.*`), and the heap's
    /// telemetry (`heap.*`).  Export once per finished run.
    /// `sim.insns_per_sec` is computed from the *last* run's instruction
    /// delta and wall time, so it stays a genuine throughput even when
    /// the machine has executed warmup runs before the measured one.
    pub fn export_metrics(&self, reg: &s1lisp_trace::metrics::MetricsRegistry) {
        self.stats.export(reg);
        reg.counter("sim.run_wall_ns").add(self.last_run_wall_ns);
        let per_sec = if self.last_run_wall_ns > 0 {
            (self.last_run_insns as u128 * 1_000_000_000 / self.last_run_wall_ns as u128) as i64
        } else {
            0
        };
        reg.gauge("sim.insns_per_sec").set(per_sec);
        if let Some(profile) = &self.profile {
            for (class, n) in profile.class_histogram() {
                reg.counter(&format!("sim.opclass.{class}")).add(n);
            }
        }
        self.heap.export_metrics(reg);
    }

    /// The folded call-stack profile (see [`ExecProfile::folded`]) with
    /// names resolved through the program's shared symbol table, or
    /// `None` when no profile is attached.
    pub fn folded_stacks(&self) -> Option<String> {
        self.profile
            .as_ref()
            .map(|p| p.folded(&self.program.names()))
    }

    /// Renders the [`MachineStats`] counter table and, when a profile
    /// is attached, the heaviest functions by attributed cycles — names
    /// resolved through the same shared symbol table the profiler and
    /// post-mortems use.
    pub fn stats_report(&self) -> String {
        let mut out = self.stats.to_string();
        if let Some(p) = &self.profile {
            let names = self.program.names();
            out.push_str("heaviest functions (attributed cycles):\n");
            for (fnid, cycles) in p.per_fn().into_iter().take(8) {
                out.push_str(&format!("  {:<24} {cycles:>12}\n", names.resolve(fnid)));
            }
        }
        out
    }

    /// The fetch–execute loop, starting at `(fnid, 0)` with an empty
    /// control stack; returns when the initial frame returns.  `fault`
    /// tracks the instruction being executed so [`Machine::run`] can
    /// localize a trap.
    fn execute(
        &mut self,
        mut fnid: u32,
        mut code: Rc<FuncCode>,
        fault: &mut FaultSite,
    ) -> Result<Word, Trap> {
        let base_ctrl = self.ctrl.len();
        let mut pc = 0usize;
        loop {
            fault.fnid = fnid;
            fault.pc = pc as u32;
            if self.fuel == 0 {
                return Err(Trap::FuelExhausted);
            }
            self.fuel -= 1;
            self.stats.insns += 1;
            let Some(insn) = code.insns.get(pc) else {
                return Err(Trap::Explicit("fell off end of function"));
            };
            let insn = insn.clone();
            if let Some(p) = self.profile.as_deref_mut() {
                p.retire(fnid, pc, insn.opcode());
            }
            pc += 1;
            match self.step(insn, &code, &mut pc)? {
                Step::Next => {}
                Step::Jump(target) => pc = code.labels[target as usize],
                Step::Call {
                    target,
                    nargs,
                    tail,
                } => {
                    let (new_fn, env) = self.resolve_callee(target)?;
                    let new_code = match self.program.func(new_fn).cloned() {
                        Some(code) => code,
                        None => {
                            // A function *value* naming a primitive (e.g.
                            // #'1+ passed around): route through the
                            // runtime as a leaf call.
                            let rt_name = self.program.names().resolve(new_fn).into_owned();
                            let args: Vec<Word> = self.stack[self.sp - nargs..self.sp].to_vec();
                            self.sp -= nargs;
                            match runtime::rt_call_owned(self, &rt_name, &args)? {
                                runtime::RtResult::Value(w) => {
                                    self.regs[Reg::A.0 as usize] = w;
                                    if tail {
                                        // Behave like Ret from here.
                                        let value = w;
                                        if self.ctrl.len() == base_ctrl {
                                            return Ok(value);
                                        }
                                        let frame = self.ctrl.pop().expect("ctrl non-empty");
                                        if let Some(p) = self.profile.as_deref_mut() {
                                            p.stack_pop();
                                        }
                                        self.sp = self.fp;
                                        self.fp = frame.saved_fp;
                                        self.regs[Reg::EV.0 as usize] = frame.saved_ev;
                                        fnid = frame.ret_fn;
                                        code = self
                                            .program
                                            .func(fnid)
                                            .cloned()
                                            .expect("returning into defined function");
                                        pc = frame.ret_pc;
                                    }
                                    continue;
                                }
                                runtime::RtResult::Throw { .. } => {
                                    return Err(Trap::UncaughtThrow(
                                        "throw from runtime value call".into(),
                                    ))
                                }
                            }
                        }
                    };
                    if tail {
                        self.stats.tail_calls += 1;
                        // Move the freshly pushed args down onto the frame
                        // base, discarding the old frame contents.
                        let args: Vec<Word> = self.stack[self.sp - nargs..self.sp].to_vec();
                        self.sp = self.fp;
                        for w in args {
                            self.push(w)?;
                        }
                    } else {
                        self.stats.calls += 1;
                        self.ctrl.push(Frame {
                            ret_fn: fnid,
                            ret_pc: pc,
                            saved_fp: self.fp,
                            saved_ev: self.regs[Reg::EV.0 as usize],
                        });
                        if self.ctrl.len() > self.stats.max_call_depth {
                            self.stats.max_call_depth = self.ctrl.len();
                        }
                        if self.ctrl.len() > 1 << 16 {
                            return Err(Trap::StackOverflow);
                        }
                        self.fp = self.sp - nargs;
                    }
                    if let Some(p) = self.profile.as_deref_mut() {
                        if tail {
                            p.stack_tail(new_fn);
                        } else {
                            p.stack_push(new_fn);
                        }
                    }
                    self.regs[Reg::RTA.0 as usize] = Word::Raw(nargs as i64);
                    self.regs[Reg::EV.0 as usize] = env;
                    fnid = new_fn;
                    code = new_code;
                    pc = 0;
                }
                Step::TailJmp { nargs, target } => {
                    self.stats.tail_calls += 1;
                    let args: Vec<Word> = self.stack[self.sp - nargs..self.sp].to_vec();
                    self.sp = self.fp;
                    for w in args {
                        self.push(w)?;
                    }
                    self.regs[Reg::RTA.0 as usize] = Word::Raw(nargs as i64);
                    pc = code.labels[target as usize];
                }
                Step::LocalRet => {
                    if self.ctrl.len() == base_ctrl {
                        return Err(Trap::Explicit("LocalRet with no local frame"));
                    }
                    let frame = self.ctrl.pop().expect("ctrl non-empty");
                    if let Some(p) = self.profile.as_deref_mut() {
                        p.stack_pop();
                    }
                    self.fp = frame.saved_fp;
                    self.regs[Reg::EV.0 as usize] = frame.saved_ev;
                    fnid = frame.ret_fn;
                    code = self
                        .program
                        .func(fnid)
                        .cloned()
                        .expect("returning into defined function");
                    pc = frame.ret_pc;
                }
                Step::Ret => {
                    let value = self.regs[Reg::A.0 as usize];
                    if self.ctrl.len() == base_ctrl {
                        return Ok(value);
                    }
                    let frame = self.ctrl.pop().expect("ctrl non-empty");
                    if let Some(p) = self.profile.as_deref_mut() {
                        p.stack_pop();
                    }
                    self.sp = self.fp;
                    self.fp = frame.saved_fp;
                    self.regs[Reg::EV.0 as usize] = frame.saved_ev;
                    fnid = frame.ret_fn;
                    code = self
                        .program
                        .func(fnid)
                        .cloned()
                        .expect("returning into defined function");
                    pc = frame.ret_pc;
                }
                Step::ThrowTo { tag, value } => {
                    let Some(pos) = self
                        .catches
                        .iter()
                        .rposition(|c| runtime::word_eql(self, c.tag, tag))
                    else {
                        let name = format!("{tag}");
                        return Err(Trap::UncaughtThrow(name));
                    };
                    let c = self.catches[pos].clone();
                    if c.ctrl_len < base_ctrl {
                        // The catch belongs to an outer host invocation.
                        return Err(Trap::UncaughtThrow(format!("{tag}")));
                    }
                    self.catches.truncate(pos);
                    self.ctrl.truncate(c.ctrl_len);
                    if let Some(p) = self.profile.as_deref_mut() {
                        p.stack_unwind(c.ctrl_len - base_ctrl + 1, c.fnid);
                    }
                    self.specials.truncate(c.spec_len);
                    self.sp = c.sp;
                    self.fp = c.fp;
                    self.regs[Reg::EV.0 as usize] = c.ev;
                    self.regs[Reg::A.0 as usize] = value;
                    fnid = c.fnid;
                    code = self
                        .program
                        .func(fnid)
                        .cloned()
                        .expect("catch in defined function");
                    pc = c.resume;
                }
            }
            if self.sp > self.stats.max_stack_words {
                self.stats.max_stack_words = self.sp;
            }
        }
    }

    fn resolve_callee(&mut self, target: Callee) -> Result<(u32, Word), Trap> {
        match target {
            Callee::Func(id) => Ok((id, Word::NIL)),
            Callee::Word(w) => match w {
                Word::Ptr(Tag::Function, id) => Ok((id as u32, Word::NIL)),
                Word::Ptr(Tag::Closure, addr) => {
                    let Word::Raw(fnid) = self.heap.read(addr + 1) else {
                        return Err(Trap::WrongType("corrupt closure".into()));
                    };
                    Ok((fnid as u32, w))
                }
                other => Err(Trap::WrongType(format!("not a function: {other}"))),
            },
        }
    }

    // ---- instruction semantics ----

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, insn: Insn, code: &Rc<FuncCode>, pc: &mut usize) -> Result<Step, Trap> {
        let _ = pc;
        let _ = code;
        match insn {
            Insn::Mov { dst, src } => {
                self.stats.moves += 1;
                let w = self.read(src)?;
                self.write(dst, w)?;
                Ok(Step::Next)
            }
            Insn::Movp { tag, dst, src } => {
                self.stats.moves += 1;
                let addr = self.addr_of(src)?;
                if tag == Tag::SingleFlonum && addr >= STACK_BASE {
                    self.stats.pdl_numbers += 1;
                }
                self.write(dst, Word::Ptr(tag, addr))?;
                Ok(Step::Next)
            }
            Insn::Add { dst, a, b } => self.int_op(dst, a, b, i64::checked_add),
            Insn::Sub { dst, a, b } => self.int_op(dst, a, b, i64::checked_sub),
            Insn::Mult { dst, a, b } => self.int_op(dst, a, b, i64::checked_mul),
            Insn::Div { dst, a, b } => {
                self.int_op(
                    dst,
                    a,
                    b,
                    |x, y| {
                        if y == 0 {
                            None
                        } else {
                            x.checked_div(y)
                        }
                    },
                )
            }
            Insn::DivFloor { dst, a, b } => {
                self.int_op(
                    dst,
                    a,
                    b,
                    |x, y| {
                        if y == 0 {
                            None
                        } else {
                            Some(x.div_euclid(y))
                        }
                    },
                )
            }
            Insn::Rem { dst, a, b } => {
                self.int_op(dst, a, b, |x, y| if y == 0 { None } else { Some(x % y) })
            }
            Insn::ModFloor { dst, a, b } => {
                self.int_op(
                    dst,
                    a,
                    b,
                    |x, y| {
                        if y == 0 {
                            None
                        } else {
                            Some(x.rem_euclid(y))
                        }
                    },
                )
            }
            Insn::Neg { dst, src } => {
                let (n, tagged) = self.read_int(src)?;
                let r = n.checked_neg().ok_or(Trap::DivisionByZero)?;
                self.write(
                    dst,
                    if tagged {
                        Word::fixnum(r)
                    } else {
                        Word::Raw(r)
                    },
                )?;
                Ok(Step::Next)
            }
            Insn::FAdd { dst, a, b } => self.flo_op(dst, a, b, |x, y| x + y),
            Insn::FSub { dst, a, b } => self.flo_op(dst, a, b, |x, y| x - y),
            Insn::FMult { dst, a, b } => self.flo_op(dst, a, b, |x, y| x * y),
            Insn::FDiv { dst, a, b } => self.flo_op(dst, a, b, |x, y| x / y),
            Insn::FMax { dst, a, b } => self.flo_op(dst, a, b, f64::max),
            Insn::FMin { dst, a, b } => self.flo_op(dst, a, b, f64::min),
            Insn::FNeg { dst, src } => self.flo_un(dst, src, |x| -x),
            Insn::FSin { dst, src } => self.flo_un(dst, src, |x| (x * std::f64::consts::TAU).sin()),
            Insn::FCos { dst, src } => self.flo_un(dst, src, |x| (x * std::f64::consts::TAU).cos()),
            Insn::FSqrt { dst, src } => self.flo_un(dst, src, f64::sqrt),
            Insn::FAtan { dst, src } => self.flo_un(dst, src, f64::atan),
            Insn::FExp { dst, src } => self.flo_un(dst, src, f64::exp),
            Insn::FLog { dst, src } => self.flo_un(dst, src, f64::ln),
            Insn::FloatIt { dst, src } => {
                let (n, _) = self.read_int(src)?;
                self.write(dst, Word::F(n as f64))?;
                Ok(Step::Next)
            }
            Insn::FixIt { dst, src } => {
                let x = self.read_float(src)?;
                self.write(dst, Word::Raw(x as i64))?;
                Ok(Step::Next)
            }
            Insn::Jmp { target } => Ok(Step::Jump(target)),
            Insn::JmpIf { cond, a, b, target } => {
                let taken = self.compare(cond, a, b)?;
                Ok(if taken {
                    Step::Jump(target)
                } else {
                    Step::Next
                })
            }
            Insn::JmpNil { src, target } => {
                let w = self.read(src)?;
                Ok(if w.is_true() {
                    Step::Next
                } else {
                    Step::Jump(target)
                })
            }
            Insn::JmpNotNil { src, target } => {
                let w = self.read(src)?;
                Ok(if w.is_true() {
                    Step::Jump(target)
                } else {
                    Step::Next
                })
            }
            Insn::JmpTag { tag, src, target } => {
                let w = self.read(src)?;
                Ok(if w.tag() == Some(tag) {
                    Step::Jump(target)
                } else {
                    Step::Next
                })
            }
            Insn::JmpEq { a, b, target } => {
                let (x, y) = (self.read(a)?, self.read(b)?);
                Ok(if runtime::word_eq(x, y) {
                    Step::Jump(target)
                } else {
                    Step::Next
                })
            }
            Insn::Dispatch { src, targets } => {
                let (n, _) = self.read_int(src)?;
                let Some(&t) = targets.get(n as usize) else {
                    return Err(Trap::WrongNumberOfArguments(format!(
                        "dispatch index {n} out of range"
                    )));
                };
                Ok(Step::Jump(t))
            }
            Insn::Push { src } => {
                let w = self.read(src)?;
                self.push(w)?;
                Ok(Step::Next)
            }
            Insn::Pop { dst } => {
                let w = self.pop()?;
                self.write(dst, w)?;
                Ok(Step::Next)
            }
            Insn::AllocSlots { n, init } => {
                for _ in 0..n {
                    self.push(init)?;
                }
                Ok(Step::Next)
            }
            Insn::FreeSlots { n } => {
                if self.sp < n as usize {
                    return Err(Trap::StackOverflow);
                }
                self.sp -= n as usize;
                Ok(Step::Next)
            }
            Insn::Call { f, nargs } => {
                let target = self.callee(f)?;
                Ok(Step::Call {
                    target,
                    nargs: nargs as usize,
                    tail: false,
                })
            }
            Insn::TailCall { f, nargs } => {
                let target = self.callee(f)?;
                Ok(Step::Call {
                    target,
                    nargs: nargs as usize,
                    tail: true,
                })
            }
            Insn::TailJmp { nargs, target } => Ok(Step::TailJmp {
                nargs: nargs as usize,
                target,
            }),
            Insn::Ret => Ok(Step::Ret),
            Insn::Trap { msg } => {
                if msg.contains("argument") {
                    Err(Trap::WrongNumberOfArguments(msg.to_string()))
                } else {
                    Err(Trap::Explicit(msg))
                }
            }
            Insn::ConsRt { dst, car, cdr } => {
                let (a, d) = (self.read(car)?, self.read(cdr)?);
                let addr = self.alloc(2, ObjKind::Cons)?;
                self.heap.write(addr, a);
                self.heap.write(addr + 1, d);
                self.write(dst, Word::Ptr(Tag::Cons, addr))?;
                Ok(Step::Next)
            }
            Insn::Car { dst, src } => {
                let w = self.read(src)?;
                let v = runtime::car(self, w)?;
                self.write(dst, v)?;
                Ok(Step::Next)
            }
            Insn::Cdr { dst, src } => {
                let w = self.read(src)?;
                let v = runtime::cdr(self, w)?;
                self.write(dst, v)?;
                Ok(Step::Next)
            }
            Insn::BoxFlo { dst, src } => {
                let x = self.read_float(src)?;
                let addr = self.alloc(1, ObjKind::Flonum)?;
                self.heap.write(addr, Word::F(x));
                self.write(dst, Word::Ptr(Tag::SingleFlonum, addr))?;
                Ok(Step::Next)
            }
            Insn::UnboxFlo { dst, src } => {
                let w = self.read(src)?;
                let x = runtime::strict_float_of(self, w)?;
                self.write(dst, Word::F(x))?;
                Ok(Step::Next)
            }
            Insn::Certify { dst, src } => {
                let w = self.read(src)?;
                let safe = if w.is_safe() {
                    self.stats.certify_safe += 1;
                    w
                } else {
                    self.stats.certify_copies += 1;
                    match w {
                        Word::Ptr(Tag::SingleFlonum, addr) => {
                            let v = self.read_mem(addr)?;
                            let heap_addr = self.alloc(1, ObjKind::Flonum)?;
                            self.heap.write(heap_addr, v);
                            Word::Ptr(Tag::SingleFlonum, heap_addr)
                        }
                        other => return Err(Trap::WrongType(format!("cannot certify {other}"))),
                    }
                };
                self.write(dst, safe)?;
                Ok(Step::Next)
            }
            Insn::MakeCell { dst, src } => {
                let w = self.read(src)?;
                let addr = self.alloc(1, ObjKind::Cell)?;
                self.heap.write(addr, w);
                self.write(dst, Word::Ptr(Tag::Cell, addr))?;
                Ok(Step::Next)
            }
            Insn::LoadCell { dst, cell } => {
                let w = self.read(cell)?;
                let Word::Ptr(Tag::Cell, addr) = w else {
                    return Err(Trap::WrongType(format!("not a cell: {w}")));
                };
                let v = self.read_mem(addr)?;
                if addr >= SPECIAL_BASE {
                    self.stats.special_cached += 1;
                }
                self.write(dst, v)?;
                Ok(Step::Next)
            }
            Insn::StoreCell { cell, src } => {
                let w = self.read(cell)?;
                let v = self.read(src)?;
                let Word::Ptr(Tag::Cell, addr) = w else {
                    return Err(Trap::WrongType(format!("not a cell: {w}")));
                };
                if addr >= SPECIAL_BASE {
                    self.stats.special_cached += 1;
                }
                self.write_mem(addr, v)?;
                Ok(Step::Next)
            }
            Insn::MakeClosure { dst, fnid, ncells } => {
                let n = ncells as usize;
                let addr = self.alloc(n + 2, ObjKind::Closure)?;
                self.heap.write(addr, Word::Raw((n + 2) as i64));
                self.heap.write(addr + 1, Word::Raw(i64::from(fnid)));
                for i in (0..n).rev() {
                    let w = self.pop()?;
                    self.heap.write(addr + 2 + i as u64, w);
                }
                self.stats.closures_made += 1;
                self.write(dst, Word::Ptr(Tag::Closure, addr))?;
                Ok(Step::Next)
            }
            Insn::LoadEnv { dst, index } => {
                let env = self.regs[Reg::EV.0 as usize];
                let Word::Ptr(Tag::Closure, addr) = env else {
                    return Err(Trap::WrongType("no closure environment".into()));
                };
                let w = self.heap.read(addr + 2 + u64::from(index));
                self.write(dst, w)?;
                Ok(Step::Next)
            }
            Insn::SpecBind { sym, src } => {
                let w = self.read(src)?;
                self.specials.push((sym, w));
                Ok(Step::Next)
            }
            Insn::SpecUnbind { n } => {
                let len = self.specials.len().saturating_sub(n as usize);
                self.specials.truncate(len);
                Ok(Step::Next)
            }
            Insn::SpecLookup { dst, sym } => {
                let cell = self.spec_search(sym)?;
                self.write(dst, cell)?;
                Ok(Step::Next)
            }
            Insn::SpecRead { dst, sym } => {
                let cell = self.spec_search(sym)?;
                let Word::Ptr(Tag::Cell, addr) = cell else {
                    unreachable!()
                };
                let v = self.read_mem(addr)?;
                self.write(dst, v)?;
                Ok(Step::Next)
            }
            Insn::SpecWrite { sym, src } => {
                let v = self.read(src)?;
                let cell = self.spec_search(sym)?;
                let Word::Ptr(Tag::Cell, addr) = cell else {
                    unreachable!()
                };
                self.write_mem(addr, v)?;
                Ok(Step::Next)
            }
            Insn::RtCall { name, nargs, dst } => {
                // A runtime routine is a subroutine of many instructions
                // on the real machine; charge an approximate open-coded
                // length (entry/exit, dispatch, per-argument type
                // checking) so instruction counts stay comparable with
                // inline code.
                self.stats.insns += RT_CALL_COST + 2 * u64::from(nargs);
                if self.profile.is_some() {
                    let fnid = self.current_fnid(code);
                    if let Some(p) = self.profile.as_deref_mut() {
                        p.attribute(fnid, RT_CALL_COST + 2 * u64::from(nargs));
                    }
                }
                let n = nargs as usize;
                let args: Vec<Word> = self.stack[self.sp - n..self.sp].to_vec();
                self.sp -= n;
                let result = runtime::rt_call(self, name, &args)?;
                match result {
                    runtime::RtResult::Value(w) => {
                        self.write(dst, w)?;
                        Ok(Step::Next)
                    }
                    runtime::RtResult::Throw { tag, value } => Ok(Step::ThrowTo { tag, value }),
                }
            }
            Insn::PushCatch { tag, target } => {
                let tag = self.read(tag)?;
                let resume = code.labels[target as usize];
                let fnid = self.current_fnid(code);
                self.catches.push(CatchFrame {
                    tag,
                    fnid,
                    resume,
                    sp: self.sp,
                    fp: self.fp,
                    ev: self.regs[Reg::EV.0 as usize],
                    ctrl_len: self.ctrl.len(),
                    spec_len: self.specials.len(),
                });
                Ok(Step::Next)
            }
            Insn::PopCatch => {
                self.catches.pop();
                Ok(Step::Next)
            }
            Insn::Throw { tag, value } => {
                let tag = self.read(tag)?;
                let value = self.read(value)?;
                Ok(Step::ThrowTo { tag, value })
            }
            Insn::LoadFunction { dst, fnid } => {
                self.write(dst, Word::Ptr(Tag::Function, u64::from(fnid)))?;
                Ok(Step::Next)
            }
            Insn::ListifyArgs { fixed } => {
                let fixed = usize::from(fixed);
                let have = self.sp - self.fp;
                let extra: Vec<Word> = if have > fixed {
                    self.stack[self.fp + fixed..self.sp].to_vec()
                } else {
                    Vec::new()
                };
                let mut list = Word::NIL;
                for &w in extra.iter().rev() {
                    let addr = self.alloc(2, ObjKind::Cons)?;
                    self.heap.write(addr, w);
                    self.heap.write(addr + 1, list);
                    list = Word::Ptr(Tag::Cons, addr);
                }
                self.sp = self.fp + fixed;
                self.push(list)?;
                Ok(Step::Next)
            }
            Insn::LoadConst { dst, idx } => {
                let i = idx as usize;
                if self.const_cache.len() <= i {
                    self.const_cache.resize(i + 1, None);
                }
                let w = match self.const_cache[i] {
                    Some(w) => w,
                    None => {
                        let v = self
                            .program
                            .constants
                            .get(i)
                            .cloned()
                            .ok_or_else(|| Trap::WrongType("bad constant index".into()))?;
                        let w = self.inject(&v)?;
                        self.const_cache[i] = Some(w);
                        w
                    }
                };
                self.write(dst, w)?;
                Ok(Step::Next)
            }
            Insn::LocalCall { target } => {
                let fnid = self.current_fnid(code);
                self.ctrl.push(Frame {
                    ret_fn: fnid,
                    ret_pc: *pc,
                    saved_fp: self.fp,
                    saved_ev: self.regs[Reg::EV.0 as usize],
                });
                if self.ctrl.len() > self.stats.max_call_depth {
                    self.stats.max_call_depth = self.ctrl.len();
                }
                if self.ctrl.len() > 1 << 16 {
                    return Err(Trap::StackOverflow);
                }
                if let Some(p) = self.profile.as_deref_mut() {
                    p.stack_push(fnid);
                }
                *pc = code.labels[target as usize];
                Ok(Step::Next)
            }
            Insn::LocalRet => Ok(Step::LocalRet),
            Insn::Apply { f, list } => {
                let fv = self.read(f)?;
                let mut cur = self.read(list)?;
                let mut n = 0usize;
                loop {
                    match cur {
                        Word::Ptr(Tag::Nil, _) => break,
                        Word::Ptr(Tag::Cons, addr) => {
                            let head = self.read_mem(addr)?;
                            self.push(head)?;
                            n += 1;
                            cur = self.read_mem(addr + 1)?;
                        }
                        other => {
                            return Err(Trap::WrongType(format!(
                                "apply: improper argument list ending in {other}"
                            )))
                        }
                    }
                }
                Ok(Step::Call {
                    target: Callee::Word(fv),
                    nargs: n,
                    tail: false,
                })
            }
        }
    }

    fn current_fnid(&mut self, code: &Rc<FuncCode>) -> u32 {
        self.program.fn_id(&code.name)
    }

    fn callee(&mut self, f: CallTarget) -> Result<Callee, Trap> {
        Ok(match f {
            CallTarget::Func(id) => Callee::Func(id),
            CallTarget::Value(op) => Callee::Word(self.read(op)?),
        })
    }

    // ---- operand access ----

    fn reg_value(&self, r: Reg) -> Word {
        match r {
            Reg::SP => Word::Raw((STACK_BASE + self.sp as u64) as i64),
            Reg::FP => Word::Raw((STACK_BASE + self.fp as u64) as i64),
            Reg::TP => Word::Raw((STACK_BASE + self.fp as u64) as i64),
            _ => self.regs[r.0 as usize],
        }
    }

    /// The memory address an `Ind`/`Idx` operand designates.
    pub(crate) fn addr_of(&self, op: Operand) -> Result<u64, Trap> {
        match op {
            Operand::Ind(base, off) => {
                let b = self.base_addr(base)?;
                Ok(b.wrapping_add_signed(i64::from(off)))
            }
            Operand::Idx {
                base,
                off,
                idx,
                shift,
            } => {
                let b = self.base_addr(base)?;
                let i = match self.reg_value(idx) {
                    Word::Raw(n) => n,
                    Word::Ptr(Tag::Fixnum, n) => n as i64,
                    other => return Err(Trap::WrongType(format!("bad index register: {other}"))),
                };
                Ok(b.wrapping_add_signed(i64::from(off))
                    .wrapping_add_signed(i << shift))
            }
            Operand::IdxMem {
                base,
                off,
                idx_base,
                idx_off,
                shift,
            } => {
                let ib = self.base_addr(idx_base)?;
                let iw = self.read_mem(ib.wrapping_add_signed(i64::from(idx_off)))?;
                let i = match iw {
                    Word::Raw(n) => n,
                    Word::Ptr(Tag::Fixnum, n) => n as i64,
                    other => return Err(Trap::WrongType(format!("bad memory index: {other}"))),
                };
                let b = self.base_addr(base)?;
                Ok(b.wrapping_add_signed(i64::from(off))
                    .wrapping_add_signed(i << shift))
            }
            _ => Err(Trap::WrongType("operand has no address".into())),
        }
    }

    fn base_addr(&self, r: Reg) -> Result<u64, Trap> {
        match r {
            Reg::SP => Ok(STACK_BASE + self.sp as u64),
            Reg::FP => Ok(STACK_BASE + self.fp as u64),
            Reg::TP => Ok(STACK_BASE + self.fp as u64),
            _ => match self.regs[r.0 as usize] {
                Word::Raw(n) => Ok(n as u64),
                Word::Ptr(t, addr) if t.is_reference() => Ok(addr),
                other => Err(Trap::WrongType(format!("bad base register: {other}"))),
            },
        }
    }

    pub(crate) fn read(&mut self, op: Operand) -> Result<Word, Trap> {
        match op {
            Operand::Reg(r) => Ok(self.reg_value(r)),
            Operand::Const(w) => Ok(w),
            _ => {
                let addr = self.addr_of(op)?;
                self.read_mem(addr)
            }
        }
    }

    pub(crate) fn write(&mut self, op: Operand, w: Word) -> Result<(), Trap> {
        match op {
            Operand::Reg(r) => {
                if matches!(r, Reg::SP | Reg::FP | Reg::TP) {
                    return Err(Trap::WrongType("cannot write stack registers".into()));
                }
                self.regs[r.0 as usize] = w;
                Ok(())
            }
            Operand::Const(_) => Err(Trap::WrongType("cannot write a constant".into())),
            _ => {
                let addr = self.addr_of(op)?;
                self.write_mem(addr, w)
            }
        }
    }

    pub(crate) fn read_mem(&self, addr: u64) -> Result<Word, Trap> {
        if addr >= GLOBAL_BASE {
            let i = (addr - GLOBAL_BASE) as usize;
            return self
                .globals
                .get(i)
                .map(|&(_, w)| w)
                .ok_or_else(|| Trap::WrongType("bad global address".into()));
        }
        if addr >= SPECIAL_BASE {
            let i = (addr - SPECIAL_BASE) as usize;
            return self
                .specials
                .get(i)
                .map(|&(_, w)| w)
                .ok_or_else(|| Trap::WrongType("bad special address".into()));
        }
        if addr >= STACK_BASE {
            let i = (addr - STACK_BASE) as usize;
            return self.stack.get(i).copied().ok_or(Trap::StackOverflow);
        }
        Ok(self.heap.read(addr))
    }

    pub(crate) fn write_mem(&mut self, addr: u64, w: Word) -> Result<(), Trap> {
        if addr >= GLOBAL_BASE {
            let i = (addr - GLOBAL_BASE) as usize;
            match self.globals.get_mut(i) {
                Some(slot) => {
                    slot.1 = w;
                    return Ok(());
                }
                None => return Err(Trap::WrongType("bad global address".into())),
            }
        }
        if addr >= SPECIAL_BASE {
            let i = (addr - SPECIAL_BASE) as usize;
            match self.specials.get_mut(i) {
                Some(slot) => {
                    slot.1 = w;
                    return Ok(());
                }
                None => return Err(Trap::WrongType("bad special address".into())),
            }
        }
        if addr >= STACK_BASE {
            let i = (addr - STACK_BASE) as usize;
            match self.stack.get_mut(i) {
                Some(slot) => {
                    *slot = w;
                    return Ok(());
                }
                None => return Err(Trap::StackOverflow),
            }
        }
        self.heap.write(addr, w);
        Ok(())
    }

    fn push(&mut self, w: Word) -> Result<(), Trap> {
        if self.sp >= self.stack.len() {
            return Err(Trap::StackOverflow);
        }
        self.stack[self.sp] = w;
        self.sp += 1;
        if self.sp > self.stats.max_stack_words {
            self.stats.max_stack_words = self.sp;
        }
        Ok(())
    }

    fn pop(&mut self) -> Result<Word, Trap> {
        if self.sp == 0 {
            return Err(Trap::StackOverflow);
        }
        self.sp -= 1;
        Ok(self.stack[self.sp])
    }

    /// The deep-binding search (§4.4): innermost binding first, then the
    /// globals; an unbound global is created on first use so `setq` at
    /// top level works.
    fn spec_search(&mut self, sym: u32) -> Result<Word, Trap> {
        self.stats.special_searches += 1;
        if let Some(i) = self.specials.iter().rposition(|&(s, _)| s == sym) {
            return Ok(Word::Ptr(Tag::Cell, SPECIAL_BASE + i as u64));
        }
        if let Some(i) = self.globals.iter().position(|&(s, _)| s == sym) {
            return Ok(Word::Ptr(Tag::Cell, GLOBAL_BASE + i as u64));
        }
        self.globals.push((sym, Word::NIL));
        Ok(Word::Ptr(
            Tag::Cell,
            GLOBAL_BASE + (self.globals.len() - 1) as u64,
        ))
    }

    // ---- arithmetic helpers ----

    fn read_int(&mut self, op: Operand) -> Result<(i64, bool), Trap> {
        match self.read(op)? {
            Word::Raw(n) => Ok((n, false)),
            Word::Ptr(Tag::Fixnum, n) => Ok((n as i64, true)),
            other => Err(Trap::WrongType(format!("not an integer: {other}"))),
        }
    }

    fn read_float(&mut self, op: Operand) -> Result<f64, Trap> {
        match self.read(op)? {
            Word::F(x) => Ok(x),
            other => Err(Trap::WrongType(format!("not a raw float: {other}"))),
        }
    }

    fn int_op(
        &mut self,
        dst: Operand,
        a: Operand,
        b: Operand,
        f: fn(i64, i64) -> Option<i64>,
    ) -> Result<Step, Trap> {
        let (x, tx) = self.read_int(a)?;
        let (y, ty) = self.read_int(b)?;
        let r = f(x, y).ok_or(Trap::DivisionByZero)?;
        let w = if tx || ty {
            Word::fixnum(r)
        } else {
            Word::Raw(r)
        };
        self.write(dst, w)?;
        Ok(Step::Next)
    }

    fn flo_op(
        &mut self,
        dst: Operand,
        a: Operand,
        b: Operand,
        f: fn(f64, f64) -> f64,
    ) -> Result<Step, Trap> {
        let x = self.read_float(a)?;
        let y = self.read_float(b)?;
        self.write(dst, Word::F(f(x, y)))?;
        Ok(Step::Next)
    }

    fn flo_un(&mut self, dst: Operand, src: Operand, f: fn(f64) -> f64) -> Result<Step, Trap> {
        let x = self.read_float(src)?;
        self.write(dst, Word::F(f(x)))?;
        Ok(Step::Next)
    }

    fn compare(&mut self, cond: Cond, a: Operand, b: Operand) -> Result<bool, Trap> {
        let x = self.read(a)?;
        let y = self.read(b)?;
        let ord = runtime::num_compare(self, x, y)?;
        Ok(match cond {
            Cond::Eq => ord == std::cmp::Ordering::Equal,
            Cond::Ne => ord != std::cmp::Ordering::Equal,
            Cond::Lt => ord == std::cmp::Ordering::Less,
            Cond::Le => ord != std::cmp::Ordering::Greater,
            Cond::Gt => ord == std::cmp::Ordering::Greater,
            Cond::Ge => ord != std::cmp::Ordering::Less,
        })
    }

    /// Heap allocation with collect-and-retry.
    pub(crate) fn alloc(&mut self, size: usize, kind: ObjKind) -> Result<u64, Trap> {
        if let Some(a) = self.heap.try_alloc(size, kind) {
            self.stats.heap = self.heap.allocs;
            return Ok(a);
        }
        let mut roots: Vec<Word> = Vec::with_capacity(self.sp + 64);
        roots.extend_from_slice(&self.regs);
        roots.extend_from_slice(&self.stack[..self.sp]);
        roots.extend(self.specials.iter().map(|&(_, w)| w));
        roots.extend(self.globals.iter().map(|&(_, w)| w));
        roots.extend(self.catches.iter().map(|c| c.tag));
        roots.extend(self.const_cache.iter().flatten().copied());
        self.heap.collect(&roots);
        let a = self.heap.try_alloc(size, kind).ok_or(Trap::HeapExhausted)?;
        self.stats.heap = self.heap.allocs;
        Ok(a)
    }

    // ---- host boundary ----

    /// Builds machine data from a host [`Value`] (allocating on the
    /// heap for structure).
    pub fn inject(&mut self, v: &Value) -> Result<Word, Trap> {
        runtime::inject(self, v)
    }

    /// Reads machine data back into a host [`Value`].
    pub fn extract(&self, w: Word) -> Result<Value, Trap> {
        runtime::extract(self, w, 0)
    }
}

/// What the execution loop should do after one instruction.
enum Step {
    Next,
    /// Return from a LocalCall (frame untouched).
    LocalRet,
    Jump(u32),
    Call {
        target: Callee,
        nargs: usize,
        tail: bool,
    },
    TailJmp {
        nargs: usize,
        target: u32,
    },
    Ret,
    ThrowTo {
        tag: Word,
        value: Word,
    },
}

/// A resolved call target.
enum Callee {
    Func(u32),
    Word(Word),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;

    fn fx(n: i64) -> Value {
        Value::Fixnum(n)
    }

    /// ((1+ x)) hand-assembled.
    #[test]
    fn simple_add_function() {
        let mut asm = Asm::new("inc1", 1);
        asm.push(Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0),
            b: Operand::fixnum(1),
        });
        asm.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        asm.push(Insn::Ret);
        let mut p = Program::new();
        p.define(asm.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("inc1", &[fx(41)]).unwrap(), fx(42));
        assert!(m.stats.insns >= 2);
    }

    /// `last_run_insns` is the per-run delta, not the cumulative
    /// counter: identical repeated runs report identical counts even
    /// though `stats.insns` keeps accumulating.
    #[test]
    fn last_run_insns_is_a_per_run_delta() {
        let mut asm = Asm::new("inc1", 1);
        asm.push(Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0),
            b: Operand::fixnum(1),
        });
        asm.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        asm.push(Insn::Ret);
        let mut p = Program::new();
        p.define(asm.finish());
        let mut m = Machine::new(p);
        m.run("inc1", &[fx(1)]).unwrap();
        let first = m.last_run_insns;
        assert!(first >= 2);
        assert_eq!(first, m.stats.insns);
        m.run("inc1", &[fx(2)]).unwrap();
        m.run("inc1", &[fx(3)]).unwrap();
        assert_eq!(m.last_run_insns, first);
        assert_eq!(m.stats.insns, 3 * first);
    }

    /// Calling between functions and returning values.
    #[test]
    fn call_and_return() {
        let mut p = Program::new();
        let double_id = p.fn_id("double");
        // double(x) = x + x
        let mut d = Asm::new("double", 1);
        d.push(Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0),
            b: Operand::arg(0),
        });
        d.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        d.push(Insn::Ret);
        p.define(d.finish());
        // quad(x) = double(double(x))
        let mut q = Asm::new("quad", 1);
        q.push(Insn::Push {
            src: Operand::arg(0),
        });
        q.push(Insn::Call {
            f: CallTarget::Func(double_id),
            nargs: 1,
        });
        q.push(Insn::Push {
            src: Operand::Reg(Reg::A),
        });
        q.push(Insn::Call {
            f: CallTarget::Func(double_id),
            nargs: 1,
        });
        q.push(Insn::Ret);
        p.define(q.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("quad", &[fx(3)]).unwrap(), fx(12));
        assert_eq!(m.stats.calls, 2);
    }

    /// A tail self-jump loop runs in constant stack (the compiled form of
    /// the paper's `exptl` claim).
    #[test]
    fn tail_jmp_loop_constant_stack() {
        // loop(n): if n == 0 return 'done'; else loop(n-1)
        let mut a = Asm::new("loopn", 1);
        let top = a.here();
        let done = a.label();
        a.push(Insn::JmpIf {
            cond: Cond::Eq,
            a: Operand::arg(0),
            b: Operand::fixnum(0),
            target: done,
        });
        a.push(Insn::Sub {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0),
            b: Operand::fixnum(1),
        });
        a.push(Insn::Push {
            src: Operand::Reg(Reg::RTA),
        });
        a.push(Insn::TailJmp {
            nargs: 1,
            target: top,
        });
        a.bind(done);
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::fixnum(999),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("loopn", &[fx(100_000)]).unwrap(), fx(999));
        assert_eq!(m.stats.max_call_depth, 0);
        assert!(m.stats.max_stack_words <= 4);
        assert_eq!(m.stats.tail_calls, 100_000);
    }

    /// Floating-point: unbox, arithmetic, box.
    #[test]
    fn float_box_unbox() {
        let mut a = Asm::new("fsq", 1);
        a.push(Insn::UnboxFlo {
            dst: Operand::Reg(Reg(9)),
            src: Operand::arg(0),
        });
        a.push(Insn::FMult {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::Reg(Reg(9)),
            b: Operand::Reg(Reg(9)),
        });
        a.push(Insn::BoxFlo {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        assert_eq!(
            m.run("fsq", &[Value::Flonum(1.5)]).unwrap(),
            Value::Flonum(2.25)
        );
        assert_eq!(m.stats.heap.flonums, 2); // argument injection + result box
    }

    /// Pdl-number path: stack allocation then certification copies.
    #[test]
    fn pdl_number_certification() {
        let mut a = Asm::new("pdl", 1);
        // temp slot at FP+1 (one past the single argument)
        a.push(Insn::AllocSlots {
            n: 1,
            init: Word::NIL,
        });
        a.push(Insn::UnboxFlo {
            dst: Operand::Reg(Reg(9)),
            src: Operand::arg(0),
        });
        a.push(Insn::FAdd {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::Reg(Reg(9)),
            b: Operand::float(1.0),
        });
        a.push(Insn::Mov {
            dst: Operand::arg(1),
            src: Operand::Reg(Reg::RTA),
        });
        // Make a pdl pointer to the stack slot.
        a.push(Insn::Movp {
            tag: Tag::SingleFlonum,
            dst: Operand::Reg(Reg(10)),
            src: Operand::arg(1),
        });
        // Returning it would be unsafe: certify first.
        a.push(Insn::Certify {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg(10)),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        assert_eq!(
            m.run("pdl", &[Value::Flonum(2.5)]).unwrap(),
            Value::Flonum(3.5)
        );
        assert_eq!(m.stats.pdl_numbers, 1);
        assert_eq!(m.stats.certify_copies, 1);
        assert_eq!(m.stats.certify_safe, 0);
    }

    /// Special variables deep-bind and unwind.
    #[test]
    fn special_binding() {
        let mut p = Program::new();
        let sym = p.sym_id("*depth*");
        // probe() = *depth*
        let mut probe = Asm::new("probe", 0);
        probe.push(Insn::SpecRead {
            dst: Operand::Reg(Reg::A),
            sym,
        });
        probe.push(Insn::Ret);
        p.define(probe.finish());
        let probe_id = p.lookup_fn("probe").unwrap();
        // outer(x): bind *depth* = x; probe(); unbind; return probe's value
        let mut outer = Asm::new("outer", 1);
        outer.push(Insn::SpecBind {
            sym,
            src: Operand::arg(0),
        });
        outer.push(Insn::Call {
            f: CallTarget::Func(probe_id),
            nargs: 0,
        });
        outer.push(Insn::SpecUnbind { n: 1 });
        outer.push(Insn::Ret);
        p.define(outer.finish());
        let mut m = Machine::new(p);
        m.set_global("*depth*", &fx(7)).unwrap();
        assert_eq!(m.run("outer", &[fx(42)]).unwrap(), fx(42));
        assert_eq!(m.run("probe", &[]).unwrap(), fx(7));
        assert!(m.stats.special_searches >= 2);
    }

    /// Catch and throw unwind the stack.
    #[test]
    fn catch_throw() {
        let mut p = Program::new();
        let tag = p.sym_id("out");
        let tag_word = Word::Ptr(Tag::Symbol, u64::from(tag));
        // thrower() = throw 'out 33
        let mut th = Asm::new("thrower", 0);
        th.push(Insn::Throw {
            tag: Operand::Const(tag_word),
            value: Operand::fixnum(33),
        });
        p.define(th.finish());
        let th_id = p.lookup_fn("thrower").unwrap();
        // catcher() = catch 'out (thrower(); 0)
        let mut c = Asm::new("catcher", 0);
        let landing = c.label();
        c.push(Insn::PushCatch {
            tag: Operand::Const(tag_word),
            target: landing,
        });
        c.push(Insn::Call {
            f: CallTarget::Func(th_id),
            nargs: 0,
        });
        c.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::fixnum(0),
        });
        c.push(Insn::PopCatch);
        c.bind(landing);
        c.push(Insn::Ret);
        p.define(c.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("catcher", &[]).unwrap(), fx(33));
        // Uncaught throw traps.
        let err = m.run("thrower", &[]).unwrap_err();
        assert!(matches!(err.cause(), Trap::UncaughtThrow(_)));
    }

    /// Fuel prevents runaway loops.
    #[test]
    fn fuel_exhaustion() {
        let mut a = Asm::new("spin", 0);
        let top = a.here();
        a.push(Insn::Jmp { target: top });
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        m.fuel_per_run = 10_000;
        let err = m.run("spin", &[]).unwrap_err();
        assert_eq!(err.cause(), &Trap::FuelExhausted);
        assert_eq!(err.site(), Some(("spin", 0)));
    }

    /// Closures capture cells and can be called through values.
    #[test]
    fn closure_create_and_call() {
        let mut p = Program::new();
        // addn-body: closure body, arg at FP+0, captured cell in env 0.
        let mut body = Asm::new("addn-body", 1);
        body.push(Insn::LoadEnv {
            dst: Operand::Reg(Reg(9)),
            index: 0,
        });
        body.push(Insn::LoadCell {
            dst: Operand::Reg(Reg(10)),
            cell: Operand::Reg(Reg(9)),
        });
        body.push(Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0),
            b: Operand::Reg(Reg(10)),
        });
        body.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        body.push(Insn::Ret);
        p.define(body.finish());
        let body_id = p.lookup_fn("addn-body").unwrap();
        // make-and-call(n, x): c = closure(addn-body, cell(n)); c(x)
        let mut mk = Asm::new("mk", 2);
        mk.push(Insn::MakeCell {
            dst: Operand::Reg(Reg(9)),
            src: Operand::arg(0),
        });
        mk.push(Insn::Push {
            src: Operand::Reg(Reg(9)),
        });
        mk.push(Insn::MakeClosure {
            dst: Operand::Reg(Reg(11)),
            fnid: body_id,
            ncells: 1,
        });
        mk.push(Insn::Push {
            src: Operand::arg(1),
        });
        mk.push(Insn::Call {
            f: CallTarget::Value(Operand::Reg(Reg(11))),
            nargs: 1,
        });
        mk.push(Insn::Ret);
        p.define(mk.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("mk", &[fx(5), fx(10)]).unwrap(), fx(15));
        assert_eq!(m.stats.closures_made, 1);
    }
}

#[cfg(test)]
mod new_insn_tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::{CallTarget, Cond};

    fn fx(n: i64) -> Value {
        Value::Fixnum(n)
    }

    #[test]
    fn listify_args_builds_rest_lists() {
        // f(a, ...rest) → rest list length.
        let mut a = Asm::new("f", 2);
        a.push(Insn::ListifyArgs { fixed: 1 });
        a.push(Insn::Push {
            src: Operand::arg(1),
        });
        a.push(Insn::RtCall {
            name: "length",
            nargs: 1,
            dst: Operand::Reg(Reg::A),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("f", &[fx(0)]).unwrap(), fx(0));
        assert_eq!(m.run("f", &[fx(0), fx(1), fx(2), fx(3)]).unwrap(), fx(3));
    }

    #[test]
    fn load_const_materializes_once() {
        let mut p = Program::new();
        let idx = p.const_id(Value::list([fx(1), fx(2)]));
        let mut a = Asm::new("k", 0);
        a.push(Insn::LoadConst {
            dst: Operand::Reg(Reg::A),
            idx,
        });
        a.push(Insn::Ret);
        p.define(a.finish());
        let mut m = Machine::new(p);
        let v1 = m.run("k", &[]).unwrap();
        let conses = m.stats.heap.conses;
        let v2 = m.run("k", &[]).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(m.stats.heap.conses, conses, "constant is cached");
    }

    #[test]
    fn local_call_shares_the_frame() {
        // f(x): block computes x+1 into A via LocalCall; f returns A+10.
        let mut a = Asm::new("f", 1);
        let block = a.label();
        a.push(Insn::LocalCall { target: block });
        a.push(Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::Reg(Reg::A),
            b: Operand::fixnum(10),
        });
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        a.push(Insn::Ret);
        a.bind(block);
        a.push(Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0), // same frame: sees f's argument
            b: Operand::fixnum(1),
        });
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        a.push(Insn::LocalRet);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("f", &[fx(5)]).unwrap(), fx(16));
    }

    #[test]
    fn apply_spreads_lists_and_calls_builtin_values() {
        // g(f, l) = apply(f, l), where f may be a builtin function value.
        let mut a = Asm::new("g", 2);
        a.push(Insn::Apply {
            f: Operand::arg(0),
            list: Operand::arg(1),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        let plus = p.fn_id("+");
        p.define(a.finish());
        let mut m = Machine::new(p);
        let f = Word::Ptr(Tag::Function, u64::from(plus));
        let fval = m.extract(f).unwrap();
        let l = Value::list([fx(1), fx(2), fx(3)]);
        assert_eq!(m.run("g", &[fval, l]).unwrap(), fx(6));
    }

    #[test]
    fn dispatch_out_of_range_traps() {
        let mut a = Asm::new("d", 1);
        let only = a.label();
        a.push(Insn::Dispatch {
            src: Operand::arg(0),
            targets: vec![only],
        });
        a.bind(only);
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::fixnum(7),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("d", &[fx(0)]).unwrap(), fx(7));
        let err = m.run("d", &[fx(3)]).unwrap_err();
        assert!(matches!(err.cause(), Trap::WrongNumberOfArguments(_)));
    }

    #[test]
    fn spec_write_updates_innermost_binding() {
        let mut p = Program::new();
        let sym = p.sym_id("*v*");
        let mut a = Asm::new("f", 1);
        a.push(Insn::SpecBind {
            sym,
            src: Operand::arg(0),
        });
        a.push(Insn::SpecWrite {
            sym,
            src: Operand::fixnum(99),
        });
        a.push(Insn::SpecRead {
            dst: Operand::Reg(Reg::A),
            sym,
        });
        a.push(Insn::SpecUnbind { n: 1 });
        a.push(Insn::Ret);
        p.define(a.finish());
        let mut m = Machine::new(p);
        m.set_global("*v*", &fx(1)).unwrap();
        assert_eq!(m.run("f", &[fx(5)]).unwrap(), fx(99));
        // The global is untouched: the write hit the binding.
        assert_eq!(m.global("*v*").unwrap().unwrap(), fx(1));
    }

    #[test]
    fn idx_and_idxmem_address_heap_blocks() {
        let mut a = Asm::new("f", 2); // args: index, slot-index
                                      // R16 = base (set by the test); read base[idx] via register index
                                      // and base[mem[fp+1]] via memory index; sum them.
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg(9)),
            src: Operand::arg(0),
        });
        a.push(Insn::FAdd {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::Idx {
                base: Reg(16),
                off: 0,
                idx: Reg(9),
                shift: 0,
            },
            b: Operand::IdxMem {
                base: Reg(16),
                off: 0,
                idx_base: Reg::FP,
                idx_off: 1,
                shift: 0,
            },
        });
        a.push(Insn::BoxFlo {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        let base = m.heap.try_alloc(4, crate::heap::ObjKind::Block).unwrap();
        for i in 0..4 {
            m.heap.write(base + i, Word::F(10.0 * (i as f64 + 1.0)));
        }
        m.regs[16] = Word::Raw(base as i64);
        // base[1] + base[3] = 20 + 40.
        let v = m.run("f", &[fx(1), fx(3)]).unwrap();
        assert_eq!(v, Value::Flonum(60.0));
    }

    #[test]
    fn tail_call_reuses_frame_across_functions() {
        let mut p = Program::new();
        let g_id = p.fn_id("g");
        // f(x): tail-call g(x+1).
        let mut f = Asm::new("f", 1);
        f.push(Insn::Add {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0),
            b: Operand::fixnum(1),
        });
        f.push(Insn::Push {
            src: Operand::Reg(Reg::RTA),
        });
        f.push(Insn::TailCall {
            f: CallTarget::Func(g_id),
            nargs: 1,
        });
        p.define(f.finish());
        // g(x): x * 2.
        let mut g = Asm::new("g", 1);
        g.push(Insn::Mult {
            dst: Operand::Reg(Reg::RTA),
            a: Operand::arg(0),
            b: Operand::fixnum(2),
        });
        g.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg::RTA),
        });
        g.push(Insn::Ret);
        p.define(g.finish());
        let mut m = Machine::new(p);
        assert_eq!(m.run("f", &[fx(20)]).unwrap(), fx(42));
        assert_eq!(m.stats.max_call_depth, 0);
        assert_eq!(m.stats.tail_calls, 1);
        // Condition codes: exercise every comparison.
        for (cond, a, b, expect) in [
            (Cond::Lt, 1, 2, true),
            (Cond::Le, 2, 2, true),
            (Cond::Gt, 2, 1, true),
            (Cond::Ge, 1, 2, false),
            (Cond::Ne, 1, 1, false),
            (Cond::Eq, 3, 3, true),
        ] {
            let mut t = Asm::new("c", 2);
            let yes = t.label();
            t.push(Insn::JmpIf {
                cond,
                a: Operand::arg(0),
                b: Operand::arg(1),
                target: yes,
            });
            t.push(Insn::Mov {
                dst: Operand::Reg(Reg::A),
                src: Operand::nil(),
            });
            t.push(Insn::Ret);
            t.bind(yes);
            t.push(Insn::Mov {
                dst: Operand::Reg(Reg::A),
                src: Operand::Const(Word::T),
            });
            t.push(Insn::Ret);
            let mut p = Program::new();
            p.define(t.finish());
            let mut m = Machine::new(p);
            let v = m.run("c", &[fx(a), fx(b)]).unwrap();
            assert_eq!(v.is_true(), expect, "{cond:?} {a} {b}");
        }
    }
}

#[cfg(test)]
mod limit_tests {
    use super::*;
    use crate::asm::Asm;

    #[test]
    fn data_stack_overflow_is_a_clean_trap() {
        // Push forever on a tiny stack.
        let mut a = Asm::new("pusher", 0);
        let top = a.here();
        a.push(Insn::Push {
            src: Operand::fixnum(1),
        });
        a.push(Insn::Jmp { target: top });
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::with_sizes(p, 64, 1 << 12);
        let err = m.run("pusher", &[]).unwrap_err();
        assert_eq!(err.cause(), &Trap::StackOverflow);
    }

    #[test]
    fn moves_are_counted_separately() {
        let mut a = Asm::new("mover", 0);
        for _ in 0..5 {
            a.push(Insn::Mov {
                dst: Operand::Reg(Reg(9)),
                src: Operand::fixnum(1),
            });
        }
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg::A),
            src: Operand::Reg(Reg(9)),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        m.run("mover", &[]).unwrap();
        assert_eq!(m.stats.moves, 6);
        assert_eq!(m.stats.insns, 7);
    }

    #[test]
    fn writes_to_stack_registers_trap() {
        let mut a = Asm::new("bad", 0);
        a.push(Insn::Mov {
            dst: Operand::Reg(Reg::SP),
            src: Operand::fixnum(0),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        let mut m = Machine::new(p);
        let err = m.run("bad", &[]).unwrap_err();
        assert!(matches!(err.cause(), Trap::WrongType(_)));
    }
}
