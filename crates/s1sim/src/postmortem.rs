//! Trap post-mortems: a forensic snapshot of the machine at the moment
//! a [`Trap`](crate::Trap) surfaced from [`Machine::run`](crate::Machine::run).
//!
//! The paper's compiler explains itself while *compiling* (§7's
//! transcript); this module makes the *machine* explain itself when it
//! fails.  A [`PostMortem`] carries the fault site, the last retired
//! instructions (from the [`ExecProfile`](crate::ExecProfile) ring
//! buffer, when one is attached), the register file highlights
//! (A/RTA/RTB/EV plus live GP registers), a control-stack summary, and
//! the per-function cycle attribution accumulated up to the fault.
//!
//! Capture is entirely host-side: it reads machine state after the trap
//! and never influences execution, so post-mortems are bit-identical
//! across identical runs (pinned by test).  `Display` renders a
//! human-readable report; [`PostMortem::to_json`] a stable
//! machine-readable form included in `report --json`.

use std::fmt;

use s1lisp_trace::json::Json;

use crate::insn::Reg;
use crate::machine::{FaultSite, Machine, Trap};
use crate::word::Word;

/// One retired instruction with its function resolved to a name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetiredAt {
    /// Function name.
    pub function: String,
    /// Program counter within the function.
    pub pc: u32,
    /// Instruction mnemonic.
    pub opcode: &'static str,
}

/// One pending control-stack frame (innermost first in
/// [`PostMortem::frames`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameAt {
    /// Function the frame will return into.
    pub function: String,
    /// Return program counter within that function.
    pub ret_pc: u32,
}

/// The machine's story of one trapping run.
#[derive(Clone, Debug)]
pub struct PostMortem {
    /// The trap, rendered (site-annotated) as by `Display`.
    pub trap: String,
    /// Name of the faulting function.
    pub function: String,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// Instructions retired before the fault (`MachineStats::insns`).
    pub insns: u64,
    /// Control-stack depth at the fault.
    pub call_depth: usize,
    /// Data-stack pointer / frame pointer at the fault.
    pub sp: usize,
    /// Frame pointer at the fault.
    pub fp: usize,
    /// Special (deep) bindings live at the fault.
    pub special_bindings: usize,
    /// Named registers (A, RTA, RTB, EV) and any live general-purpose
    /// registers, rendered.
    pub registers: Vec<(String, String)>,
    /// Pending frames, innermost first.
    pub frames: Vec<FrameAt>,
    /// The last retired instructions, oldest first.  Empty unless an
    /// [`ExecProfile`](crate::ExecProfile) with a ring buffer was
    /// attached (see [`Machine::enable_post_mortem`](crate::Machine::enable_post_mortem)).
    pub last_retired: Vec<RetiredAt>,
    /// Cycles attributed per function up to the fault, heaviest first.
    /// Empty unless a profile was attached.
    pub per_fn_cycles: Vec<(String, u64)>,
}

/// Resolve through the program's shared symbol table — the same
/// resolver profiles and trap annotations use.
fn fn_name(m: &Machine, fnid: u32) -> String {
    m.program.names().resolve(fnid).into_owned()
}

impl PostMortem {
    pub(crate) fn capture(m: &Machine, trap: &Trap, fault: &FaultSite) -> PostMortem {
        let mut registers: Vec<(String, String)> = Vec::new();
        for (label, reg) in [
            ("A", Reg::A),
            ("RTA", Reg::RTA),
            ("RTB", Reg::RTB),
            ("EV", Reg::EV),
        ] {
            registers.push((label.to_string(), m.regs[reg.0 as usize].to_string()));
        }
        for r in Reg::FIRST_GP..32 {
            let w = m.regs[r as usize];
            if w != Word::NIL {
                registers.push((format!("R{r}"), w.to_string()));
            }
        }
        let frames = m
            .ctrl
            .iter()
            .rev()
            .map(|f| FrameAt {
                function: fn_name(m, f.ret_fn),
                ret_pc: f.ret_pc as u32,
            })
            .collect();
        let (last_retired, per_fn_cycles) = match m.profile.as_deref() {
            Some(p) => (
                p.ring()
                    .into_iter()
                    .map(|r| RetiredAt {
                        function: fn_name(m, r.fnid),
                        pc: r.pc,
                        opcode: r.opcode,
                    })
                    .collect(),
                p.per_fn()
                    .into_iter()
                    .map(|(fnid, cycles)| (fn_name(m, fnid), cycles))
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        PostMortem {
            trap: trap.to_string(),
            function: fn_name(m, fault.fnid),
            pc: fault.pc,
            insns: m.stats.insns,
            call_depth: m.ctrl.len(),
            sp: m.sp,
            fp: m.fp,
            special_bindings: m.specials.len(),
            registers,
            frames,
            last_retired,
            per_fn_cycles,
        }
    }

    /// A stable machine-readable form (fixed field set; see the golden
    /// schema test in `crates/bench`).
    pub fn to_json(&self) -> Json {
        let obj = |fields: Vec<(&str, Json)>| {
            Json::Obj(
                fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        obj(vec![
            ("trap", Json::str(&self.trap)),
            ("function", Json::str(&self.function)),
            ("pc", Json::uint(u64::from(self.pc))),
            ("insns", Json::uint(self.insns)),
            ("call_depth", Json::uint(self.call_depth as u64)),
            ("sp", Json::uint(self.sp as u64)),
            ("fp", Json::uint(self.fp as u64)),
            ("special_bindings", Json::uint(self.special_bindings as u64)),
            (
                "registers",
                Json::Map(
                    self.registers
                        .iter()
                        .map(|(r, w)| (r.clone(), Json::str(w)))
                        .collect(),
                ),
            ),
            (
                "frames",
                Json::Arr(
                    self.frames
                        .iter()
                        .map(|f| {
                            obj(vec![
                                ("function", Json::str(&f.function)),
                                ("ret_pc", Json::uint(u64::from(f.ret_pc))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "last_retired",
                Json::Arr(
                    self.last_retired
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("function", Json::str(&r.function)),
                                ("pc", Json::uint(u64::from(r.pc))),
                                ("opcode", Json::str(r.opcode)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "per_function_cycles",
                Json::Arr(
                    self.per_fn_cycles
                        .iter()
                        .map(|(f, c)| {
                            obj(vec![("function", Json::str(f)), ("cycles", Json::uint(*c))])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for PostMortem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "==== trap post-mortem ====")?;
        writeln!(f, "trap:        {}", self.trap)?;
        writeln!(f, "at:          {} pc {}", self.function, self.pc)?;
        writeln!(
            f,
            "state:       {} insns retired, call depth {}, sp {}, fp {}, {} special bindings",
            self.insns, self.call_depth, self.sp, self.fp, self.special_bindings
        )?;
        writeln!(f, "-- registers --")?;
        for (r, w) in &self.registers {
            writeln!(f, "  {r:<4} {w}")?;
        }
        if !self.frames.is_empty() {
            writeln!(f, "-- pending frames (innermost first) --")?;
            for fr in &self.frames {
                writeln!(f, "  return into {} at pc {}", fr.function, fr.ret_pc)?;
            }
        }
        if self.last_retired.is_empty() {
            writeln!(
                f,
                "-- no instruction ring (attach ExecProfile::with_ring or enable_post_mortem) --"
            )?;
        } else {
            writeln!(
                f,
                "-- last {} retired instructions (oldest first) --",
                self.last_retired.len()
            )?;
            for r in &self.last_retired {
                writeln!(f, "  {:<18} pc {:<5} {}", r.function, r.pc, r.opcode)?;
            }
        }
        if !self.per_fn_cycles.is_empty() {
            writeln!(f, "-- cycles per function up to the fault --")?;
            for (name, cycles) in &self.per_fn_cycles {
                writeln!(f, "  {name:<18} {cycles:>10}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::insn::{Insn, Operand};
    use crate::program::Program;
    use s1lisp_interp::Value;

    fn faulting_machine() -> Machine {
        // f(x) = car(x): traps on a fixnum argument.
        let mut a = Asm::new("f", 1);
        a.push(Insn::Car {
            dst: Operand::Reg(Reg::A),
            src: Operand::arg(0),
        });
        a.push(Insn::Ret);
        let mut p = Program::new();
        p.define(a.finish());
        Machine::new(p)
    }

    #[test]
    fn trapping_run_captures_a_post_mortem() {
        let mut m = faulting_machine();
        m.enable_post_mortem(16);
        let err = m.run("f", &[Value::Fixnum(5)]).unwrap_err();
        assert_eq!(err.site(), Some(("f", 0)));
        assert!(matches!(err.cause(), Trap::WrongType(_)));
        let pm = m.post_mortem.as_ref().expect("post-mortem captured");
        assert_eq!(pm.function, "f");
        assert_eq!(pm.pc, 0);
        assert_eq!(pm.last_retired.len(), 1);
        assert_eq!(pm.last_retired[0].opcode, "CAR");
        assert!(pm.trap.contains("in f at pc 0"));
        assert!(!pm.per_fn_cycles.is_empty());
        // Rendered and JSON forms agree on the fault site.
        let text = pm.to_string();
        assert!(text.contains("trap post-mortem"), "{text}");
        assert!(text.contains("CAR"), "{text}");
        let json = pm.to_json().to_string();
        s1lisp_trace::json::parse(&json).unwrap();
        assert!(json.contains("\"opcode\":\"CAR\""), "{json}");
    }

    #[test]
    fn successful_run_clears_the_post_mortem() {
        let mut m = faulting_machine();
        m.enable_post_mortem(16);
        m.run("f", &[Value::Fixnum(5)]).unwrap_err();
        assert!(m.post_mortem.is_some());
        let cons = Value::list([Value::Fixnum(1)]);
        m.run("f", &[cons]).unwrap();
        assert!(m.post_mortem.is_none());
    }

    #[test]
    fn post_mortem_without_profile_has_no_ring() {
        let mut m = faulting_machine();
        m.run("f", &[Value::Fixnum(5)]).unwrap_err();
        let pm = m.post_mortem.as_ref().unwrap();
        assert!(pm.last_retired.is_empty());
        assert!(pm.per_fn_cycles.is_empty());
        assert!(pm.to_string().contains("no instruction ring"));
    }
}
