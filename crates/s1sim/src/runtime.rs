//! The Lisp run-time system: primitive operations that are too large to
//! compile in line, operating directly on machine words and the tagged
//! heap, plus the host boundary (injecting/extracting [`Value`]s).
//!
//! These routines are what the compiled code reaches through
//! [`Insn::RtCall`](crate::Insn::RtCall) — the moral equivalent of the
//! `%CALL (REF SQ …)` runtime entries visible in the paper's Table 4.

use s1lisp_interp::Value;

use crate::heap::ObjKind;
use crate::machine::{Machine, Trap};
use crate::word::{Tag, Word};

/// Result of a runtime routine: a value, or a non-local throw to
/// propagate.
pub(crate) enum RtResult {
    /// Normal completion.
    Value(Word),
    /// A `throw` initiated inside the runtime.
    Throw {
        /// Tag word.
        tag: Word,
        /// Thrown value.
        value: Word,
    },
}

fn wrong(msg: impl Into<String>) -> Trap {
    Trap::WrongType(msg.into())
}

// ---- small word predicates shared with the machine ----

/// `eq`: word identity.  Boxed flonums are `eq` only when they are the
/// same box (the paper: "the operation eq is not guaranteed to work on
/// numbers").
pub(crate) fn word_eq(a: Word, b: Word) -> bool {
    match (a, b) {
        (Word::Raw(x), Word::Raw(y)) => x == y,
        (Word::F(x), Word::F(y)) => x.to_bits() == y.to_bits(),
        (Word::Ptr(ta, xa), Word::Ptr(tb, xb)) => ta == tb && xa == xb,
        _ => false,
    }
}

/// `eql`: identity, with numbers compared by value and type ("another
/// predicate, eql, does 'work' … because it compares addresses only for
/// non-numeric objects, and compares values for numeric objects").
pub(crate) fn word_eql(m: &Machine, a: Word, b: Word) -> bool {
    match (a, b) {
        (Word::Ptr(Tag::SingleFlonum, _), Word::Ptr(Tag::SingleFlonum, _)) => {
            match (float_of(m, a), float_of(m, b)) {
                (Ok(x), Ok(y)) => x == y,
                _ => false,
            }
        }
        _ => word_eq(a, b),
    }
}

/// Structural `equal`.
fn word_equal(m: &Machine, a: Word, b: Word, depth: usize) -> Result<bool, Trap> {
    if depth > 10_000 {
        return Err(wrong("equal: structure too deep"));
    }
    match (a, b) {
        (Word::Ptr(Tag::Cons, xa), Word::Ptr(Tag::Cons, xb)) => {
            if xa == xb {
                return Ok(true);
            }
            Ok(word_equal(m, m.read_mem(xa)?, m.read_mem(xb)?, depth + 1)?
                && word_equal(m, m.read_mem(xa + 1)?, m.read_mem(xb + 1)?, depth + 1)?)
        }
        _ => Ok(word_eql(m, a, b)),
    }
}

/// A number extracted from a word.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Num {
    /// Integer.
    Int(i64),
    /// Float.
    Flo(f64),
}

impl Num {
    fn as_f64(self) -> f64 {
        match self {
            Num::Int(n) => n as f64,
            Num::Flo(x) => x,
        }
    }
}

/// Reads a number from a pointer-format (or raw) word.
pub(crate) fn num_of(m: &Machine, w: Word) -> Result<Num, Trap> {
    match w {
        Word::Raw(n) => Ok(Num::Int(n)),
        Word::F(x) => Ok(Num::Flo(x)),
        Word::Ptr(Tag::Fixnum, n) => Ok(Num::Int(n as i64)),
        Word::Ptr(Tag::SingleFlonum, addr) => match m.read_mem(addr)? {
            Word::F(x) => Ok(Num::Flo(x)),
            other => Err(wrong(format!("corrupt flonum object: {other}"))),
        },
        other => Err(wrong(format!("not a number: {other}"))),
    }
}

/// Reads a float, dereferencing a flonum pointer and converting raw
/// integers/fixnums (generic call sites).
pub(crate) fn float_of(m: &Machine, w: Word) -> Result<f64, Trap> {
    match num_of(m, w)? {
        Num::Flo(x) => Ok(x),
        Num::Int(n) => Ok(n as f64),
    }
}

/// Strict flonum dereference for `UnboxFlo`: the `$f` operators perform
/// "a run-time data-type check" (§6.2) and reject fixnums, matching the
/// reference interpreter.
pub(crate) fn strict_float_of(m: &Machine, w: Word) -> Result<f64, Trap> {
    match w {
        Word::F(x) => Ok(x),
        Word::Ptr(Tag::SingleFlonum, _) => float_of(m, w),
        other => Err(wrong(format!("not a flonum: {other}"))),
    }
}

/// Numeric comparison for `JmpIf`.
pub(crate) fn num_compare(m: &Machine, a: Word, b: Word) -> Result<std::cmp::Ordering, Trap> {
    let (x, y) = (num_of(m, a)?, num_of(m, b)?);
    match (x, y) {
        (Num::Int(p), Num::Int(q)) => Ok(p.cmp(&q)),
        _ => x
            .as_f64()
            .partial_cmp(&y.as_f64())
            .ok_or_else(|| wrong("comparison with NaN")),
    }
}

/// `car` (nil yields nil).
pub(crate) fn car(m: &Machine, w: Word) -> Result<Word, Trap> {
    match w {
        Word::Ptr(Tag::Nil, _) => Ok(Word::NIL),
        Word::Ptr(Tag::Cons, addr) => m.read_mem(addr),
        other => Err(wrong(format!("car: not a list: {other}"))),
    }
}

/// `cdr` (nil yields nil).
pub(crate) fn cdr(m: &Machine, w: Word) -> Result<Word, Trap> {
    match w {
        Word::Ptr(Tag::Nil, _) => Ok(Word::NIL),
        Word::Ptr(Tag::Cons, addr) => m.read_mem(addr + 1),
        other => Err(wrong(format!("cdr: not a list: {other}"))),
    }
}

fn cons(m: &mut Machine, car: Word, cdr: Word) -> Result<Word, Trap> {
    let addr = m.alloc(2, ObjKind::Cons)?;
    m.heap.write(addr, car);
    m.heap.write(addr + 1, cdr);
    Ok(Word::Ptr(Tag::Cons, addr))
}

fn make_num(m: &mut Machine, n: Num) -> Result<Word, Trap> {
    match n {
        Num::Int(v) => Ok(Word::fixnum(v)),
        Num::Flo(x) => {
            let addr = m.alloc(1, ObjKind::Flonum)?;
            m.heap.write(addr, Word::F(x));
            Ok(Word::Ptr(Tag::SingleFlonum, addr))
        }
    }
}

fn boolean(b: bool) -> Word {
    if b {
        Word::T
    } else {
        Word::NIL
    }
}

fn list_words(m: &Machine, mut w: Word, who: &str) -> Result<Vec<Word>, Trap> {
    let mut out = Vec::new();
    loop {
        match w {
            Word::Ptr(Tag::Nil, _) => return Ok(out),
            Word::Ptr(Tag::Cons, addr) => {
                out.push(m.read_mem(addr)?);
                w = m.read_mem(addr + 1)?;
                if out.len() > 10_000_000 {
                    return Err(wrong(format!("{who}: list too long or circular")));
                }
            }
            other => return Err(wrong(format!("{who}: improper list ending in {other}"))),
        }
    }
}

fn from_words(m: &mut Machine, words: &[Word], tail: Word) -> Result<Word, Trap> {
    let mut out = tail;
    for &w in words.iter().rev() {
        out = cons(m, w, out)?;
    }
    Ok(out)
}

fn fix_of(m: &Machine, w: Word, who: &str) -> Result<i64, Trap> {
    match num_of(m, w)? {
        Num::Int(n) => Ok(n),
        Num::Flo(_) => Err(wrong(format!("{who}: not a fixnum"))),
    }
}

fn arity(args: &[Word], n: usize, who: &str) -> Result<(), Trap> {
    if args.len() == n {
        Ok(())
    } else {
        Err(Trap::WrongNumberOfArguments(format!(
            "{who}: wants {n}, got {}",
            args.len()
        )))
    }
}

fn fold_num(
    m: &mut Machine,
    args: &[Word],
    who: &str,
    unit: Option<i64>,
    fi: fn(i64, i64) -> Option<i64>,
    ff: fn(f64, f64) -> f64,
) -> Result<Word, Trap> {
    if args.is_empty() {
        return match unit {
            Some(u) => Ok(Word::fixnum(u)),
            None => Err(Trap::WrongNumberOfArguments(format!(
                "{who}: wants at least 1 argument"
            ))),
        };
    }
    let mut acc = num_of(m, args[0])?;
    if args.len() == 1 && unit.is_some() {
        return make_num(m, acc);
    }
    for &w in &args[1..] {
        let y = num_of(m, w)?;
        acc = match (acc, y) {
            (Num::Int(a), Num::Int(b)) => {
                Num::Int(fi(a, b).ok_or_else(|| wrong(format!("{who}: fixnum overflow")))?)
            }
            _ => Num::Flo(ff(acc.as_f64(), y.as_f64())),
        };
    }
    make_num(m, acc)
}

fn compare_chain(
    m: &Machine,
    args: &[Word],
    who: &str,
    ok: fn(std::cmp::Ordering) -> bool,
) -> Result<Word, Trap> {
    if args.len() < 2 {
        return Err(Trap::WrongNumberOfArguments(format!(
            "{who}: wants at least 2 arguments"
        )));
    }
    for pair in args.windows(2) {
        if !ok(num_compare(m, pair[0], pair[1])?) {
            return Ok(Word::NIL);
        }
    }
    Ok(Word::T)
}

/// Dispatches a runtime routine by (possibly owned) name, trapping with
/// `UndefinedFunction` when the name is not a primitive — used when a
/// global function *value* turns out to be a builtin.
pub(crate) fn rt_call_owned(m: &mut Machine, name: &str, args: &[Word]) -> Result<RtResult, Trap> {
    rt_call(m, name, args)
}

/// Dispatches a runtime routine by name.
#[allow(clippy::too_many_lines)]
pub(crate) fn rt_call(m: &mut Machine, name: &str, args: &[Word]) -> Result<RtResult, Trap> {
    use std::cmp::Ordering::{Equal, Greater, Less};
    let v = match name {
        "+" => fold_num(m, args, "+", Some(0), i64::checked_add, |a, b| a + b)?,
        "*" => fold_num(m, args, "*", Some(1), i64::checked_mul, |a, b| a * b)?,
        "-" => {
            if args.len() == 1 {
                let n = num_of(m, args[0])?;
                let r = match n {
                    Num::Int(v) => Num::Int(v.checked_neg().ok_or_else(|| wrong("-: overflow"))?),
                    Num::Flo(x) => Num::Flo(-x),
                };
                make_num(m, r)?
            } else {
                fold_num(m, args, "-", None, i64::checked_sub, |a, b| a - b)?
            }
        }
        "/" => {
            if args
                .iter()
                .skip(1)
                .any(|&w| matches!(num_of(m, w), Ok(Num::Int(0))))
                && args
                    .iter()
                    .all(|&w| matches!(num_of(m, w), Ok(Num::Int(_))))
            {
                return Err(Trap::DivisionByZero);
            }
            if args.len() == 1 {
                let x = num_of(m, args[0])?.as_f64();
                make_num(m, Num::Flo(1.0 / x))?
            } else {
                fold_num(m, args, "/", None, i64::checked_div, |a, b| a / b)?
            }
        }
        "1+" | "1-" => {
            arity(args, 1, name)?;
            let delta = if name == "1+" { 1 } else { -1 };
            let r = match num_of(m, args[0])? {
                Num::Int(v) => Num::Int(
                    v.checked_add(delta)
                        .ok_or_else(|| wrong(format!("{name}: overflow")))?,
                ),
                Num::Flo(x) => Num::Flo(x + delta as f64),
            };
            make_num(m, r)?
        }
        "abs" => {
            arity(args, 1, "abs")?;
            let r = match num_of(m, args[0])? {
                Num::Int(v) => Num::Int(v.abs()),
                Num::Flo(x) => Num::Flo(x.abs()),
            };
            make_num(m, r)?
        }
        "min" => fold_num(m, args, "min", None, |a, b| Some(a.min(b)), f64::min)?,
        "max" => fold_num(m, args, "max", None, |a, b| Some(a.max(b)), f64::max)?,
        "floor" | "ceiling" | "truncate" | "round" => {
            let (q, who) = (name, name);
            let r = match args {
                [x] => match num_of(m, *x)? {
                    Num::Int(n) => n,
                    Num::Flo(f) => match q {
                        "floor" => f.floor() as i64,
                        "ceiling" => f.ceil() as i64,
                        "truncate" => f.trunc() as i64,
                        _ => f.round_ties_even() as i64,
                    },
                },
                [a, b] => {
                    let x = num_of(m, *a)?;
                    let y = num_of(m, *b)?;
                    match (x, y) {
                        (Num::Int(p), Num::Int(q2)) => {
                            if q2 == 0 {
                                return Err(Trap::DivisionByZero);
                            }
                            match q {
                                "floor" => p.div_euclid(q2),
                                "ceiling" => p.div_euclid(q2) + i64::from(p.rem_euclid(q2) != 0),
                                "truncate" => p / q2,
                                _ => {
                                    let f = p as f64 / q2 as f64;
                                    f.round_ties_even() as i64
                                }
                            }
                        }
                        _ => {
                            let f = x.as_f64() / y.as_f64();
                            match q {
                                "floor" => f.floor() as i64,
                                "ceiling" => f.ceil() as i64,
                                "truncate" => f.trunc() as i64,
                                _ => f.round_ties_even() as i64,
                            }
                        }
                    }
                }
                _ => {
                    return Err(Trap::WrongNumberOfArguments(format!(
                        "{who}: wants 1 or 2 arguments"
                    )))
                }
            };
            Word::fixnum(r)
        }
        "mod" | "rem" => {
            arity(args, 2, name)?;
            let x = num_of(m, args[0])?;
            let y = num_of(m, args[1])?;
            let r = match (x, y) {
                (Num::Int(a), Num::Int(b)) => {
                    if b == 0 {
                        return Err(Trap::DivisionByZero);
                    }
                    Num::Int(if name == "mod" {
                        a.rem_euclid(b)
                    } else {
                        a % b
                    })
                }
                _ => {
                    let (a, b) = (x.as_f64(), y.as_f64());
                    Num::Flo(if name == "mod" {
                        a.rem_euclid(b)
                    } else {
                        a % b
                    })
                }
            };
            make_num(m, r)?
        }
        "expt" => {
            arity(args, 2, "expt")?;
            let b = num_of(m, args[0])?;
            let e = num_of(m, args[1])?;
            let r = match (b, e) {
                (Num::Int(b), Num::Int(e)) if e >= 0 => {
                    let e = u32::try_from(e).map_err(|_| wrong("expt: exponent too large"))?;
                    Num::Int(b.checked_pow(e).ok_or_else(|| wrong("expt: overflow"))?)
                }
                _ => Num::Flo(b.as_f64().powf(e.as_f64())),
            };
            make_num(m, r)?
        }
        "=" => compare_chain(m, args, "=", |o| o == Equal)?,
        "/=" => compare_chain(m, args, "/=", |o| o != Equal)?,
        "<" => compare_chain(m, args, "<", |o| o == Less)?,
        ">" => compare_chain(m, args, ">", |o| o == Greater)?,
        "<=" => compare_chain(m, args, "<=", |o| o != Greater)?,
        ">=" => compare_chain(m, args, ">=", |o| o != Less)?,
        "zerop" | "plusp" | "minusp" => {
            arity(args, 1, name)?;
            let x = num_of(m, args[0])?.as_f64();
            boolean(match name {
                "zerop" => x == 0.0,
                "plusp" => x > 0.0,
                _ => x < 0.0,
            })
        }
        "oddp" | "evenp" => {
            arity(args, 1, name)?;
            let n = fix_of(m, args[0], name)?;
            boolean((n.rem_euclid(2) == 1) == (name == "oddp"))
        }
        "sqrt" | "sin" | "cos" | "atan" | "exp" | "log" => {
            let x = num_of(m, args[0])?.as_f64();
            let r = match name {
                "sqrt" => x.sqrt(),
                "sin" => x.sin(),
                "cos" => x.cos(),
                "atan" => {
                    if args.len() == 2 {
                        x.atan2(num_of(m, args[1])?.as_f64())
                    } else {
                        x.atan()
                    }
                }
                "exp" => x.exp(),
                _ => x.ln(),
            };
            make_num(m, Num::Flo(r))?
        }
        "float" => {
            arity(args, 1, "float")?;
            let x = num_of(m, args[0])?.as_f64();
            make_num(m, Num::Flo(x))?
        }
        "fix" => {
            arity(args, 1, "fix")?;
            Word::fixnum(num_of(m, args[0])?.as_f64() as i64)
        }
        "null" | "not" => {
            arity(args, 1, name)?;
            boolean(!args[0].is_true())
        }
        "atom" => boolean(!matches!(args[0], Word::Ptr(Tag::Cons, _))),
        "consp" => boolean(matches!(args[0], Word::Ptr(Tag::Cons, _))),
        "listp" => boolean(matches!(args[0], Word::Ptr(Tag::Cons | Tag::Nil, _))),
        "symbolp" => boolean(matches!(args[0], Word::Ptr(Tag::Symbol | Tag::T, _))),
        "numberp" => boolean(matches!(
            args[0],
            Word::Ptr(Tag::Fixnum | Tag::SingleFlonum, _)
        )),
        "fixnump" => boolean(matches!(args[0], Word::Ptr(Tag::Fixnum, _))),
        "flonump" => boolean(matches!(args[0], Word::Ptr(Tag::SingleFlonum, _))),
        "stringp" => boolean(matches!(args[0], Word::Ptr(Tag::String, _))),
        "functionp" => boolean(matches!(
            args[0],
            Word::Ptr(Tag::Function | Tag::Closure, _)
        )),
        "eq" => {
            arity(args, 2, "eq")?;
            boolean(word_eq(args[0], args[1]))
        }
        "eql" => {
            arity(args, 2, "eql")?;
            boolean(word_eql(m, args[0], args[1]))
        }
        "equal" => {
            arity(args, 2, "equal")?;
            boolean(word_equal(m, args[0], args[1], 0)?)
        }
        "cons" => {
            arity(args, 2, "cons")?;
            cons(m, args[0], args[1])?
        }
        "car" => {
            arity(args, 1, "car")?;
            car(m, args[0])?
        }
        "cdr" => {
            arity(args, 1, "cdr")?;
            cdr(m, args[0])?
        }
        "caar" => car(m, car(m, args[0])?)?,
        "cadr" => car(m, cdr(m, args[0])?)?,
        "cdar" => cdr(m, car(m, args[0])?)?,
        "cddr" => cdr(m, cdr(m, args[0])?)?,
        "caddr" => car(m, cdr(m, cdr(m, args[0])?)?)?,
        "cdddr" => cdr(m, cdr(m, cdr(m, args[0])?)?)?,
        "list" => from_words(m, args, Word::NIL)?,
        "list*" => {
            if args.is_empty() {
                return Err(Trap::WrongNumberOfArguments("list*: wants ≥ 1".into()));
            }
            let (last, init) = args.split_last().expect("nonempty");
            from_words(m, init, *last)?
        }
        "append" => {
            let mut all = Vec::new();
            let tail = match args.split_last() {
                None => Word::NIL,
                Some((last, init)) => {
                    for &a in init {
                        all.extend(list_words(m, a, "append")?);
                    }
                    *last
                }
            };
            from_words(m, &all, tail)?
        }
        "reverse" => {
            arity(args, 1, "reverse")?;
            let mut ws = list_words(m, args[0], "reverse")?;
            ws.reverse();
            from_words(m, &ws, Word::NIL)?
        }
        "length" => {
            arity(args, 1, "length")?;
            Word::fixnum(list_words(m, args[0], "length")?.len() as i64)
        }
        "nth" => {
            arity(args, 2, "nth")?;
            let n = fix_of(m, args[0], "nth")?;
            let ws = list_words(m, args[1], "nth")?;
            ws.get(n as usize).copied().unwrap_or(Word::NIL)
        }
        "nthcdr" => {
            arity(args, 2, "nthcdr")?;
            let n = fix_of(m, args[0], "nthcdr")?;
            let mut w = args[1];
            for _ in 0..n {
                w = cdr(m, w)?;
            }
            w
        }
        "last" => {
            arity(args, 1, "last")?;
            let mut w = args[0];
            while let Word::Ptr(Tag::Cons, addr) = w {
                let next = m.read_mem(addr + 1)?;
                if matches!(next, Word::Ptr(Tag::Cons, _)) {
                    w = next;
                } else {
                    break;
                }
            }
            w
        }
        "assq" | "assoc" => {
            arity(args, 2, name)?;
            let mut found = Word::NIL;
            for pair in list_words(m, args[1], name)? {
                if let Word::Ptr(Tag::Cons, addr) = pair {
                    let key = m.read_mem(addr)?;
                    let hit = if name == "assq" {
                        word_eq(key, args[0])
                    } else {
                        word_equal(m, key, args[0], 0)?
                    };
                    if hit {
                        found = pair;
                        break;
                    }
                }
            }
            found
        }
        "memq" | "member" => {
            arity(args, 2, name)?;
            let mut w = args[1];
            let mut found = Word::NIL;
            while let Word::Ptr(Tag::Cons, addr) = w {
                let head = m.read_mem(addr)?;
                let hit = if name == "memq" {
                    word_eq(head, args[0])
                } else {
                    word_equal(m, head, args[0], 0)?
                };
                if hit {
                    found = w;
                    break;
                }
                w = m.read_mem(addr + 1)?;
            }
            found
        }
        "rplaca" | "rplacd" => {
            arity(args, 2, name)?;
            let Word::Ptr(Tag::Cons, addr) = args[0] else {
                return Err(wrong(format!("{name}: not a cons")));
            };
            let slot = if name == "rplaca" { addr } else { addr + 1 };
            m.write_mem(slot, args[1])?;
            args[0]
        }
        "identity" => {
            arity(args, 1, "identity")?;
            args[0]
        }
        "error" => {
            let mut msg = String::new();
            for &a in args {
                let v = extract(m, a, 0)?;
                msg.push_str(&format!("{v} "));
            }
            return Err(Trap::LispError(msg.trim_end().to_string()));
        }
        "throw" => {
            arity(args, 2, "throw")?;
            return Ok(RtResult::Throw {
                tag: args[0],
                value: args[1],
            });
        }
        "%function" => {
            arity(args, 1, "%function")?;
            let Word::Ptr(Tag::Symbol, sym) = args[0] else {
                return Err(wrong("%function: wants a symbol"));
            };
            let name = m.program.symbols[sym as usize].clone();
            let id = m.program.fn_id(&name);
            Word::Ptr(Tag::Function, u64::from(id))
        }
        // The type-specific operators normally compile in line; the
        // runtime versions exist for `funcall`/`apply` through values.
        "+$f" | "-$f" | "*$f" | "/$f" | "max$f" | "min$f" | "abs$f" | "sqrt$f" | "sin$f"
        | "cos$f" | "sinc$f" | "cosc$f" => {
            let mut xs = Vec::with_capacity(args.len());
            for &a in args {
                match num_of(m, a)? {
                    Num::Flo(x) => xs.push(x),
                    Num::Int(_) => return Err(wrong(format!("{name}: not a flonum"))),
                }
            }
            let r = match (name, xs.as_slice()) {
                ("-$f", [x]) => -x,
                ("abs$f", [x]) => x.abs(),
                ("sqrt$f", [x]) => x.sqrt(),
                ("sin$f", [x]) => x.sin(),
                ("cos$f", [x]) => x.cos(),
                ("sinc$f", [x]) => (x * std::f64::consts::TAU).sin(),
                ("cosc$f", [x]) => (x * std::f64::consts::TAU).cos(),
                (_, [x, rest @ ..]) => {
                    let mut acc = *x;
                    for y in rest {
                        acc = match name {
                            "+$f" => acc + y,
                            "-$f" => acc - y,
                            "*$f" => acc * y,
                            "/$f" => acc / y,
                            "max$f" => acc.max(*y),
                            _ => acc.min(*y),
                        };
                    }
                    acc
                }
                _ => {
                    return Err(Trap::WrongNumberOfArguments(format!(
                        "{name}: bad argument count"
                    )))
                }
            };
            make_num(m, Num::Flo(r))?
        }
        "+&" | "-&" | "*&" => {
            let mut acc = fix_of(m, args[0], name)?;
            for &a in &args[1..] {
                let y = fix_of(m, a, name)?;
                acc = match name {
                    "+&" => acc.checked_add(y),
                    "-&" => acc.checked_sub(y),
                    _ => acc.checked_mul(y),
                }
                .ok_or_else(|| wrong(format!("{name}: overflow")))?;
            }
            Word::fixnum(acc)
        }
        other => return Err(Trap::UndefinedFunction(other.to_string())),
    };
    Ok(RtResult::Value(v))
}

// ---- host boundary ----

/// Builds machine data from a host value.
pub(crate) fn inject(m: &mut Machine, v: &Value) -> Result<Word, Trap> {
    Ok(match v {
        Value::Nil => Word::NIL,
        Value::Fixnum(n) => Word::fixnum(*n),
        Value::Flonum(x) => {
            let addr = m.alloc(1, ObjKind::Flonum)?;
            m.heap.write(addr, Word::F(*x));
            Word::Ptr(Tag::SingleFlonum, addr)
        }
        Value::Sym(s) => {
            if s.as_str() == "t" {
                Word::T
            } else {
                let id = m.program.sym_id(s.as_str());
                Word::Ptr(Tag::Symbol, u64::from(id))
            }
        }
        Value::Str(s) => {
            let id = m.program.str_id(s);
            Word::Ptr(Tag::String, u64::from(id))
        }
        Value::Char(c) => Word::Ptr(Tag::Char, u64::from(u32::from(*c))),
        Value::Cons(cell) => {
            let a = inject(m, &cell.car.borrow())?;
            let d = inject(m, &cell.cdr.borrow())?;
            cons(m, a, d)?
        }
        Value::Func(_) => {
            let name = v
                .as_global_function()
                .ok_or_else(|| wrong("cannot inject interpreter closures into the machine"))?;
            let id = m.program.fn_id(name);
            Word::Ptr(Tag::Function, u64::from(id))
        }
    })
}

/// Reads machine data back into a host value.
pub(crate) fn extract(m: &Machine, w: Word, depth: usize) -> Result<Value, Trap> {
    if depth > 100_000 {
        return Err(wrong("extract: structure too deep or circular"));
    }
    Ok(match w {
        Word::Ptr(Tag::Nil, _) => Value::Nil,
        Word::Ptr(Tag::T, _) => {
            let mut i = s1lisp_reader::Interner::new();
            Value::Sym(i.intern("t"))
        }
        Word::Ptr(Tag::Fixnum, n) => Value::Fixnum(n as i64),
        Word::Raw(n) => Value::Fixnum(n),
        Word::F(x) => Value::Flonum(x),
        Word::Ptr(Tag::SingleFlonum, addr) => match m.read_mem(addr)? {
            Word::F(x) => Value::Flonum(x),
            other => return Err(wrong(format!("corrupt flonum: {other}"))),
        },
        Word::Ptr(Tag::Symbol, id) => {
            let name = m
                .program
                .symbols
                .get(id as usize)
                .ok_or_else(|| wrong("bad symbol id"))?;
            let mut i = s1lisp_reader::Interner::new();
            Value::Sym(i.intern(name))
        }
        Word::Ptr(Tag::String, id) => {
            let s = m
                .program
                .strings
                .get(id as usize)
                .ok_or_else(|| wrong("bad string id"))?;
            Value::Str(std::rc::Rc::from(s.as_str()))
        }
        Word::Ptr(Tag::Char, c) => {
            Value::Char(char::from_u32(c as u32).ok_or_else(|| wrong("bad character"))?)
        }
        Word::Ptr(Tag::Cons, addr) => Value::cons(
            extract(m, m.read_mem(addr)?, depth + 1)?,
            extract(m, m.read_mem(addr + 1)?, depth + 1)?,
        ),
        Word::Ptr(Tag::Function, id) => {
            let name = m
                .program
                .fn_names
                .get(id as usize)
                .ok_or_else(|| wrong("bad function id"))?;
            Value::global_function(name)
        }
        Word::Ptr(Tag::Closure, addr) => {
            let Word::Raw(fnid) = m.heap.read(addr + 1) else {
                return Err(wrong("corrupt closure"));
            };
            let name = m.program.names().resolve(fnid as u32);
            Value::global_function(&format!("#closure-{name}"))
        }
        Word::Ptr(t, _) => return Err(wrong(format!("cannot extract {t:?}"))),
    })
}
