//! A small assembler: instruction emission with forward-referencing
//! labels.

use crate::insn::{Insn, Label};
use crate::program::FuncCode;

/// An in-progress function body.
///
/// Labels are allocated with [`Asm::label`], used as jump targets before
/// or after being bound with [`Asm::bind`], and resolved when the
/// function is [`finish`](Asm::finish)ed.
#[derive(Debug)]
pub struct Asm {
    name: String,
    nslots: u16,
    insns: Vec<Insn>,
    labels: Vec<Option<usize>>,
}

impl Asm {
    /// Starts a function with `nslots` fixed argument slots.
    pub fn new(name: &str, nslots: u16) -> Asm {
        Asm {
            name: name.to_string(),
            nslots,
            insns: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Emits an instruction, returning its index.
    pub fn push(&mut self, insn: Insn) -> usize {
        self.insns.push(insn);
        self.insns.len() - 1
    }

    /// Replaces a previously emitted instruction (used to fill in frame
    /// sizes known only after the body is generated).
    pub fn patch(&mut self, index: usize, insn: Insn) {
        self.insns[index] = insn;
    }

    /// Allocates an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        (self.labels.len() - 1) as Label
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label as usize];
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(self.insns.len());
    }

    /// Allocates a label bound to the next instruction.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Finishes assembly.
    ///
    /// # Panics
    ///
    /// Panics if any label is still unbound.
    pub fn finish(self) -> FuncCode {
        let labels: Vec<usize> = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, l)| l.unwrap_or_else(|| panic!("{}: label {i} never bound", self.name)))
            .collect();
        FuncCode {
            name: self.name,
            nslots: self.nslots,
            insns: self.insns,
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Operand;

    #[test]
    fn forward_labels_resolve() {
        let mut a = Asm::new("f", 0);
        let done = a.label();
        a.push(Insn::Jmp { target: done });
        a.push(Insn::Trap { msg: "unreached" });
        a.bind(done);
        a.push(Insn::Ret);
        let code = a.finish();
        assert_eq!(code.labels[done as usize], 2);
    }

    #[test]
    fn here_binds_backward() {
        let mut a = Asm::new("f", 0);
        let top = a.here();
        a.push(Insn::Jmp { target: top });
        let code = a.finish();
        assert_eq!(code.labels[top as usize], 0);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut a = Asm::new("f", 0);
        let l = a.label();
        a.push(Insn::Jmp { target: l });
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new("f", 0);
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn push_returns_indices() {
        let mut a = Asm::new("f", 0);
        assert_eq!(
            a.push(Insn::Pop {
                dst: Operand::arg(0)
            }),
            0
        );
        assert_eq!(a.push(Insn::Ret), 1);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
