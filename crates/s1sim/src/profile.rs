//! Execution profiling: retired-opcode histograms, per-function cycle
//! attribution, and an optional instruction ring buffer.
//!
//! The profiler is strictly host-side instrumentation layered over
//! [`MachineStats`](crate::MachineStats): attaching one never changes
//! what the simulated machine does or counts (`stats.insns`, heap
//! allocations, traps are bit-identical with and without it — a test in
//! the workspace pins this).  By default a [`Machine`](crate::Machine)
//! carries no profiler and the retire path costs one `Option` check.

use std::collections::BTreeMap;

/// The instruction class an opcode mnemonic belongs to, for
/// coarse-grained dispatch-mix metrics (`sim.opclass.*`): the §6
/// measurements group instructions the same way ("reduction of data
/// movement", arithmetic parity, call discipline), so the metrics
/// surface mirrors that taxonomy rather than the 60-mnemonic zoo.
pub fn opcode_class(opcode: &str) -> &'static str {
    match opcode {
        "MOV" | "MOVP" | "LOAD-CONST" => "move",
        "ADD" | "SUB" | "MULT" | "DIV" | "DIV-FLOOR" | "REM" | "MOD-FLOOR" | "NEG" => "int_arith",
        "FADD" | "FSUB" | "FMULT" | "FDIV" | "FMAX" | "FMIN" | "FNEG" | "FSIN" | "FCOS"
        | "FSQRT" | "FATAN" | "FEXP" | "FLOG" | "FLOAT-IT" | "FIX-IT" => "float_arith",
        "JMP" | "JMP-IF" | "JMP-NIL" | "JMP-NOT-NIL" | "JMP-TAG" | "JMP-EQ" | "DISPATCH" => {
            "branch"
        }
        "CALL" | "TAIL-CALL" | "TAIL-JMP" | "RET" | "LOCAL-CALL" | "LOCAL-RET" | "RT-CALL"
        | "APPLY" | "LOAD-FUNCTION" => "call",
        "PUSH" | "POP" | "ALLOC-SLOTS" | "FREE-SLOTS" | "LISTIFY-ARGS" => "stack",
        "CONS-RT" | "CAR" | "CDR" | "BOX-FLO" | "UNBOX-FLO" | "CERTIFY" | "MAKE-CELL"
        | "LOAD-CELL" | "STORE-CELL" | "MAKE-CLOSURE" | "LOAD-ENV" => "heap",
        "SPEC-BIND" | "SPEC-UNBIND" | "SPEC-LOOKUP" | "SPEC-READ" | "SPEC-WRITE" => "special",
        "TRAP" | "PUSH-CATCH" | "POP-CATCH" | "THROW" => "control",
        _ => "other",
    }
}

/// One retired instruction, as seen by the ring buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Retired {
    /// Function id (index into `Program::fn_names`).
    pub fnid: u32,
    /// Program counter of the instruction within the function.
    pub pc: u32,
    /// Instruction mnemonic.
    pub opcode: &'static str,
}

/// An execution profile accumulated at the machine's retire point.
#[derive(Clone, Debug, Default)]
pub struct ExecProfile {
    /// Retired instructions per opcode mnemonic.
    pub opcodes: BTreeMap<&'static str, u64>,
    /// Instruction-equivalent cycles attributed per function id.  Counts
    /// retired instructions *plus* the synthetic entry/dispatch cost the
    /// machine charges for runtime calls (which has no opcode and so
    /// never appears in [`ExecProfile::opcodes`]).
    per_fn: Vec<u64>,
    /// The last `ring_capacity` retired instructions (oldest first once
    /// full), when a capacity was requested.
    ring: Vec<Retired>,
    ring_cap: usize,
    ring_next: usize,
}

impl ExecProfile {
    /// An empty profile with no instruction ring.
    pub fn new() -> ExecProfile {
        ExecProfile::default()
    }

    /// An empty profile that also keeps the last `capacity` retired
    /// instructions for post-mortem inspection.
    pub fn with_ring(capacity: usize) -> ExecProfile {
        ExecProfile {
            ring_cap: capacity,
            ..ExecProfile::default()
        }
    }

    /// Records one retired instruction (the machine calls this).
    pub(crate) fn retire(&mut self, fnid: u32, pc: usize, opcode: &'static str) {
        *self.opcodes.entry(opcode).or_insert(0) += 1;
        self.attribute(fnid, 1);
        if self.ring_cap > 0 {
            let rec = Retired {
                fnid,
                pc: pc as u32,
                opcode,
            };
            if self.ring.len() < self.ring_cap {
                self.ring.push(rec);
            } else {
                self.ring[self.ring_next] = rec;
            }
            self.ring_next = (self.ring_next + 1) % self.ring_cap;
        }
    }

    /// Attributes `cycles` instruction-equivalents to `fnid` without a
    /// retired opcode (the synthetic runtime-call cost).
    pub(crate) fn attribute(&mut self, fnid: u32, cycles: u64) {
        let idx = fnid as usize;
        if idx >= self.per_fn.len() {
            self.per_fn.resize(idx + 1, 0);
        }
        self.per_fn[idx] += cycles;
    }

    /// Cycles attributed to function id `fnid`.
    pub fn fn_cycles(&self, fnid: u32) -> u64 {
        self.per_fn.get(fnid as usize).copied().unwrap_or(0)
    }

    /// Per-function cycle attribution as `(fnid, cycles)`, nonzero
    /// entries only, heaviest first.
    pub fn per_fn(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .per_fn
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total retired instructions recorded (sum of the opcode histogram;
    /// excludes synthetic runtime-call cycles).
    pub fn retired(&self) -> u64 {
        self.opcodes.values().sum()
    }

    /// The opcode histogram folded by [`opcode_class`], class-sorted.
    pub fn class_histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut classes = BTreeMap::new();
        for (&op, &n) in &self.opcodes {
            *classes.entry(opcode_class(op)).or_insert(0) += n;
        }
        classes
    }

    /// The retained instruction tail, oldest first.  Empty unless the
    /// profile was created [`with_ring`](ExecProfile::with_ring).
    pub fn ring(&self) -> Vec<Retired> {
        if self.ring.len() < self.ring_cap {
            self.ring.clone()
        } else {
            let mut out = Vec::with_capacity(self.ring.len());
            out.extend_from_slice(&self.ring[self.ring_next..]);
            out.extend_from_slice(&self.ring[..self.ring_next]);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_attribution_accumulate() {
        let mut p = ExecProfile::new();
        p.retire(0, 0, "MOV");
        p.retire(0, 1, "ADD");
        p.retire(1, 0, "MOV");
        p.attribute(1, 8);
        assert_eq!(p.opcodes["MOV"], 2);
        assert_eq!(p.opcodes["ADD"], 1);
        assert_eq!(p.retired(), 3);
        assert_eq!(p.fn_cycles(0), 2);
        assert_eq!(p.fn_cycles(1), 9);
        assert_eq!(p.per_fn(), vec![(1, 9), (0, 2)]);
    }

    #[test]
    fn class_histogram_folds_opcodes() {
        let mut p = ExecProfile::new();
        p.retire(0, 0, "MOV");
        p.retire(0, 1, "MOVP");
        p.retire(0, 2, "ADD");
        p.retire(0, 3, "CALL");
        p.retire(0, 4, "RET");
        let classes = p.class_histogram();
        assert_eq!(classes["move"], 2);
        assert_eq!(classes["int_arith"], 1);
        assert_eq!(classes["call"], 2);
        // Every mnemonic the machine can retire maps to a named class;
        // unknowns fall into "other" rather than panicking.
        assert_eq!(opcode_class("NO-SUCH-OP"), "other");
    }

    #[test]
    fn ring_keeps_the_last_n_in_order() {
        let mut p = ExecProfile::with_ring(3);
        for pc in 0..5 {
            p.retire(0, pc, "MOV");
        }
        let tail: Vec<u32> = p.ring().iter().map(|r| r.pc).collect();
        assert_eq!(tail, vec![2, 3, 4]);
        // And a profile without a ring keeps nothing.
        let mut q = ExecProfile::new();
        q.retire(0, 0, "MOV");
        assert!(q.ring().is_empty());
    }
}
