//! Execution profiling: retired-opcode histograms, per-function cycle
//! attribution, a call-stack flight recorder, and an optional
//! instruction ring buffer.
//!
//! The profiler is strictly host-side instrumentation layered over
//! [`MachineStats`](crate::MachineStats): attaching one never changes
//! what the simulated machine does or counts (`stats.insns`, heap
//! allocations, traps are bit-identical with and without it — a test in
//! the workspace pins this).  By default a [`Machine`](crate::Machine)
//! carries no profiler and the retire path costs one `Option` check;
//! the call-stack tracker rides the same check, so profiler-off
//! dispatch pays nothing for it.
//!
//! # Call-stack attribution
//!
//! The machine mirrors its control stack into the profile: a push on
//! every non-tail call (including `LOCAL-CALL` frames), a top-frame
//! replacement on tail calls, a pop on returns, and an unwind on
//! `throw`.  Retired instructions and synthetic runtime-call cycles are
//! charged as *self* cycles to the innermost tracked frame, so the
//! profile accumulates a calling-context trie whose folded form
//! ([`ExecProfile::folded`]) is directly consumable by `flamegraph.pl`
//! and speedscope.  The trie persists across runs (each
//! [`Machine::run`](crate::Machine::run) re-roots the cursor, cycle
//! counts accumulate).
//!
//! Stacks deeper than the depth cap ([`ExecProfile::stack_depth_cap`],
//! default [`DEFAULT_STACK_DEPTH_CAP`]) are truncated: cycles burned
//! beyond the cap are charged to the frame *at* the cap and
//! [`ExecProfile::stack_truncated`] counts the pushes that were dropped.
//!
//! Exact reconciliation, pinned by golden tests: the folded self-cycle
//! total equals `retired() + synthetic_cycles()` — subtracting the
//! synthetic runtime-call charge recovers [`ExecProfile::retired`]
//! exactly — and equals the [`ExecProfile::per_fn`] total, which in
//! turn equals the machine's `stats.insns`.

use std::collections::BTreeMap;

use crate::program::FnNameTable;

/// Default depth cap for the call-stack tracker: frames pushed beyond
/// this depth are folded into the frame at the cap (and counted by
/// [`ExecProfile::stack_truncated`]) instead of growing the trie.
pub const DEFAULT_STACK_DEPTH_CAP: usize = 128;

/// The instruction class an opcode mnemonic belongs to, for
/// coarse-grained dispatch-mix metrics (`sim.opclass.*`): the §6
/// measurements group instructions the same way ("reduction of data
/// movement", arithmetic parity, call discipline), so the metrics
/// surface mirrors that taxonomy rather than the 60-mnemonic zoo.
pub fn opcode_class(opcode: &str) -> &'static str {
    match opcode {
        "MOV" | "MOVP" | "LOAD-CONST" => "move",
        "ADD" | "SUB" | "MULT" | "DIV" | "DIV-FLOOR" | "REM" | "MOD-FLOOR" | "NEG" => "int_arith",
        "FADD" | "FSUB" | "FMULT" | "FDIV" | "FMAX" | "FMIN" | "FNEG" | "FSIN" | "FCOS"
        | "FSQRT" | "FATAN" | "FEXP" | "FLOG" | "FLOAT-IT" | "FIX-IT" => "float_arith",
        "JMP" | "JMP-IF" | "JMP-NIL" | "JMP-NOT-NIL" | "JMP-TAG" | "JMP-EQ" | "DISPATCH" => {
            "branch"
        }
        "CALL" | "TAIL-CALL" | "TAIL-JMP" | "RET" | "LOCAL-CALL" | "LOCAL-RET" | "RT-CALL"
        | "APPLY" | "LOAD-FUNCTION" => "call",
        "PUSH" | "POP" | "ALLOC-SLOTS" | "FREE-SLOTS" | "LISTIFY-ARGS" => "stack",
        "CONS-RT" | "CAR" | "CDR" | "BOX-FLO" | "UNBOX-FLO" | "CERTIFY" | "MAKE-CELL"
        | "LOAD-CELL" | "STORE-CELL" | "MAKE-CLOSURE" | "LOAD-ENV" => "heap",
        "SPEC-BIND" | "SPEC-UNBIND" | "SPEC-LOOKUP" | "SPEC-READ" | "SPEC-WRITE" => "special",
        "TRAP" | "PUSH-CATCH" | "POP-CATCH" | "THROW" => "control",
        _ => "other",
    }
}

/// One retired instruction, as seen by the ring buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Retired {
    /// Function id (index into `Program::fn_names`).
    pub fnid: u32,
    /// Program counter of the instruction within the function.
    pub pc: u32,
    /// Instruction mnemonic.
    pub opcode: &'static str,
}

/// One node of the calling-context trie: a function observed at a
/// particular stack of callers.
#[derive(Clone, Debug)]
struct StackNode {
    fnid: u32,
    parent: u32,
    /// Child nodes, `(callee fnid, node index)`.
    children: Vec<(u32, u32)>,
    self_cycles: u64,
}

/// Self and cumulative cycles for one calling context (one node of the
/// trie), as returned by [`ExecProfile::stack_cycles`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StackFrameCycles {
    /// The call path, outermost caller first.
    pub path: Vec<u32>,
    /// Cycles charged while this exact context was innermost.
    pub self_cycles: u64,
    /// Self cycles plus the cumulative cycles of every child context.
    pub cum_cycles: u64,
}

/// An execution profile accumulated at the machine's retire point.
#[derive(Clone, Debug)]
pub struct ExecProfile {
    /// Retired instructions per opcode mnemonic.
    pub opcodes: BTreeMap<&'static str, u64>,
    /// Instruction-equivalent cycles attributed per function id.  Counts
    /// retired instructions *plus* the synthetic entry/dispatch cost the
    /// machine charges for runtime calls (which has no opcode and so
    /// never appears in [`ExecProfile::opcodes`]).
    per_fn: Vec<u64>,
    /// The last `ring_capacity` retired instructions (oldest first once
    /// full), when a capacity was requested.
    ring: Vec<Retired>,
    ring_cap: usize,
    ring_next: usize,
    /// Calling-context trie; node 0 is the virtual root (no function).
    nodes: Vec<StackNode>,
    /// Innermost *tracked* frame (index into `nodes`).
    cur: u32,
    /// Logical stack depth (frames above the virtual root), which can
    /// exceed `cap` when the tracker is truncating.
    depth: usize,
    cap: usize,
    truncated: u64,
    synthetic: u64,
}

impl Default for ExecProfile {
    fn default() -> ExecProfile {
        ExecProfile {
            opcodes: BTreeMap::new(),
            per_fn: Vec::new(),
            ring: Vec::new(),
            ring_cap: 0,
            ring_next: 0,
            nodes: vec![StackNode {
                fnid: u32::MAX,
                parent: 0,
                children: Vec::new(),
                self_cycles: 0,
            }],
            cur: 0,
            depth: 0,
            cap: DEFAULT_STACK_DEPTH_CAP,
            truncated: 0,
            synthetic: 0,
        }
    }
}

impl ExecProfile {
    /// An empty profile with no instruction ring.
    pub fn new() -> ExecProfile {
        ExecProfile::default()
    }

    /// An empty profile that also keeps the last `capacity` retired
    /// instructions for post-mortem inspection.
    pub fn with_ring(capacity: usize) -> ExecProfile {
        ExecProfile {
            ring_cap: capacity,
            ..ExecProfile::default()
        }
    }

    /// Records one retired instruction (the machine calls this).
    pub(crate) fn retire(&mut self, fnid: u32, pc: usize, opcode: &'static str) {
        *self.opcodes.entry(opcode).or_insert(0) += 1;
        self.charge(fnid, 1);
        self.nodes[self.cur as usize].self_cycles += 1;
        if self.ring_cap > 0 {
            let rec = Retired {
                fnid,
                pc: pc as u32,
                opcode,
            };
            if self.ring.len() < self.ring_cap {
                self.ring.push(rec);
            } else {
                self.ring[self.ring_next] = rec;
            }
            self.ring_next = (self.ring_next + 1) % self.ring_cap;
        }
    }

    /// Attributes `cycles` instruction-equivalents to `fnid` without a
    /// retired opcode (the synthetic runtime-call cost).
    pub(crate) fn attribute(&mut self, fnid: u32, cycles: u64) {
        self.charge(fnid, cycles);
        self.synthetic += cycles;
        self.nodes[self.cur as usize].self_cycles += cycles;
    }

    /// Per-function flat attribution, shared by `retire` and
    /// `attribute`.
    fn charge(&mut self, fnid: u32, cycles: u64) {
        let idx = fnid as usize;
        if idx >= self.per_fn.len() {
            self.per_fn.resize(idx + 1, 0);
        }
        self.per_fn[idx] += cycles;
    }

    // ---- call-stack tracker (the machine mirrors its control stack
    // through these; all calls sit behind the profiler's `Option`
    // check, so they cost nothing when no profile is attached) ----

    /// Re-roots the stack at `entry` — called at the top of every
    /// [`Machine::run`](crate::Machine::run).  The trie and its cycle
    /// counts persist; only the cursor resets.
    pub(crate) fn stack_reset(&mut self, entry: u32) {
        self.cur = 0;
        self.depth = 0;
        self.stack_push(entry);
    }

    /// A non-tail call into `fnid` (also used for `LOCAL-CALL` frames,
    /// which re-enter the same function).
    pub(crate) fn stack_push(&mut self, fnid: u32) {
        self.depth += 1;
        if self.depth > self.cap {
            self.truncated += 1;
            return;
        }
        self.descend(fnid);
    }

    /// A return: pops the innermost frame.
    pub(crate) fn stack_pop(&mut self) {
        if self.depth == 0 {
            return;
        }
        if self.depth <= self.cap {
            self.cur = self.nodes[self.cur as usize].parent;
        }
        self.depth -= 1;
    }

    /// A tail call into `fnid`: replaces the innermost frame (the
    /// machine reuses the caller's frame, so the caller disappears from
    /// the stack).  A self-tail-call keeps the current context.
    pub(crate) fn stack_tail(&mut self, fnid: u32) {
        if self.depth == 0 {
            self.stack_push(fnid);
            return;
        }
        if self.depth > self.cap || self.nodes[self.cur as usize].fnid == fnid {
            return;
        }
        self.cur = self.nodes[self.cur as usize].parent;
        self.descend(fnid);
    }

    /// A `throw`: unwinds to logical depth `depth`, resuming in `fnid`.
    /// If a tail call replaced the frame that pushed the catch, the
    /// surviving frame is rewritten to the resume function so the mirror
    /// stays exact.
    pub(crate) fn stack_unwind(&mut self, depth: usize, fnid: u32) {
        while self.depth > depth {
            self.stack_pop();
        }
        if self.depth == depth
            && depth > 0
            && self.depth <= self.cap
            && self.nodes[self.cur as usize].fnid != fnid
        {
            self.cur = self.nodes[self.cur as usize].parent;
            self.descend(fnid);
        }
    }

    /// Moves the cursor into the child `fnid`, creating the node on
    /// first visit.
    fn descend(&mut self, fnid: u32) {
        let cur = self.cur as usize;
        if let Some(&(_, idx)) = self.nodes[cur].children.iter().find(|&&(f, _)| f == fnid) {
            self.cur = idx;
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(StackNode {
                fnid,
                parent: self.cur,
                children: Vec::new(),
                self_cycles: 0,
            });
            self.nodes[cur].children.push((fnid, idx));
            self.cur = idx;
        }
    }

    /// Cycles attributed to function id `fnid`.
    pub fn fn_cycles(&self, fnid: u32) -> u64 {
        self.per_fn.get(fnid as usize).copied().unwrap_or(0)
    }

    /// Per-function cycle attribution as `(fnid, cycles)`, nonzero
    /// entries only, heaviest first.
    pub fn per_fn(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self
            .per_fn
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total retired instructions recorded (sum of the opcode histogram;
    /// excludes synthetic runtime-call cycles).
    pub fn retired(&self) -> u64 {
        self.opcodes.values().sum()
    }

    /// The opcode histogram folded by [`opcode_class`], class-sorted.
    pub fn class_histogram(&self) -> BTreeMap<&'static str, u64> {
        let mut classes = BTreeMap::new();
        for (&op, &n) in &self.opcodes {
            *classes.entry(opcode_class(op)).or_insert(0) += n;
        }
        classes
    }

    /// The retained instruction tail, oldest first.  Empty unless the
    /// profile was created [`with_ring`](ExecProfile::with_ring).
    pub fn ring(&self) -> Vec<Retired> {
        if self.ring.len() < self.ring_cap {
            self.ring.clone()
        } else {
            let mut out = Vec::with_capacity(self.ring.len());
            out.extend_from_slice(&self.ring[self.ring_next..]);
            out.extend_from_slice(&self.ring[..self.ring_next]);
            out
        }
    }

    // ---- call-stack attribution output ----

    /// The depth cap of the call-stack tracker.
    pub fn stack_depth_cap(&self) -> usize {
        self.cap
    }

    /// Sets the call-stack depth cap (affects future pushes only).
    pub fn set_stack_depth_cap(&mut self, cap: usize) {
        self.cap = cap.max(1);
    }

    /// Number of call-stack pushes dropped because the stack was deeper
    /// than the cap; their cycles were charged to the frame at the cap.
    pub fn stack_truncated(&self) -> u64 {
        self.truncated
    }

    /// Cycles attributed without a retired opcode (the synthetic
    /// runtime-call charge).  The folded self-cycle total minus this
    /// equals [`ExecProfile::retired`] exactly.
    pub fn synthetic_cycles(&self) -> u64 {
        self.synthetic
    }

    /// Self and cumulative cycles per calling context, depth-first with
    /// children in first-call order, contexts with zero cumulative
    /// cycles omitted.  The virtual root is not listed; the sum of
    /// top-level `cum_cycles` is the folded total.
    pub fn stack_cycles(&self) -> Vec<StackFrameCycles> {
        // Cumulative cycles bottom-up: nodes only ever point to earlier
        // parents, so a reverse index scan accumulates children first.
        let mut cum: Vec<u64> = self.nodes.iter().map(|n| n.self_cycles).collect();
        for i in (1..self.nodes.len()).rev() {
            let parent = self.nodes[i].parent as usize;
            cum[parent] += cum[i];
        }
        let mut out = Vec::new();
        // Iterative preorder from the root's children.
        let mut stack: Vec<(u32, Vec<u32>)> = self.nodes[0]
            .children
            .iter()
            .rev()
            .map(|&(_, idx)| (idx, Vec::new()))
            .collect();
        while let Some((idx, prefix)) = stack.pop() {
            let node = &self.nodes[idx as usize];
            let mut path = prefix;
            path.push(node.fnid);
            if cum[idx as usize] > 0 {
                out.push(StackFrameCycles {
                    path: path.clone(),
                    self_cycles: node.self_cycles,
                    cum_cycles: cum[idx as usize],
                });
            }
            for &(_, child) in node.children.iter().rev() {
                stack.push((child, path.clone()));
            }
        }
        out
    }

    /// Folded/collapsed-stack output (`caller;...;leaf <self-cycles>`,
    /// one line per calling context with nonzero self cycles, lines
    /// byte-sorted), the format `flamegraph.pl` and speedscope consume.
    /// Names resolve through the program's shared symbol table.
    pub fn folded(&self, names: &FnNameTable<'_>) -> String {
        let mut lines: Vec<String> = self
            .stack_cycles()
            .iter()
            .filter(|f| f.self_cycles > 0)
            .map(|f| {
                let path: Vec<String> = f
                    .path
                    .iter()
                    .map(|&fnid| names.resolve(fnid).into_owned())
                    .collect();
                format!("{} {}", path.join(";"), f.self_cycles)
            })
            .collect();
        // Cycles charged with no frame pushed (possible only when the
        // profile is driven outside a `Machine::run`) surface under a
        // synthetic root rather than vanishing.
        if self.nodes[0].self_cycles > 0 {
            lines.push(format!("(root) {}", self.nodes[0].self_cycles));
        }
        lines.sort();
        lines.join("\n") + "\n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_attribution_accumulate() {
        let mut p = ExecProfile::new();
        p.retire(0, 0, "MOV");
        p.retire(0, 1, "ADD");
        p.retire(1, 0, "MOV");
        p.attribute(1, 8);
        assert_eq!(p.opcodes["MOV"], 2);
        assert_eq!(p.opcodes["ADD"], 1);
        assert_eq!(p.retired(), 3);
        assert_eq!(p.fn_cycles(0), 2);
        assert_eq!(p.fn_cycles(1), 9);
        assert_eq!(p.per_fn(), vec![(1, 9), (0, 2)]);
    }

    #[test]
    fn class_histogram_folds_opcodes() {
        let mut p = ExecProfile::new();
        p.retire(0, 0, "MOV");
        p.retire(0, 1, "MOVP");
        p.retire(0, 2, "ADD");
        p.retire(0, 3, "CALL");
        p.retire(0, 4, "RET");
        let classes = p.class_histogram();
        assert_eq!(classes["move"], 2);
        assert_eq!(classes["int_arith"], 1);
        assert_eq!(classes["call"], 2);
        // Every mnemonic the machine can retire maps to a named class;
        // unknowns fall into "other" rather than panicking.
        assert_eq!(opcode_class("NO-SUCH-OP"), "other");
    }

    fn names_for(names: &[&str]) -> crate::program::Program {
        let mut p = crate::program::Program::new();
        for n in names {
            p.fn_id(n);
        }
        p
    }

    #[test]
    fn stack_tracker_builds_a_calling_context_trie() {
        let mut p = ExecProfile::new();
        p.stack_reset(0); // main
        p.retire(0, 0, "MOV");
        p.stack_push(1); // main -> f
        p.retire(1, 0, "ADD");
        p.retire(1, 1, "ADD");
        p.stack_pop(); // back in main
        p.retire(0, 1, "MOV");
        p.stack_push(2); // main -> g
        p.retire(2, 0, "SUB");
        p.stack_pop();
        let frames = p.stack_cycles();
        assert_eq!(
            frames,
            vec![
                StackFrameCycles {
                    path: vec![0],
                    self_cycles: 2,
                    cum_cycles: 5
                },
                StackFrameCycles {
                    path: vec![0, 1],
                    self_cycles: 2,
                    cum_cycles: 2
                },
                StackFrameCycles {
                    path: vec![0, 2],
                    self_cycles: 1,
                    cum_cycles: 1
                },
            ]
        );
        let prog = names_for(&["main", "f", "g"]);
        assert_eq!(p.folded(&prog.names()), "main 2\nmain;f 2\nmain;g 1\n");
        // Self+child sums reconcile with retired() exactly.
        let folded_total: u64 = p.stack_cycles().iter().map(|f| f.self_cycles).sum();
        assert_eq!(folded_total, p.retired() + p.synthetic_cycles());
    }

    #[test]
    fn tail_calls_replace_the_top_frame() {
        let mut p = ExecProfile::new();
        p.stack_reset(0);
        p.stack_push(1); // 0 -> 1
        p.stack_tail(2); // 0 -> 2 (1's frame reused)
        p.retire(2, 0, "MOV");
        p.stack_tail(2); // self tail call: same context
        p.retire(2, 1, "MOV");
        p.stack_pop();
        let frames = p.stack_cycles();
        assert_eq!(frames.len(), 2); // root context 0 and 0->2; 0->1 burned nothing
        assert_eq!(frames[1].path, vec![0, 2]);
        assert_eq!(frames[1].self_cycles, 2);
    }

    #[test]
    fn depth_cap_truncates_and_charges_the_cap_frame() {
        let mut p = ExecProfile::new();
        p.set_stack_depth_cap(2);
        p.stack_reset(0);
        p.stack_push(1); // depth 2 == cap
        p.stack_push(2); // depth 3: dropped
        p.stack_push(3); // depth 4: dropped
        p.retire(3, 0, "MOV"); // charged to the frame at the cap (0;1)
        assert_eq!(p.stack_truncated(), 2);
        p.stack_pop();
        p.stack_pop();
        p.retire(1, 0, "ADD"); // back at 0;1, now tracked again
        p.stack_pop();
        p.retire(0, 0, "ADD");
        let prog = names_for(&["a", "b", "c", "d"]);
        assert_eq!(p.folded(&prog.names()), "a 1\na;b 2\n");
        let folded_total: u64 = p.stack_cycles().iter().map(|f| f.self_cycles).sum();
        assert_eq!(folded_total, p.retired());
    }

    #[test]
    fn unwind_pops_to_the_catch_depth_and_rewrites_divergent_tops() {
        let mut p = ExecProfile::new();
        p.stack_reset(0);
        p.stack_push(1);
        p.stack_push(2);
        p.stack_push(3);
        p.stack_unwind(2, 1); // throw back to depth 2, resuming in fn 1
        p.retire(1, 5, "MOV");
        let frames = p.stack_cycles();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].path, vec![0, 1]);
        // A tail call replaced the catch frame's function: unwind must
        // rewrite the surviving top to the resume function.
        let mut q = ExecProfile::new();
        q.stack_reset(0);
        q.stack_push(1);
        q.stack_tail(2); // frame now runs fn 2; catch was pushed by fn 1
        q.stack_unwind(2, 1);
        q.retire(1, 9, "MOV");
        let frames = q.stack_cycles();
        assert_eq!(frames.last().unwrap().path, vec![0, 1]);
    }

    #[test]
    fn synthetic_cycles_separate_from_retired() {
        let mut p = ExecProfile::new();
        p.stack_reset(4);
        p.retire(4, 0, "RT-CALL");
        p.attribute(4, 8);
        assert_eq!(p.retired(), 1);
        assert_eq!(p.synthetic_cycles(), 8);
        assert_eq!(p.fn_cycles(4), 9);
        let folded_total: u64 = p.stack_cycles().iter().map(|f| f.self_cycles).sum();
        assert_eq!(folded_total, p.retired() + p.synthetic_cycles());
    }

    #[test]
    fn ring_keeps_the_last_n_in_order() {
        let mut p = ExecProfile::with_ring(3);
        for pc in 0..5 {
            p.retire(0, pc, "MOV");
        }
        let tail: Vec<u32> = p.ring().iter().map(|r| r.pc).collect();
        assert_eq!(tail, vec![2, 3, 4]);
        // And a profile without a ring keeps nothing.
        let mut q = ExecProfile::new();
        q.retire(0, 0, "MOV");
        assert!(q.ring().is_empty());
    }
}
