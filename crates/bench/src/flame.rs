//! The profiling report surfaces behind `report --flame` and
//! `report --chrome-trace`.
//!
//! * [`flame_report`] runs one pinned perfbench kernel under the
//!   simulator's calling-context profiler and returns the folded-stack
//!   text (`caller;callee <cycles>` lines) that `flamegraph.pl` and
//!   speedscope consume directly.  The kernels are the perfbench matrix
//!   ([`crate::perfbench::sim_kernels`]), so a flame graph always
//!   describes exactly the workload the trajectory measures.
//! * [`chrome_trace`] renders both observability timelines as one
//!   Chrome trace-event JSON array: pid 1 is a traced single-unit
//!   compile (the per-phase span tree from the compiler's
//!   [`MemorySink`](s1lisp_trace::MemorySink)), pid 2 is a driver batch
//!   with one lane per worker, each job shown as queue-wait, then the
//!   job span containing its pipeline phases.

use s1lisp::Compiler;
use s1lisp_driver::BatchResult;
use s1lisp_s1sim::ExecProfile;
use s1lisp_trace::chrome::{self, TraceEvent};
use s1lisp_trace::json::Json;

use crate::perfbench::sim_kernels;
use crate::service::service_batch;

/// Runs the pinned kernel named `entry` (a perfbench workload id) with
/// the profiling call stack enabled and returns the folded-stack text.
///
/// # Errors
///
/// Returns a message listing the known ids when `entry` names no
/// pinned kernel.
pub fn flame_report(entry: &str) -> Result<String, String> {
    let kernels = sim_kernels();
    let Some(k) = kernels.iter().find(|k| k.id == entry) else {
        let known: Vec<&str> = kernels.iter().map(|k| k.id).collect();
        return Err(format!(
            "unknown flame workload {entry:?} (want one of {})",
            known.join(", ")
        ));
    };
    let mut c = Compiler::new();
    c.compile_str(k.src)
        .map_err(|e| format!("{} compiles: {e}", k.id))?;
    let mut m = c.machine();
    m.profile = Some(Box::new(ExecProfile::default()));
    m.run(k.entry, &k.args)
        .map_err(|trap| format!("{} runs: {trap}", k.id))?;
    Ok(m.folded_stacks().expect("profile was attached"))
}

/// Renders a driver batch as trace events on `pid`, one lane (`tid`)
/// per worker.  Per job, in seq order within its lane: a `queue-wait`
/// event, then the job event (named by its unit, outcome in `args`)
/// stretched to contain its pipeline phases laid out sequentially.
pub fn batch_events(batch: &BatchResult, pid: u64) -> Vec<TraceEvent> {
    let mut cursor = vec![0u64; batch.stats.workers_used.max(1)];
    let mut events = Vec::new();
    let mut records: Vec<_> = batch.records.iter().collect();
    records.sort_by_key(|r| r.seq);
    for r in records {
        let tid = r.worker as u64;
        let lane = cursor.get_mut(r.worker).expect("worker lane exists");
        events.push(TraceEvent {
            name: "queue-wait".to_string(),
            ts_us: *lane,
            dur_us: r.queue_us,
            pid,
            tid,
            unit: r.function.clone(),
            counters: Vec::new(),
        });
        *lane += r.queue_us;
        let phase_total: u64 = r.phase_spans.iter().map(|&(_, _, us)| us).sum();
        let job_dur = r.wall_us.max(phase_total);
        events.push(TraceEvent {
            name: r.unit.clone(),
            ts_us: *lane,
            dur_us: job_dur,
            pid,
            tid,
            unit: r.function.clone(),
            counters: vec![
                ("outcome".to_string(), r.outcome as u64),
                ("wall_us".to_string(), r.wall_us),
                ("queue_us".to_string(), r.queue_us),
            ],
        });
        let mut phase_ts = *lane;
        for (phase, spans, wall_us) in &r.phase_spans {
            events.push(TraceEvent {
                name: phase.clone(),
                ts_us: phase_ts,
                dur_us: *wall_us,
                pid,
                tid,
                unit: r.function.clone(),
                counters: vec![("spans".to_string(), *spans)],
            });
            phase_ts += wall_us;
        }
        *lane += job_dur;
    }
    events
}

/// The combined chrome-trace JSON array: a traced single-unit compile
/// on pid 1 and a 2-worker driver batch over the experiment corpus on
/// pid 2.  Load the output in `chrome://tracing` or Perfetto.
pub fn chrome_trace() -> Json {
    let mut c = Compiler::new();
    c.enable_trace();
    c.compile_str(crate::corpus::TESTFN)
        .expect("corpus compiles");
    let mut events = c
        .trace()
        .map(|sink| chrome::sink_events(sink, 1, 0))
        .unwrap_or_default();
    let batch = service_batch(2, None);
    events.extend(batch_events(&batch, 2));
    chrome::trace_json(&events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flame_report_knows_the_perfbench_matrix() {
        let folded = flame_report("exptl").unwrap();
        assert!(folded.contains("exptl"), "{folded}");
        assert!(folded.ends_with('\n'));
        let err = flame_report("nope").unwrap_err();
        assert!(err.contains("tak"), "{err}");
    }

    #[test]
    fn chrome_trace_is_a_valid_event_array_with_both_lanes() {
        let trace = chrome_trace();
        let n = chrome::validate_trace(&trace).unwrap();
        assert!(n > 0);
        let events = trace.as_arr().unwrap();
        let pid = |e: &Json| e.get("pid").and_then(Json::as_int).unwrap();
        assert!(events.iter().any(|e| pid(e) == 1), "pipeline lane");
        assert!(events.iter().any(|e| pid(e) == 2), "driver lane");
    }

    #[test]
    fn batch_lanes_are_sequential_per_worker() {
        let batch = service_batch(2, None);
        let events = batch_events(&batch, 2);
        // Top-level lane events (queue-waits and jobs) must not overlap
        // within a worker lane; phase events nest inside their job.
        let mut last_end: std::collections::HashMap<u64, u64> = Default::default();
        for e in events
            .iter()
            .filter(|e| e.name == "queue-wait" || batch.records.iter().any(|r| r.unit == e.name))
        {
            let end = last_end.entry(e.tid).or_insert(0);
            assert!(
                e.ts_us >= *end,
                "{} starts inside the previous span",
                e.name
            );
            *end = e.ts_us + e.dur_us;
        }
    }
}
