//! The perf-trajectory harness behind the `perfbench` binary.
//!
//! The ROADMAP's throughput work is gated on measurement: before any
//! dispatch-loop optimization lands, there must be a durable,
//! machine-readable record of what the simulator and the compile
//! service do *today*.  This module runs a pinned workload matrix —
//! Gabriel-style simulator kernels (tak, exptl, loopn, horner),
//! service batches at `jobs = 1/2/8`, and compile-server bursts at
//! `clients = 1/4/16` — with warmup + N timed trials,
//! reduces each series to median and p90 by nearest rank, and appends
//! one entry per invocation to `BENCH_sim.json` and
//! `BENCH_service.json` at the repo root:
//!
//! ```text
//! [ { schema, rev, date, unix_time, warmup, trials, workloads|batches: [...] }, ... ]
//! ```
//!
//! The files are *append-only trajectories*: one entry per commit, so
//! `git log` plus the JSON gives retired-instructions/sec and
//! functions/sec over the repo's history.  Entry shapes are pinned by
//! schema goldens (`tests/golden_json.rs`); `perfbench --check` runs a
//! 1-trial smoke of the smallest workload and validates shapes without
//! touching the trajectory files.

use std::path::{Path, PathBuf};
use std::time::Instant;

use s1lisp::{Compiler, Value};
use s1lisp_driver::{CompileService, ServiceConfig};
use s1lisp_server::{CompileServer, ServeClient, ServerConfig};
use s1lisp_trace::json::{self, Json};

use crate::corpus;
use crate::service::service_units;

/// One simulator kernel in the pinned matrix.
pub struct SimKernel {
    /// Stable name the trajectory (and `report --flame`) is keyed by.
    pub id: &'static str,
    /// Corpus source text.
    pub src: &'static str,
    /// Entry function name.
    pub entry: &'static str,
    /// Entry arguments.
    pub args: Vec<Value>,
}

fn fx(n: i64) -> Value {
    Value::Fixnum(n)
}

/// The pinned kernel matrix.  Order is the file order; ids are stable
/// names the trajectory is keyed by.
pub fn sim_kernels() -> Vec<SimKernel> {
    vec![
        SimKernel {
            id: "tak",
            src: corpus::TAK,
            entry: "tak",
            args: vec![fx(14), fx(10), fx(6)],
        },
        SimKernel {
            id: "exptl",
            src: corpus::EXPTL,
            entry: "exptl",
            args: vec![fx(3), fx(10), fx(1)],
        },
        SimKernel {
            id: "loopn",
            src: corpus::LOOPN,
            entry: "loopn",
            args: vec![fx(100_000)],
        },
        SimKernel {
            id: "horner",
            src: corpus::HORNER_LOOP,
            entry: "sum-horner",
            args: vec![fx(2_000)],
        },
        // 1200 iterations × 500 conses overruns the 1Mi-word heap, so
        // every trial drives at least one collection and the heap.*
        // telemetry gets a trajectory signal.
        SimKernel {
            id: "gc-stress",
            src: corpus::GC_STRESS,
            entry: "gc-stress",
            args: vec![fx(1_200)],
        },
    ]
}

/// The smallest kernel, for `--check`.
fn smoke_kernel() -> SimKernel {
    SimKernel {
        id: "exptl",
        src: corpus::EXPTL,
        entry: "exptl",
        args: vec![fx(3), fx(10), fx(1)],
    }
}

/// Nearest-rank percentile of an unsorted series (p in 0..=100).
fn percentile(series: &[u64], p: u64) -> u64 {
    assert!(!series.is_empty());
    let mut sorted = series.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// `(median, p90)` of a series.
fn stats(series: &[u64]) -> (u64, u64) {
    (percentile(series, 50), percentile(series, 90))
}

/// Times `trials` runs of one kernel (after `warmup` untimed runs) and
/// returns its workload object.
fn run_sim_kernel(k: &SimKernel, warmup: usize, trials: usize) -> Json {
    let mut c = Compiler::new();
    c.compile_str(k.src)
        .unwrap_or_else(|e| panic!("{} compiles: {e}", k.id));
    let mut m = c.machine();
    for _ in 0..warmup {
        m.run(k.entry, &k.args)
            .unwrap_or_else(|e| panic!("{} warms up: {e}", k.id));
    }
    let mut wall_ns = Vec::with_capacity(trials);
    let mut per_sec = Vec::with_capacity(trials);
    let mut insns = 0;
    for _ in 0..trials {
        m.run(k.entry, &k.args)
            .unwrap_or_else(|e| panic!("{} runs: {e}", k.id));
        // Per-trial delta, not the machine's cumulative counter — the
        // warmup runs above already retired instructions on `m`.
        insns = m.last_run_insns;
        let ns = m.last_run_wall_ns.max(1);
        wall_ns.push(ns);
        per_sec.push((insns as u128 * 1_000_000_000 / ns as u128) as u64);
    }
    let (median_ps, p90_ps) = stats(&per_sec);
    let (median_ns, p90_ns) = stats(&wall_ns);
    // GC signal for the trajectory: collections are cumulative over the
    // entry's warmup + trials (the machine persists across runs, as the
    // heap would in a long-lived image); live words are the last
    // collection's live-set sample, 0 if the kernel never collected.
    let gc_collections = m.stats.heap.collections;
    let gc_live_words = m
        .heap
        .telemetry()
        .live_samples
        .last()
        .map_or(0, |s| s.live_words);
    obj(vec![
        ("id", Json::str(k.id)),
        ("entry", Json::str(k.entry)),
        ("insns", Json::uint(insns)),
        ("median_insns_per_sec", Json::uint(median_ps)),
        ("p90_insns_per_sec", Json::uint(p90_ps)),
        ("median_wall_us", Json::uint(median_ns / 1_000)),
        ("p90_wall_us", Json::uint(p90_ns / 1_000)),
        ("gc_collections", Json::uint(gc_collections)),
        ("gc_live_words", Json::uint(gc_live_words)),
    ])
}

/// The kernels the bytecode backend is benchmarked on (`bc-*` rows):
/// the four Gabriel-style kernels, without the GC stressor — the stack
/// evaluator allocates on the host heap and has no collector to meter.
fn bc_kernels() -> Vec<SimKernel> {
    sim_kernels()
        .into_iter()
        .filter(|k| k.id != "gc-stress")
        .collect()
}

/// Times `trials` runs of one kernel compiled by the *bytecode* backend
/// and run on the stack evaluator.  The row shape matches
/// [`run_sim_kernel`]'s (ids are prefixed `bc-`, and the GC columns are
/// zero) so the trajectory schema stays uniform and `--compare` keys
/// the rows the same way.
fn run_bc_kernel(k: &SimKernel, warmup: usize, trials: usize) -> Json {
    let mut c = Compiler::new();
    c.backend = s1lisp::BackendKind::Bytecode;
    c.compile_str(k.src)
        .unwrap_or_else(|e| panic!("{} compiles to bytecode: {e}", k.id));
    let mut e = c.evaluator();
    for _ in 0..warmup {
        e.run(k.entry, &k.args)
            .unwrap_or_else(|t| panic!("{} warms up: {t}", k.id));
    }
    let mut wall_ns = Vec::with_capacity(trials);
    let mut per_sec = Vec::with_capacity(trials);
    let mut insns = 0;
    for _ in 0..trials {
        let start = Instant::now();
        e.run(k.entry, &k.args)
            .unwrap_or_else(|t| panic!("{} runs: {t}", k.id));
        let ns = u64::try_from(start.elapsed().as_nanos())
            .unwrap_or(u64::MAX)
            .max(1);
        insns = e.last_run_insns;
        wall_ns.push(ns);
        per_sec.push((insns as u128 * 1_000_000_000 / ns as u128) as u64);
    }
    let (median_ps, p90_ps) = stats(&per_sec);
    let (median_ns, p90_ns) = stats(&wall_ns);
    obj(vec![
        ("id", Json::str(format!("bc-{}", k.id))),
        ("entry", Json::str(k.entry)),
        ("insns", Json::uint(insns)),
        ("median_insns_per_sec", Json::uint(median_ps)),
        ("p90_insns_per_sec", Json::uint(p90_ps)),
        ("median_wall_us", Json::uint(median_ns / 1_000)),
        ("p90_wall_us", Json::uint(p90_ns / 1_000)),
        ("gc_collections", Json::uint(0)),
        ("gc_live_words", Json::uint(0)),
    ])
}

/// Times `trials` cold batches (fresh service each, so every trial is
/// real compilation) at one worker count, plus one warm re-batch on the
/// last service to record the cache-served hit rate.
fn run_service_batch(jobs: usize, warmup: usize, trials: usize) -> Json {
    let units = service_units();
    let run_cold = || {
        let service = CompileService::new(ServiceConfig {
            jobs,
            ..ServiceConfig::default()
        });
        let start = std::time::Instant::now();
        let batch = service.compile_batch(&units);
        let wall_us = u64::try_from(start.elapsed().as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        (service, batch, wall_us)
    };
    for _ in 0..warmup {
        run_cold();
    }
    let mut wall_us_series = Vec::with_capacity(trials);
    let mut per_sec = Vec::with_capacity(trials);
    let mut last = None;
    for _ in 0..trials {
        let (service, batch, wall_us) = run_cold();
        wall_us_series.push(wall_us);
        per_sec.push(batch.stats.functions as u64 * 1_000_000 / wall_us);
        last = Some((service, batch));
    }
    let (service, batch) = last.expect("at least one trial");
    // A warm re-batch on the same service: every function is served
    // from cache, which is the hit-rate half of the throughput story.
    let warm = service.compile_batch(&units);
    let (median_ps, p90_ps) = stats(&per_sec);
    let (median_us, p90_us) = stats(&wall_us_series);
    obj(vec![
        ("jobs", Json::uint(jobs as u64)),
        ("functions", Json::uint(batch.stats.functions as u64)),
        ("median_functions_per_sec", Json::uint(median_ps)),
        ("p90_functions_per_sec", Json::uint(p90_ps)),
        ("median_wall_us", Json::uint(median_us)),
        ("p90_wall_us", Json::uint(p90_us)),
        ("queue_peak", Json::uint(batch.stats.queue_peak as u64)),
        ("incidents", Json::uint(batch.incidents.len() as u64)),
        (
            "cold_hit_rate_permille",
            Json::uint(batch.stats.cache.hit_rate_permille()),
        ),
        (
            "warm_hit_rate_permille",
            Json::uint(warm.stats.cache.hit_rate_permille()),
        ),
    ])
}

/// The unit every load client compiles into its tenant at session
/// start; the timed requests then `run` it through the full admission
/// queue → worker → tenant-replay path.
const SERVE_UNIT: &str = "(defun poke (x) (* (+ x 3) 2))";

/// Timed `run` requests per client in one serve burst.
const SERVE_REQUESTS_PER_CLIENT: usize = 16;

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros())
        .unwrap_or(u64::MAX)
        .max(1)
}

/// One burst against a live server: `clients` concurrent connections,
/// each joining its own tenant, compiling [`SERVE_UNIT`] once, then
/// issuing `per_client` timed `run` requests.  Returns the burst wall
/// time, every request latency, and the backpressure-rejection count
/// (rejections are first-class responses, so nothing is dropped).
fn serve_burst(port: u16, clients: usize, per_client: usize) -> (u64, Vec<u64>, u64) {
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = ServeClient::connect(&format!("127.0.0.1:{port}"))
                    .expect("connect load client");
                assert!(c.hello(&format!("load{i}"), None).expect("hello").ok);
                assert!(c.compile("load-unit", SERVE_UNIT).expect("compile").ok);
                let mut latencies = Vec::with_capacity(per_client);
                let mut rejected = 0u64;
                for _ in 0..per_client {
                    let t = Instant::now();
                    let resp = c.run("poke", &["4"]).expect("run");
                    latencies.push(elapsed_us(t));
                    if resp.retry_after_ms > 0 {
                        rejected += 1;
                    } else {
                        assert!(resp.ok, "{:?}", resp.error);
                    }
                }
                (latencies, rejected)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut rejected = 0;
    for t in threads {
        let (lat, rej) = t.join().expect("load client thread");
        latencies.extend(lat);
        rejected += rej;
    }
    (elapsed_us(start), latencies, rejected)
}

/// Nearest-rank p90 over a merged `(bound, count)` histogram; an
/// observation that fell past the last bound reports that bound (the
/// histogram cannot resolve further).
fn histogram_p90(buckets: &[(u64, u64)], overflow: u64) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, n)| n).sum::<u64>() + overflow;
    if total == 0 {
        return 0;
    }
    let rank = (90 * total).div_ceil(100).max(1);
    let mut cum = 0;
    for &(bound, n) in buckets {
        cum += n;
        if cum >= rank {
            return bound;
        }
    }
    buckets.last().map_or(0, |&(b, _)| b)
}

/// Times `trials` serve bursts (a fresh *durable* daemon each, after
/// `warmup` untimed bursts) at one client count and returns the serve
/// row: sustained requests/sec over the burst, per-request p90 latency,
/// and the write-ahead-journal overhead columns (every client's
/// namespace compile is journaled + fsynced before its ack).
fn run_serve_load(clients: usize, warmup: usize, trials: usize) -> Json {
    let per_client = SERVE_REQUESTS_PER_CLIENT;
    let requests = (clients * per_client) as u64;
    let mut per_sec = Vec::with_capacity(trials);
    let mut latencies = Vec::new();
    let mut rejected = 0;
    let mut journal_appends = 0u64;
    let mut append_buckets: Vec<(u64, u64)> = Vec::new();
    let mut append_overflow = 0u64;
    for phase in 0..warmup + trials {
        let state_dir = std::env::temp_dir().join(format!(
            "s1lisp-perfserve-{}-c{clients}-p{phase}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&state_dir);
        let handle = CompileServer::new(ServerConfig {
            state_dir: Some(state_dir.clone()),
            ..ServerConfig::default()
        })
        .serve_tcp(0)
        .expect("bind an ephemeral port");
        let (wall_us, lat, rej) = serve_burst(handle.port(), clients, per_client);
        let snapshot = handle.metrics_snapshot();
        handle.shutdown();
        handle.join();
        let _ = std::fs::remove_dir_all(&state_dir);
        if phase < warmup {
            continue;
        }
        per_sec.push(requests * 1_000_000 / wall_us);
        latencies.extend(lat);
        rejected += rej;
        journal_appends += snapshot.counter("server.journal.appends").unwrap_or(0);
        if let Some(h) = snapshot.histogram("server.journal.append_us") {
            if append_buckets.is_empty() {
                append_buckets = h.buckets.clone();
            } else {
                for (acc, fresh) in append_buckets.iter_mut().zip(&h.buckets) {
                    acc.1 += fresh.1;
                }
            }
            append_overflow += h.overflow;
        }
    }
    let (median_ps, _) = stats(&per_sec);
    obj(vec![
        ("clients", Json::uint(clients as u64)),
        ("requests", Json::uint(requests)),
        ("median_requests_per_sec", Json::uint(median_ps)),
        ("p90_latency_us", Json::uint(percentile(&latencies, 90))),
        ("rejected", Json::uint(rejected)),
        ("journal_appends", Json::uint(journal_appends)),
        (
            "journal_append_p90_us",
            Json::uint(histogram_p90(&append_buckets, append_overflow)),
        ),
    ])
}

/// Days-from-epoch → `YYYY-MM-DD` (civil-from-days, Hinnant's
/// algorithm), so the trajectory stamps dates without a time crate.
fn civil_date(unix_time: u64) -> String {
    let days = (unix_time / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// `git rev-parse HEAD` in `repo_root`, or `"unknown"` outside a
/// checkout (the harness must run anywhere the crate builds).
fn git_rev(repo_root: &Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(repo_root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn entry_header(repo_root: &Path, warmup: usize, trials: usize) -> Vec<(&'static str, Json)> {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    vec![
        ("schema", Json::uint(1)),
        ("rev", Json::str(git_rev(repo_root))),
        ("date", Json::str(civil_date(unix_time))),
        ("unix_time", Json::uint(unix_time)),
        ("warmup", Json::uint(warmup as u64)),
        ("trials", Json::uint(trials as u64)),
    ]
}

/// One `BENCH_sim.json` entry: the full kernel matrix on the S-1
/// simulator, then the four `bc-*` rows on the bytecode evaluator.
pub fn sim_entry(repo_root: &Path, warmup: usize, trials: usize) -> Json {
    let mut workloads: Vec<Json> = sim_kernels()
        .iter()
        .map(|k| run_sim_kernel(k, warmup, trials))
        .collect();
    workloads.extend(
        bc_kernels()
            .iter()
            .map(|k| run_bc_kernel(k, warmup, trials)),
    );
    let mut fields = entry_header(repo_root, warmup, trials);
    fields.push(("workloads", Json::Arr(workloads)));
    obj(fields)
}

/// One `BENCH_service.json` entry: batches at `jobs = 1/2/8`, plus
/// compile-server bursts at `clients = 1/4/16`.
pub fn service_entry(repo_root: &Path, warmup: usize, trials: usize) -> Json {
    let batches = [1usize, 2, 8]
        .iter()
        .map(|&jobs| run_service_batch(jobs, warmup, trials))
        .collect();
    let serves = [1usize, 4, 16]
        .iter()
        .map(|&clients| run_serve_load(clients, warmup, trials))
        .collect();
    let mut fields = entry_header(repo_root, warmup, trials);
    fields.push(("batches", Json::Arr(batches)));
    fields.push(("serves", Json::Arr(serves)));
    obj(fields)
}

/// A 1-trial smoke entry over the smallest kernel on both backends —
/// the `--check` workload.  Same entry schema as [`sim_entry`].
pub fn smoke_sim_entry(repo_root: &Path) -> Json {
    let workloads = vec![
        run_sim_kernel(&smoke_kernel(), 0, 1),
        run_bc_kernel(&smoke_kernel(), 0, 1),
    ];
    let mut fields = entry_header(repo_root, 0, 1);
    fields.push(("workloads", Json::Arr(workloads)));
    obj(fields)
}

/// A 1-trial smoke entry with a single `jobs = 1` batch and a single
/// 1-client serve burst — the `--check` workload.  Same entry schema
/// as [`service_entry`].
pub fn smoke_service_entry(repo_root: &Path) -> Json {
    let batches = vec![run_service_batch(1, 0, 1)];
    let serves = vec![run_serve_load(1, 0, 1)];
    let mut fields = entry_header(repo_root, 0, 1);
    fields.push(("batches", Json::Arr(batches)));
    fields.push(("serves", Json::Arr(serves)));
    obj(fields)
}

/// The repo root this workspace builds from.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Appends `entry` to the JSON-array trajectory at `path` (created as a
/// one-entry array when absent).  Existing entries are preserved
/// verbatim-modulo-reserialization; a file that fails to parse is an
/// error — the trajectory is history and must never be clobbered.
pub fn append_trajectory(path: &Path, entry: Json) -> Result<usize, String> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => match json::parse(&text)? {
            Json::Arr(entries) => entries,
            _ => return Err(format!("{}: expected a JSON array", path.display())),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    entries.push(entry);
    let count = entries.len();
    let mut body = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        body.push_str(&e.to_string());
        if i + 1 < entries.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("]\n");
    // Write-then-rename so a crash mid-write can never truncate the
    // history: the original file is replaced atomically or not at all.
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, body).map_err(|e| format!("{}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(count)
}

/// Reads a trajectory file (a JSON array of entries) without modifying
/// it.  A missing file is an empty trajectory, not an error — a fresh
/// checkout has baselines only after the first `perfbench` run.
///
/// # Errors
///
/// Returns a description when the file exists but is unreadable or is
/// not a JSON array.
pub fn load_trajectory(path: &Path) -> Result<Vec<Json>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => match json::parse(&text)? {
            Json::Arr(entries) => Ok(entries),
            _ => Err(format!("{}: expected a JSON array", path.display())),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Default `--compare` tolerance, percent below the best baseline.
pub const DEFAULT_COMPARE_TOLERANCE: u64 = 20;

/// One workload's fresh-vs-baseline verdict from [`compare_entry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comparison {
    /// Workload key (`"tak"`, …, or `"jobs=8"`).
    pub workload: String,
    /// The throughput metric compared.
    pub metric: &'static str,
    /// Freshly measured median.
    pub measured: u64,
    /// Best (maximum) median for this workload across the baseline
    /// trajectory.
    pub baseline: u64,
    /// The pass floor: `baseline * (100 - tolerance) / 100`.
    pub floor: u64,
    /// Whether `measured` fell below `floor`.
    pub regressed: bool,
}

/// The `(key, throughput-metric)` pair a trajectory row is compared by:
/// sim rows are keyed by `id`, service rows by `jobs=N`, serve rows by
/// `clients=N`.
fn row_key_metric(row: &Json) -> Option<(String, &'static str)> {
    if let Some(id) = row.get("id").and_then(Json::as_str) {
        return Some((id.to_string(), "median_insns_per_sec"));
    }
    if let Some(clients) = row.get("clients").and_then(Json::as_int) {
        return Some((format!("clients={clients}"), "median_requests_per_sec"));
    }
    let jobs = row.get("jobs").and_then(Json::as_int)?;
    Some((format!("jobs={jobs}"), "median_functions_per_sec"))
}

fn entry_rows(entry: &Json) -> Vec<&Json> {
    ["workloads", "batches", "serves"]
        .iter()
        .filter_map(|key| entry.get(key).and_then(Json::as_arr))
        .flat_map(|rows| rows.iter())
        .collect()
}

/// Compares a freshly measured entry against a baseline trajectory.
///
/// For every workload row in `fresh`, the baseline is the *best*
/// (maximum) median recorded for that workload anywhere in
/// `baselines` — comparing against the best ever, not the latest,
/// keeps a slow regression from ratcheting the bar down one tolerable
/// step at a time.  A workload passes while its measured median stays
/// at or above `baseline * (100 - tolerance_percent) / 100`; workloads
/// with no baseline row (new kernels) are skipped, not failed.
pub fn compare_entry(fresh: &Json, baselines: &[Json], tolerance_percent: u64) -> Vec<Comparison> {
    let tolerance = tolerance_percent.min(100);
    let mut out = Vec::new();
    for row in entry_rows(fresh) {
        let Some((workload, metric)) = row_key_metric(row) else {
            continue;
        };
        let measured = row.get(metric).and_then(Json::as_int).unwrap_or(0).max(0) as u64;
        let baseline = baselines
            .iter()
            .flat_map(entry_rows)
            .filter(|r| row_key_metric(r).is_some_and(|(k, _)| k == workload))
            .filter_map(|r| r.get(metric).and_then(Json::as_int))
            .max()
            .unwrap_or(-1);
        if baseline < 0 {
            continue; // New workload: nothing to regress against.
        }
        let baseline = baseline as u64;
        let floor = baseline * (100 - tolerance) / 100;
        out.push(Comparison {
            workload,
            metric,
            measured,
            baseline,
            floor,
            regressed: measured < floor,
        });
    }
    out
}

/// Renders [`compare_entry`] verdicts as one aligned line each.
pub fn format_comparisons(comparisons: &[Comparison]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for c in comparisons {
        let verdict = if c.regressed { "REGRESSED" } else { "ok" };
        let _ = writeln!(
            out,
            "  {:<10} {:<24} measured={:>12} best-baseline={:>12} floor={:>12}  {}",
            c.workload, c.metric, c.measured, c.baseline, c.floor, verdict
        );
    }
    out
}

/// A short human summary of one entry, for the binary's stdout.
pub fn summarize_entry(entry: &Json) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let rev = entry.get("rev").and_then(Json::as_str).unwrap_or("?");
    let date = entry.get("date").and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(out, "rev {} date {date}", &rev[..rev.len().min(12)]);
    for row in entry_rows(entry) {
        if let Some(id) = row.get("id").and_then(Json::as_str) {
            let _ = writeln!(
                out,
                "  {id:<8} insns={} median_insns_per_sec={} p90={}",
                row.get("insns").and_then(Json::as_int).unwrap_or(0),
                row.get("median_insns_per_sec")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
                row.get("p90_insns_per_sec")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
            );
        } else if let Some(clients) = row.get("clients").and_then(Json::as_int) {
            let _ = writeln!(
                out,
                "  clients={clients} requests={} median_requests_per_sec={} \
                 p90_latency_us={} rejected={} journal_appends={} \
                 journal_append_p90_us={}",
                row.get("requests").and_then(Json::as_int).unwrap_or(0),
                row.get("median_requests_per_sec")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
                row.get("p90_latency_us")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
                row.get("rejected").and_then(Json::as_int).unwrap_or(0),
                row.get("journal_appends")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
                row.get("journal_append_p90_us")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
            );
        } else {
            let _ = writeln!(
                out,
                "  jobs={} functions={} median_functions_per_sec={} p90={} \
                 queue_peak={} incidents={} warm_hit_rate={}‰",
                row.get("jobs").and_then(Json::as_int).unwrap_or(0),
                row.get("functions").and_then(Json::as_int).unwrap_or(0),
                row.get("median_functions_per_sec")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
                row.get("p90_functions_per_sec")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
                row.get("queue_peak").and_then(Json::as_int).unwrap_or(0),
                row.get("incidents").and_then(Json::as_int).unwrap_or(0),
                row.get("warm_hit_rate_permille")
                    .and_then(Json::as_int)
                    .unwrap_or(0),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let series = [50, 10, 40, 20, 30];
        assert_eq!(percentile(&series, 50), 30);
        assert_eq!(percentile(&series, 90), 50);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 90), 7);
    }

    #[test]
    fn histogram_p90_walks_merged_buckets() {
        assert_eq!(histogram_p90(&[], 0), 0);
        assert_eq!(histogram_p90(&[(10, 10)], 0), 10);
        assert_eq!(histogram_p90(&[(10, 1), (100, 9)], 0), 100);
        assert_eq!(histogram_p90(&[(10, 9), (100, 1)], 0), 10);
        // A p90 that lands in the overflow reports the last bound the
        // histogram can resolve.
        assert_eq!(histogram_p90(&[(10, 1)], 99), 10);
    }

    #[test]
    fn civil_date_round_trips_known_days() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(86_400), "1970-01-02");
        // 2026-08-08 00:00:00 UTC.
        assert_eq!(civil_date(1_786_147_200), "2026-08-08");
        // Leap day.
        assert_eq!(civil_date(951_782_400), "2000-02-29");
    }

    #[test]
    fn smoke_entries_share_schema_with_full_entries() {
        // The --check smoke and the real harness must emit the same
        // shape, or the schema goldens would only cover the smoke.
        let root = repo_root();
        let smoke = smoke_sim_entry(&root);
        let full = sim_entry(&root, 0, 1);
        assert_eq!(json::schema(&smoke), json::schema(&full));
        let smoke = smoke_service_entry(&root);
        let full = service_entry(&root, 0, 1);
        assert_eq!(json::schema(&smoke), json::schema(&full));
    }

    /// A fabricated sim-style entry with one `tak` row at the given
    /// throughput.
    fn fab_sim(median: u64) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::uint(1)),
            (
                "workloads".to_string(),
                Json::Arr(vec![obj(vec![
                    ("id", Json::str("tak")),
                    ("median_insns_per_sec", Json::uint(median)),
                ])]),
            ),
        ])
    }

    fn fab_service(jobs: u64, median: u64) -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::uint(1)),
            (
                "batches".to_string(),
                Json::Arr(vec![obj(vec![
                    ("jobs", Json::uint(jobs)),
                    ("median_functions_per_sec", Json::uint(median)),
                ])]),
            ),
        ])
    }

    #[test]
    fn compare_passes_within_tolerance_and_fails_below_the_floor() {
        // Best baseline is 1000 (not the later 800): floor at 20% is 800.
        let baselines = [fab_sim(1000), fab_sim(800)];
        let pass = compare_entry(&fab_sim(800), &baselines, 20);
        assert_eq!(pass.len(), 1);
        assert_eq!(pass[0].workload, "tak");
        assert_eq!(pass[0].metric, "median_insns_per_sec");
        assert_eq!(pass[0].baseline, 1000);
        assert_eq!(pass[0].floor, 800);
        assert!(!pass[0].regressed);
        // A synthetic regression one unit below the floor is caught.
        let fail = compare_entry(&fab_sim(799), &baselines, 20);
        assert!(fail[0].regressed);
        let rendered = format_comparisons(&fail);
        assert!(rendered.contains("REGRESSED"), "{rendered}");
    }

    #[test]
    fn compare_keys_service_rows_by_job_count() {
        let baselines = [fab_service(8, 5000)];
        // jobs=8 matches its baseline; jobs=2 has none and is skipped.
        let fresh = Json::Obj(vec![(
            "batches".to_string(),
            Json::Arr(vec![
                obj(vec![
                    ("jobs", Json::uint(8)),
                    ("median_functions_per_sec", Json::uint(100)),
                ]),
                obj(vec![
                    ("jobs", Json::uint(2)),
                    ("median_functions_per_sec", Json::uint(100)),
                ]),
            ]),
        )]);
        let got = compare_entry(&fresh, &baselines, 50);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].workload, "jobs=8");
        assert_eq!(got[0].floor, 2500);
        assert!(got[0].regressed);
    }

    #[test]
    fn compare_keys_serve_rows_by_client_count() {
        let baseline = Json::Obj(vec![(
            "serves".to_string(),
            Json::Arr(vec![obj(vec![
                ("clients", Json::uint(4)),
                ("median_requests_per_sec", Json::uint(1000)),
            ])]),
        )]);
        let fresh = Json::Obj(vec![(
            "serves".to_string(),
            Json::Arr(vec![obj(vec![
                ("clients", Json::uint(4)),
                ("median_requests_per_sec", Json::uint(900)),
            ])]),
        )]);
        let got = compare_entry(&fresh, &[baseline], 20);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].workload, "clients=4");
        assert_eq!(got[0].metric, "median_requests_per_sec");
        assert!(!got[0].regressed);
    }

    #[test]
    fn compare_skips_workloads_with_no_baseline() {
        assert!(compare_entry(&fab_sim(1), &[], 20).is_empty());
        // Zero tolerance means any drop regresses; full tolerance none.
        let baselines = [fab_sim(1000)];
        assert!(compare_entry(&fab_sim(999), &baselines, 0)[0].regressed);
        assert!(!compare_entry(&fab_sim(0), &baselines, 100)[0].regressed);
    }

    #[test]
    fn trajectory_appends_and_preserves_history() {
        let path = std::env::temp_dir().join(format!("s1lisp-traj-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let entry = |n: u64| {
            Json::Obj(vec![
                ("schema".to_string(), Json::uint(1)),
                ("n".to_string(), Json::uint(n)),
            ])
        };
        assert_eq!(append_trajectory(&path, entry(1)), Ok(1));
        assert_eq!(append_trajectory(&path, entry(2)), Ok(2));
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = json::parse(&text).unwrap();
        let arr = parsed.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("n").unwrap().as_int(), Some(1));
        assert_eq!(arr[1].get("n").unwrap().as_int(), Some(2));
        // A corrupt trajectory is refused, never clobbered.
        std::fs::write(&path, "{not an array").unwrap();
        assert!(append_trajectory(&path, entry(3)).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{not an array");
        let _ = std::fs::remove_file(&path);
    }
}
