//! The durability demonstration record (`report --json durability`).
//!
//! One scripted crash drill against real on-disk state: a durable
//! server acknowledges a burst of mutations for two tenants, the
//! process "dies", and the journal files are damaged the two ways the
//! recovery ladder distinguishes — a torn tail (the fsync raced the
//! crash) for one tenant, a bit flip *inside* the log for the other.
//! A second server recovers the directory and the record reports what
//! survived: the torn tenant keeps every record before the tear with
//! byte-identical artifacts, the corrupt tenant is quarantined with a
//! pending `recovery` incident.  The script is deterministic, so the
//! record's *shape* never varies (`tests/golden_json.rs` pins it);
//! only byte counts and timings do.

use std::path::PathBuf;

use s1lisp_server::{tenant_fingerprint, Body, CompileServer, ServeClient, ServerConfig};
use s1lisp_trace::json::Json;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Mutations acknowledged per tenant before the simulated crash.
const MUTATIONS: usize = 6;

fn unit_source(i: usize) -> String {
    format!("(defun f{i} (x) (+ x {i}))")
}

fn journal_path(state_dir: &std::path::Path, tenant: &str) -> PathBuf {
    state_dir
        .join(format!("{:016x}", tenant_fingerprint(tenant)))
        .join("journal.log")
}

/// Builds the `durability` record: a durable burst, a simulated crash
/// with a torn tail and a mid-log corruption, and the recovery verdict
/// with the journal/recovery counters from both server lifetimes.
///
/// # Panics
///
/// Panics when the in-process server cannot bind, a transport call
/// fails, or the scripted damage cannot be applied — the record is a
/// demonstration, not a fault drill.
pub fn durability_record() -> Json {
    let state_dir = std::env::temp_dir().join(format!(
        "s1lisp-durability-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&state_dir);

    // Life one: a durable server acks a burst for two tenants.
    // `snapshot_every` is effectively off so every mutation is still in
    // the journal when the "crash" damages it.
    let config = || ServerConfig {
        state_dir: Some(state_dir.clone()),
        snapshot_every: u64::MAX,
        ..ServerConfig::default()
    };
    let handle = CompileServer::new(config())
        .serve_tcp(0)
        .expect("bind an ephemeral port");
    let addr = format!("127.0.0.1:{}", handle.port());
    let mut durable_acks = 0u64;
    let mut acked_artifacts: Vec<(String, String)> = Vec::new();
    for tenant in ["torn", "flipped"] {
        let mut client = ServeClient::connect(&addr).expect("connect");
        assert!(client.hello(tenant, None).expect("hello").ok);
        for i in 0..MUTATIONS {
            let resp = client
                .compile(&format!("u{i}"), &unit_source(i))
                .expect("compile");
            assert!(resp.ok, "{:?}", resp.error);
            if resp.durable {
                durable_acks += 1;
            }
            if tenant == "torn" {
                let Body::Compile { artifacts, .. } = &resp.body else {
                    panic!("compile body expected");
                };
                acked_artifacts.extend(
                    artifacts
                        .iter()
                        .map(|a| (a.name.clone(), a.to_json().to_string())),
                );
            }
        }
    }
    handle.shutdown();
    let life_one = handle.metrics_snapshot();
    handle.join();

    // The crash: tear the last journal record off one tenant's log and
    // flip a payload bit inside the other's.
    let torn_log = journal_path(&state_dir, "torn");
    let bytes = std::fs::read(&torn_log).expect("read torn journal");
    std::fs::write(&torn_log, &bytes[..bytes.len() - 3]).expect("tear the tail");
    let flipped_log = journal_path(&state_dir, "flipped");
    let mut bytes = std::fs::read(&flipped_log).expect("read flipped journal");
    bytes[8] ^= 0x80; // first payload byte of record 0: CRC breaks mid-log
    std::fs::write(&flipped_log, bytes).expect("flip a bit");

    // Life two: recovery walks the ladder before any request is served.
    let recovered = CompileServer::new(config());
    let recovery = recovered.metrics_snapshot();
    let torn_state = recovered.tenant("torn").expect("torn tenant recovered");
    let torn = torn_state.lock().expect("tenant lock");
    assert_eq!(torn.sources.len(), MUTATIONS - 1, "tail record torn off");
    let byte_identical = acked_artifacts
        .iter()
        .take(MUTATIONS - 1)
        .all(|(name, acked)| {
            torn.artifacts
                .get(name)
                .is_some_and(|got| &got.to_json().to_string() == acked)
        });
    let flipped_state = recovered.tenant("flipped").expect("quarantined tenant");
    let flipped = flipped_state.lock().expect("tenant lock");

    let counter = |snap: &s1lisp_trace::metrics::MetricsSnapshot, name: &str| {
        Json::uint(snap.counter(name).unwrap_or(0))
    };
    let record = obj(vec![
        ("id", Json::str("durability")),
        (
            "title",
            Json::str("write-ahead journal: torn-tail recovery and mid-log quarantine"),
        ),
        (
            "tenants",
            Json::Arr(vec![Json::str("torn"), Json::str("flipped")]),
        ),
        ("acked_mutations", Json::uint(2 * MUTATIONS as u64)),
        ("durable_acks", Json::uint(durable_acks)),
        (
            "torn",
            obj(vec![
                ("recovered_sources", Json::uint(torn.sources.len() as u64)),
                ("byte_identical_artifacts", Json::Bool(byte_identical)),
                ("incidents", Json::uint(torn.incidents)),
            ]),
        ),
        (
            "flipped",
            obj(vec![
                (
                    "recovered_sources",
                    Json::uint(flipped.sources.len() as u64),
                ),
                ("incidents", Json::uint(flipped.incidents)),
                (
                    "pending_incident",
                    Json::str(flipped.pending_incident.as_deref().unwrap_or("")),
                ),
            ]),
        ),
        (
            "journal",
            obj(vec![
                ("appends", counter(&life_one, "server.journal.appends")),
                ("bytes", counter(&life_one, "server.journal.bytes")),
                ("snapshots", counter(&life_one, "server.journal.snapshots")),
                ("io_errors", counter(&life_one, "server.journal.io_errors")),
            ]),
        ),
        (
            "recovery",
            obj(vec![
                ("tenants", counter(&recovery, "server.recovery.tenants")),
                (
                    "replayed_records",
                    counter(&recovery, "server.recovery.replayed_records"),
                ),
                (
                    "torn_tails",
                    counter(&recovery, "server.recovery.torn_tails"),
                ),
                (
                    "corrupt_journals",
                    counter(&recovery, "server.recovery.corrupt_journals"),
                ),
                (
                    "stale_records",
                    counter(&recovery, "server.recovery.stale_records"),
                ),
                (
                    "quarantined",
                    counter(&recovery, "server.recovery.quarantined"),
                ),
                (
                    "replay_failures",
                    counter(&recovery, "server.recovery.replay_failures"),
                ),
            ]),
        ),
    ]);
    drop(torn);
    drop(flipped);
    drop(recovered);
    let _ = std::fs::remove_dir_all(&state_dir);
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_record_walks_both_ladder_rungs() {
        let rec = durability_record();
        // Every mutation was acknowledged durable before the crash.
        assert_eq!(
            rec.get("durable_acks").and_then(Json::as_int),
            Some(2 * MUTATIONS as i64)
        );
        // The torn tenant kept the acked prefix, byte for byte.
        let torn = rec.get("torn").unwrap();
        assert_eq!(
            torn.get("recovered_sources").and_then(Json::as_int),
            Some(MUTATIONS as i64 - 1)
        );
        assert_eq!(
            torn.get("byte_identical_artifacts"),
            Some(&Json::Bool(true))
        );
        // The mid-log flip quarantined its tenant with one pending
        // recovery incident and no surviving sources.
        let flipped = rec.get("flipped").unwrap();
        assert_eq!(
            flipped.get("recovered_sources").and_then(Json::as_int),
            Some(0)
        );
        assert_eq!(flipped.get("incidents").and_then(Json::as_int), Some(1));
        assert_eq!(
            flipped.get("pending_incident").and_then(Json::as_str),
            Some("recovery")
        );
        // The ladder counters agree with the story.
        let recovery = rec.get("recovery").unwrap();
        assert_eq!(recovery.get("torn_tails").and_then(Json::as_int), Some(1));
        assert_eq!(
            recovery.get("corrupt_journals").and_then(Json::as_int),
            Some(1)
        );
        assert_eq!(recovery.get("quarantined").and_then(Json::as_int), Some(1));
    }
}
