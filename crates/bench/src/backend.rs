//! The `backend` report: the portable bytecode backend over the
//! experiment corpus, cross-checked against S-1 (`report --json
//! backend`).
//!
//! The record has two halves.  The *functions* table compiles every
//! corpus unit with the bytecode backend and reports each function's
//! code footprint (fixed-width instructions, so `code_bytes` is
//! `insns × 8`) and constant-pool size.  The *oracle* table is a
//! [`BackendSelect::Both`] batch: the S-1 artifacts ship, and every
//! oracle case runs on both engines — any disagreement appears as a
//! `miscompile` incident and bumps the top-level `miscompiles` count
//! the CI smoke greps for.  The shape is pinned by
//! `tests/golden/backend_schema.txt`.

use s1lisp::{BackendKind, Compiler};
use s1lisp_driver::{BackendSelect, BatchResult, CompileService, ServiceConfig, SourceUnit};
use s1lisp_trace::json::Json;

use crate::service::{oracle_cases, service_units};

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Batch-compiles the corpus in cross-backend oracle mode
/// ([`BackendSelect::Both`]): S-1 artifacts, with every oracle case
/// also run on the bytecode evaluator.
pub fn backend_batch() -> BatchResult {
    let cfg = ServiceConfig {
        jobs: 2,
        backend: BackendSelect::Both,
        oracle: oracle_cases(),
        ..ServiceConfig::default()
    };
    CompileService::new(cfg).compile_batch(&service_units())
}

/// One `functions` row per bytecode proto a unit defines (closure
/// protos included — they are code the backend emitted).
fn unit_rows(unit: &SourceUnit, rows: &mut Vec<Json>) {
    let mut c = Compiler::new();
    c.backend = BackendKind::Bytecode;
    c.compile_str(&unit.source)
        .unwrap_or_else(|e| panic!("{} compiles under bytecode: {e}", unit.name));
    let module = c.bytecode();
    for name in module.names() {
        let ix = module.lookup(name).expect("listed name resolves");
        let proto = module.proto(ix);
        rows.push(obj(vec![
            ("unit", Json::str(&unit.name)),
            ("function", Json::str(name)),
            ("backend", Json::str(BackendKind::Bytecode.name())),
            ("insns", Json::uint(proto.code.len() as u64)),
            ("code_bytes", Json::uint(proto.code_bytes() as u64)),
            ("consts", Json::uint(proto.consts.len() as u64)),
        ]));
    }
}

/// The machine-readable `backend` record.
pub fn backend_record() -> Json {
    let mut functions = Vec::new();
    for unit in &service_units() {
        unit_rows(unit, &mut functions);
    }
    let batch = backend_batch();
    let oracle = batch
        .cross
        .iter()
        .map(|v| {
            obj(vec![
                ("entry", Json::str(&v.entry)),
                ("matched", Json::Bool(v.matched)),
                ("s1", Json::str(&v.s1)),
                ("bytecode", Json::str(&v.bytecode)),
                ("injected", Json::Bool(v.injected)),
            ])
        })
        .collect();
    let miscompiles = batch
        .incidents
        .iter()
        .filter(|i| i.kind == s1lisp_driver::IncidentKind::Miscompile)
        .count() as u64;
    obj(vec![
        ("id", Json::str("backend")),
        (
            "title",
            Json::str("Bytecode backend footprint and cross-backend oracle"),
        ),
        ("backend", Json::str(BackendSelect::Both.as_str())),
        ("functions", Json::Arr(functions)),
        ("oracle", Json::Arr(oracle)),
        ("miscompiles", Json::uint(miscompiles)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_trace::json;

    #[test]
    fn cross_backend_oracle_agrees_over_the_corpus() {
        let batch = backend_batch();
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        assert!(!batch.cross.is_empty());
        for v in &batch.cross {
            assert!(
                v.matched,
                "{}: s1={} bytecode={}",
                v.entry, v.s1, v.bytecode
            );
        }
        assert!(batch
            .incidents
            .iter()
            .all(|i| i.kind != s1lisp_driver::IncidentKind::Miscompile));
        // The shipped artifacts are the S-1 side.
        assert!(batch.artifacts.iter().all(|a| a.backend == "s1"));
    }

    #[test]
    fn injected_bytecode_miscompile_is_caught_and_ships_s1() {
        use s1lisp_driver::{FaultPlan, FaultSite, IncidentKind, OracleCase};
        // Every oracle case's bytecode result is perturbed, so the
        // cross-backend oracle must disagree, record a miscompile, and
        // leave the S-1 artifact as the shipped one.
        let cfg = ServiceConfig {
            jobs: 2,
            backend: BackendSelect::Both,
            fault_plan: Some(FaultPlan::new(7).arm(FaultSite::Miscompile, 1000)),
            oracle: vec![OracleCase::new("quadratic", ["1.0", "-3.0", "2.0"])],
            ..ServiceConfig::default()
        };
        let batch = CompileService::new(cfg).compile_batch(&service_units());
        assert_eq!(batch.cross.len(), 1);
        let v = &batch.cross[0];
        assert!(v.injected);
        assert!(!v.matched, "s1={} bytecode={}", v.s1, v.bytecode);
        let incident = batch
            .incidents
            .iter()
            .find(|i| i.kind == IncidentKind::Miscompile)
            .expect("a miscompile incident");
        assert_eq!(incident.function, "quadratic");
        assert!(incident.recovered, "{incident:?}");
        assert_eq!(batch.artifact("quadratic").unwrap().backend, "s1");
    }

    #[test]
    fn record_counts_functions_and_parses() {
        let rec = backend_record();
        json::parse(&rec.to_string()).expect("well-formed JSON");
        let functions = rec.get("functions").unwrap().as_arr().unwrap();
        assert!(functions.len() >= 12, "{}", functions.len());
        // Closure protos ride along (e11's make-adder lambda).
        assert!(functions.iter().any(|f| f
            .get("function")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("λ")));
        for f in functions {
            let insns = f.get("insns").unwrap().as_int().unwrap();
            let bytes = f.get("code_bytes").unwrap().as_int().unwrap();
            assert_eq!(bytes, insns * 8, "fixed-width encoding");
        }
        assert_eq!(rec.get("miscompiles").unwrap().as_int(), Some(0));
    }
}
