//! The twelve experiments of DESIGN.md's index, each regenerating one
//! table, figure, or quantitative claim of the paper.

use std::fmt::Write as _;

use s1lisp::{CodegenOptions, Compiler, OptOptions, Value};
use s1lisp_codegen::array_demo::{self, Allocator, Statement};

use crate::corpus;

/// One experiment: id, paper artifact, regenerator.
pub struct Experiment {
    /// Experiment id (`e1` … `e12`).
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// Runs the experiment, returning the printed report.
    pub run: fn() -> String,
}

/// All experiments, in index order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e1",
            title: "Table 1 — phase structure",
            run: e1,
        },
        Experiment {
            id: "e2",
            title: "Table 2 + §4.1 — internal tree & back-translation",
            run: e2,
        },
        Experiment {
            id: "e3",
            title: "§5 — boolean short-circuiting derivation",
            run: e3,
        },
        Experiment {
            id: "e4",
            title: "§2 — exptl tail recursion (stack behavior)",
            run: e4,
        },
        Experiment {
            id: "e5",
            title: "§6.1 — Z[I,K] matrix statements and the RT dance",
            run: e5,
        },
        Experiment {
            id: "e6",
            title: "Table 3 + §6.2 — representation analysis",
            run: e6,
        },
        Experiment {
            id: "e7",
            title: "§6.3 — pdl numbers vs heap allocation",
            run: e7,
        },
        Experiment {
            id: "e8",
            title: "Table 4 + §7 — the testfn compilation",
            run: e8,
        },
        Experiment {
            id: "e9",
            title: "§1 — Fateman-style numeric comparison",
            run: e9,
        },
        Experiment {
            id: "e10",
            title: "§4.4 — deep binding with cached lookups",
            run: e10,
        },
        Experiment {
            id: "e11",
            title: "§4.4 — binding annotation (closures only when needed)",
            run: e11,
        },
        Experiment {
            id: "e12",
            title: "§5/§6 — whole-compiler ablation",
            run: e12,
        },
    ]
}

/// Runs one experiment by id.
pub fn run_experiment(id: &str) -> Option<String> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)())
}

fn fx(n: i64) -> Value {
    Value::Fixnum(n)
}

fn fl(x: f64) -> Value {
    Value::Flonum(x)
}

fn compile(src: &str) -> Compiler {
    let mut c = Compiler::new();
    c.compile_str(src).expect("experiment source compiles");
    c
}

fn compile_with(src: &str, options: CodegenOptions) -> Compiler {
    let mut c = Compiler::new();
    c.codegen_options = options;
    c.compile_str(src).expect("experiment source compiles");
    c
}

// --------------------------------------------------------------------- E1

fn e1() -> String {
    let mut out = String::from("Phase structure (paper's Table 1 → this reproduction):\n\n");
    for p in s1lisp::phases() {
        let status = match p.status {
            s1lisp::PhaseStatus::Implemented => "implemented",
            s1lisp::PhaseStatus::OptionalExtension => "optional extension",
            s1lisp::PhaseStatus::Subsumed => "subsumed",
        };
        let b = if p.bracketed_in_paper {
            " [bracketed in 1982]"
        } else {
            ""
        };
        let _ = writeln!(out, "  {:<36} {status:<20}{b}", p.name);
        let _ = writeln!(out, "      → {}", p.module);
    }
    out
}

// --------------------------------------------------------------------- E2

fn e2() -> String {
    let mut c = Compiler::new();
    c.opt_options = OptOptions::none();
    c.compile_str(corpus::QUADRATIC).unwrap();
    let f = c.function("quadratic").unwrap();
    let mut out =
        String::from("quadratic, converted to the internal tree and back-translated (§4.1):\n\n");
    out.push_str(&f.converted);
    out.push_str("\n\nConstruct set used (must be within Table 2):\n  ");
    let mut kinds: Vec<&str> = s1lisp_ast::subtree_nodes(&f.tree, f.tree.root)
        .into_iter()
        .map(|n| f.tree.kind(n).construct_name())
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    out.push_str(&kinds.join(" "));
    out.push('\n');
    out
}

// --------------------------------------------------------------------- E3

fn e3() -> String {
    let src = "(defun f (a b c) (if (and a (or b c)) (e1) (e2)))
               (defun e1 () 1) (defun e2 () 2)";
    let c = compile(src);
    let f = c.function("f").unwrap();
    let mut out = String::from("Derivation transcript for (if (and a (or b c)) (e1) (e2)):\n\n");
    out.push_str(&f.transcript.to_string());
    out.push_str("\nFinal form:\n");
    out.push_str(&f.optimized);
    let mut m = c.machine();
    for (args, want) in [
        (vec![fx(1), fx(1), Value::Nil], 1),
        (vec![fx(1), Value::Nil, fx(1)], 1),
        (vec![fx(1), Value::Nil, Value::Nil], 2),
        (vec![Value::Nil, fx(1), fx(1)], 2),
    ] {
        let v = m.run("f", &args).unwrap();
        assert_eq!(v, fx(want));
    }
    let _ = writeln!(
        out,
        "\n\nRun over all truth combinations: closures constructed = {} (paper: none needed)",
        m.stats.closures_made
    );
    let code = c.disassemble("f").unwrap();
    let jumps = code.lines().filter(|l| l.contains("JMP")).count();
    let _ = writeln!(
        out,
        "Branch instructions in compiled f: {jumps} (pure jump code)"
    );
    out
}

// --------------------------------------------------------------------- E4

fn e4() -> String {
    let mut out =
        String::from("Tail recursion (compiled) vs recursion depth (interpreter without TCO):\n\n");
    let _ = writeln!(
        out,
        "  {:>10} {:>16} {:>16} {:>18} {:>12}",
        "n", "compiled depth", "compiled stack", "naive interp", "TCO interp"
    );
    let c = compile(corpus::LOOPN);
    let mut m = c.machine();
    let interp = c.interpreter();
    let mut tco = c.interpreter();
    tco.tco = true;
    for n in [10i64, 100, 1_000, 100_000, 1_000_000] {
        m.stats.reset();
        m.run("loopn", &[fx(n)]).unwrap();
        interp.stats.reset();
        let idepth: String = match interp.call("loopn", &[fx(n)]) {
            Ok(_) => interp.stats.max_depth.get().to_string(),
            Err(_) => format!("overflow @{}", interp.stats.max_depth.get()),
        };
        tco.stats.reset();
        tco.call("loopn", &[fx(n)]).unwrap();
        let _ = writeln!(
            out,
            "  {:>10} {:>16} {:>16} {:>18} {:>12}",
            n,
            m.stats.max_call_depth,
            m.stats.max_stack_words,
            idepth,
            tco.stats.max_depth.get()
        );
    }
    out.push_str(
        "\nThe compiled loop runs in O(1) frames and words at any n (§2: \"it cannot\n\
         produce stack overflow no matter how large n is\"); the naive strategy\n\
         overflows at a fixed depth; the trampolining interpreter (the dialect's\n\
         actual §2 semantics) matches the compiled behavior at tree-walking speed.\n",
    );
    // And exptl itself:
    let c = compile(corpus::EXPTL);
    let mut m = c.machine();
    m.run("exptl", &[fx(1), fx(1 << 40), fx(1)]).unwrap();
    let _ = writeln!(
        out,
        "exptl with n = 2^40: {} tail transfers, max frame depth {}",
        m.stats.tail_calls, m.stats.max_call_depth
    );
    out
}

// --------------------------------------------------------------------- E5

fn e5() -> String {
    let mut out = String::from("The §6.1 matrix statements, TNBIND vs naive allocation:\n\n");
    let _ = writeln!(
        out,
        "  {:<44} {:>6} {:>14}",
        "statement / allocator", "MOVs", "insns executed"
    );
    for (stmt, label) in [
        (Statement::WithScalar, "Z[I,K]:=A[I,J]*B[J,K]+C[I,K]+D"),
        (Statement::WithoutScalar, "Z[I,K]:=A[I,J]*B[J,K]+C[I,K]"),
    ] {
        for alloc in [Allocator::Tnbind, Allocator::Naive] {
            let (_, movs) = array_demo::compile_statement(stmt, alloc, "m");
            let (_, insns) = array_demo::run_statement(stmt, alloc).unwrap();
            let _ = writeln!(
                out,
                "  {:<44} {:>6} {:>14}",
                format!("{label} / {alloc:?}"),
                movs,
                insns
            );
        }
    }
    out.push_str(
        "\nTNBIND needs no MOV instructions on either statement — the hard one via\n\
         the paper's \"dance into RTA and then out again into TEMP\", expressed with\n\
         the S-1's memory-index addressing mode.\n",
    );
    out
}

// --------------------------------------------------------------------- E6

fn e6() -> String {
    let mut out = String::from("Table 3 — internal object representations:\n\n");
    use s1lisp_annotate::Rep;
    for (rep, desc) in [
        (Rep::Swfix, "36-bit integer"),
        (Rep::Dwfix, "72-bit integer"),
        (Rep::Hwflo, "18-bit floating-point number"),
        (Rep::Swflo, "36-bit floating-point number"),
        (Rep::Dwflo, "72-bit floating-point number"),
        (Rep::Twflo, "144-bit floating-point number"),
        (Rep::Hwcplx, "36-bit complex floating-point number"),
        (Rep::Swcplx, "72-bit complex floating-point number"),
        (Rep::Dwcplx, "144-bit complex floating-point number"),
        (Rep::Twcplx, "288-bit complex floating-point number"),
        (Rep::Pointer, "LISP pointer"),
        (Rep::Bit, "1-bit integer"),
        (Rep::Jump, "conditional jump"),
        (Rep::None_, "don't care (value not used)"),
    ] {
        let _ = writeln!(out, "  {rep:<10?} {desc}");
    }
    out.push_str("\n§6.2's if-expression example — (+$f (if p (sqrt$f q) (car s)) 3.0):\n");
    // Reproduce the ISREP decision via the ablation: with representation
    // analysis the sqrt arm needs no conversion.
    let src = "(defun g (p q s) (+$f (if p (sqrt$f q) (car s)) 3.0))
               (defun drive (n q)
                 (prog (r)
                   top
                   (if (zerop n) (return r))
                   (setq r (g t q (cons 1.0 '())))
                   (setq n (- n 1))
                   (go top)))";
    let on = compile(src);
    let off = compile_with(
        src,
        CodegenOptions {
            representation_analysis: false,
            ..CodegenOptions::default()
        },
    );
    let mut m1 = on.machine();
    let mut m2 = off.machine();
    let v1 = m1.run("drive", &[fx(2000), fl(2.0)]).unwrap();
    let v2 = m2.run("drive", &[fx(2000), fl(2.0)]).unwrap();
    assert_eq!(v1, v2);
    let _ = writeln!(
        out,
        "  with representation analysis:    {:>8} insns, {:>6} flonum boxes",
        m1.stats.insns, m1.stats.heap.flonums
    );
    let _ = writeln!(
        out,
        "  without (everything a pointer):  {:>8} insns, {:>6} flonum boxes",
        m2.stats.insns, m2.stats.heap.flonums
    );
    out
}

// --------------------------------------------------------------------- E7

fn e7() -> String {
    let mut out =
        String::from("Pdl numbers (§6.3): stack vs heap allocation of float temporaries\n\n");
    let _ = writeln!(
        out,
        "  {:<18} {:>12} {:>12} {:>12} {:>8}",
        "configuration", "flonum boxes", "pdl numbers", "certifies", "GCs"
    );
    let n = 20_000i64;
    for (label, pdl) in [("pdl numbers ON", true), ("pdl numbers OFF", false)] {
        let c = compile_with(
            corpus::PDL_KERNEL,
            CodegenOptions {
                pdl_numbers: pdl,
                ..CodegenOptions::default()
            },
        );
        // A small heap so the OFF configuration has to collect.
        let mut m = s1lisp_s1sim::Machine::with_sizes(c.program().clone(), 1 << 16, 20_000);
        m.run("pdl-loop", &[fx(n), fl(1.5), fl(2.5)]).unwrap();
        let _ = writeln!(
            out,
            "  {:<18} {:>12} {:>12} {:>12} {:>8}",
            label,
            m.stats.heap.flonums,
            m.stats.pdl_numbers,
            m.stats.certify_safe + m.stats.certify_copies,
            m.stats.heap.collections
        );
    }
    out.push_str(
        "\nWith pdl numbers, the per-iteration temporaries d and e live in the stack\n\
         frame and die with it — no heap traffic, no \"consequent garbage-collection\n\
         overhead\" (§6.2).\n",
    );
    out
}

// --------------------------------------------------------------------- E8

fn e8() -> String {
    let c = compile(corpus::TESTFN);
    let f = c.function("testfn").unwrap();
    let mut out = String::from("§7 — the complete compilation of testfn.\n\nConverted tree:\n");
    out.push_str(&f.converted);
    out.push_str("\n\nTranscript:\n");
    out.push_str(&f.transcript.to_string());
    out.push_str("\nOptimized tree:\n");
    out.push_str(&f.optimized);
    out.push_str("\n\nGenerated code (parenthesized assembly):\n");
    out.push_str(&c.disassemble("testfn").unwrap());
    let mut m = c.machine();
    m.run("testfn", &[fl(1.5), fl(2.5), fl(0.5)]).unwrap();
    let (p0, f0) = (m.stats.pdl_numbers, m.stats.heap.flonums);
    m.run("testfn", &[fl(1.5), fl(2.5), fl(0.5)]).unwrap();
    let _ = writeln!(
        out,
        "\nPer call (3 args): {} pdl numbers, {} heap flonums (3 of them argument\n\
         injection; the 4th is Table 4's \"Generate new number object\" for the\n\
         returned value).",
        m.stats.pdl_numbers - p0,
        m.stats.heap.flonums - f0,
    );
    out
}

// --------------------------------------------------------------------- E9

fn e9() -> String {
    let mut out = String::from(
        "Fateman-style numeric comparison (compiled Lisp vs hand assembly vs interpreter)\n\
         on the Horner kernel, 10k iterations:\n\n",
    );
    let n = 10_000i64;
    // Compiled Lisp, with the polynomial behind a function call.
    let c = compile(corpus::HORNER_LOOP);
    let mut m = c.machine();
    m.profile = Some(Box::new(s1lisp_s1sim::ExecProfile::new()));
    let lisp = m.run("sum-horner", &[fx(n)]).unwrap();
    let lisp_insns = m.stats.insns;
    // Compiled Lisp with the polynomial written inline (no call
    // boundary): the form the 1973 parity claim addressed.
    let ci = compile(corpus::HORNER_INLINE);
    let mut mi = ci.machine();
    let lisp_inline = mi.run("sum-horner-inline", &[fx(n)]).unwrap();
    let inline_insns = mi.stats.insns;
    // Hand-written machine code for the same kernel (the "FORTRAN"
    // stand-in: best code the target allows).
    let (hand, hand_insns) = hand_horner(n);
    // Interpreter.
    let interp = c.interpreter();
    let iv = interp.call("sum-horner", &[fx(n)]).unwrap();
    assert_eq!(lisp, iv);
    match (&lisp, &hand) {
        (Value::Flonum(a), Value::Flonum(b)) => assert!((a - b).abs() < 1e-6),
        _ => panic!("non-float results"),
    }
    match (&lisp_inline, &hand) {
        (Value::Flonum(a), Value::Flonum(b)) => assert!((a - b).abs() < 1e-6),
        _ => panic!("non-float results"),
    }
    let _ = writeln!(
        out,
        "  {:<28} {:>14} {:>10}",
        "configuration", "instructions", "ratio"
    );
    let _ = writeln!(
        out,
        "  {:<28} {:>14} {:>10.2}",
        "hand-written assembly", hand_insns, 1.0
    );
    let _ = writeln!(
        out,
        "  {:<28} {:>14} {:>10.2}",
        "compiled Lisp (inline poly)",
        inline_insns,
        inline_insns as f64 / hand_insns as f64
    );
    let _ = writeln!(
        out,
        "  {:<28} {:>14} {:>10.2}",
        "compiled Lisp (call per x)",
        lisp_insns,
        lisp_insns as f64 / hand_insns as f64
    );
    let _ = writeln!(
        out,
        "  {:<26} {:>14} {:>10}",
        "reference interpreter", "(tree-walks)", "~50-100x"
    );
    out.push_str(
        "\nThe 1973 Fateman experiment found compiled MacLISP numeric code comparable\n\
         to FORTRAN; here compiled Lisp is within a small factor of hand-written\n\
         machine code, the factor being calls + boxing at the function boundary.\n",
    );
    // Where the call-per-x configuration spends its cycles, from the
    // execution profile's per-function attribution (heaviest first).
    let profile = m.profile.take().expect("profile survives the run");
    let names = c.program().names();
    let per_fn = profile.per_fn();
    let total: u64 = per_fn.iter().map(|&(_, c)| c).sum();
    out.push_str("\nPer-function cycles (call-per-x configuration, runtime calls cost 8):\n");
    for (fnid, cycles) in per_fn {
        let name = names.resolve(fnid);
        let _ = writeln!(
            out,
            "  {:<28} {:>14} {:>9.1}%",
            name,
            cycles,
            100.0 * cycles as f64 / total as f64
        );
    }
    out
}

/// The Horner loop written directly in S-1 assembly (best-possible code).
fn hand_horner(n: i64) -> (Value, u64) {
    use s1lisp_s1sim::{Asm, CallTarget, Cond, Insn, Machine, Operand, Program, Reg};
    let mut asm = Asm::new("hand", 1);
    // R9 = acc, R10 = x, R11 = n (raw), all registers.
    asm.push(Insn::Mov {
        dst: Operand::Reg(Reg(9)),
        src: Operand::float(0.0),
    });
    asm.push(Insn::Mov {
        dst: Operand::Reg(Reg(10)),
        src: Operand::float(0.0),
    });
    asm.push(Insn::Mov {
        dst: Operand::Reg(Reg(11)),
        src: Operand::arg(0),
    });
    let top = asm.here();
    let done = asm.label();
    asm.push(Insn::JmpIf {
        cond: Cond::Eq,
        a: Operand::Reg(Reg(11)),
        b: Operand::fixnum(0),
        target: done,
    });
    // horner: ((1.0*x - 2.0)*x + 3.0)*x - 4.0, accumulated.
    asm.push(Insn::FMult {
        dst: Operand::Reg(Reg::RTA),
        a: Operand::Reg(Reg(10)),
        b: Operand::float(1.0),
    });
    asm.push(Insn::FAdd {
        dst: Operand::Reg(Reg::RTA),
        a: Operand::Reg(Reg::RTA),
        b: Operand::float(-2.0),
    });
    asm.push(Insn::FMult {
        dst: Operand::Reg(Reg::RTA),
        a: Operand::Reg(Reg::RTA),
        b: Operand::Reg(Reg(10)),
    });
    asm.push(Insn::FAdd {
        dst: Operand::Reg(Reg::RTA),
        a: Operand::Reg(Reg::RTA),
        b: Operand::float(3.0),
    });
    asm.push(Insn::FMult {
        dst: Operand::Reg(Reg::RTA),
        a: Operand::Reg(Reg::RTA),
        b: Operand::Reg(Reg(10)),
    });
    asm.push(Insn::FAdd {
        dst: Operand::Reg(Reg::RTA),
        a: Operand::Reg(Reg::RTA),
        b: Operand::float(-4.0),
    });
    asm.push(Insn::FAdd {
        dst: Operand::Reg(Reg(9)),
        a: Operand::Reg(Reg(9)),
        b: Operand::Reg(Reg::RTA),
    });
    asm.push(Insn::FAdd {
        dst: Operand::Reg(Reg(10)),
        a: Operand::Reg(Reg(10)),
        b: Operand::float(0.001),
    });
    asm.push(Insn::Sub {
        dst: Operand::Reg(Reg(11)),
        a: Operand::Reg(Reg(11)),
        b: Operand::fixnum(1),
    });
    asm.push(Insn::Jmp { target: top });
    asm.bind(done);
    asm.push(Insn::BoxFlo {
        dst: Operand::Reg(Reg::A),
        src: Operand::Reg(Reg(9)),
    });
    asm.push(Insn::Ret);
    let _ = CallTarget::Func(0);
    let mut p = Program::new();
    p.define(asm.finish());
    let mut m = Machine::new(p);
    let v = m.run("hand", &[fx(n)]).unwrap();
    (v, m.stats.insns)
}

// -------------------------------------------------------------------- E10

fn e10() -> String {
    let mut out = String::from("Deep binding with cached lookups (§4.4), 5k-iteration loop:\n\n");
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>14} {:>12}",
        "configuration", "searches", "cached reads", "insns"
    );
    for (label, cached) in [("entry caching ON", true), ("caching OFF", false)] {
        let c = compile_with(
            corpus::SPECIALS_LOOP,
            CodegenOptions {
                cache_specials: cached,
                ..CodegenOptions::default()
            },
        );
        let mut m = c.machine();
        m.set_global("*step*", &fx(2)).unwrap();
        let v = m.run("accumulate", &[fx(5_000)]).unwrap();
        assert_eq!(v, fx(10_000));
        let _ = writeln!(
            out,
            "  {:<22} {:>10} {:>14} {:>12}",
            label, m.stats.special_searches, m.stats.special_cached, m.stats.insns
        );
    }
    out.push_str(
        "\n\"On entry to a function, all the special variables needed by that function\n\
         are searched for once … from then on each special variable can be accessed\n\
         indirectly through a cached pointer in constant time.\"\n",
    );
    out
}

// -------------------------------------------------------------------- E11

fn e11() -> String {
    let mut out = String::from("Binding annotation (§4.4): closures only when needed.\n\n");
    let c = compile(corpus::CLOSURES);
    let mut m = c.machine();
    m.run("use-let", &[fx(3)]).unwrap();
    let after_let = m.stats.closures_made;
    m.run("use-join", &[fx(1)]).unwrap();
    let after_join = m.stats.closures_made;
    m.run("escape-test", &[fx(5)]).unwrap();
    let after_escape = m.stats.closures_made;
    let _ = writeln!(out, "  {:<44} {:>10}", "lambda usage", "closures");
    let _ = writeln!(
        out,
        "  {:<44} {:>10}",
        "let binding (manifest lambda call)", after_let
    );
    let _ = writeln!(
        out,
        "  {:<44} {:>10}",
        "boolean join points (known call sites)",
        after_join - after_let
    );
    let _ = writeln!(
        out,
        "  {:<44} {:>10}",
        "escaping lambda (returned from make-adder)",
        after_escape - after_join
    );
    out.push_str(
        "\nOnly the genuinely escaping lambda constructs a run-time closure; the\n\
         others compile as frame bindings and parameter-passing gotos.\n",
    );
    out
}

// -------------------------------------------------------------------- E12

fn e12() -> String {
    let mut out = String::from(
        "Whole-compiler ablation: executed instructions (and code size in 36-bit\n\
         words) across the benchmark suite.\n\n",
    );
    let suite: Vec<(&str, &str, &str, Vec<Value>)> = vec![
        ("exptl", corpus::EXPTL, "exptl", vec![fx(3), fx(30), fx(1)]),
        (
            "exptl-typed",
            corpus::EXPTL_TYPED,
            "exptl-typed",
            vec![fx(3), fx(30), fx(1)],
        ),
        ("tak", corpus::TAK, "tak", vec![fx(14), fx(10), fx(6)]),
        ("fib-iter", corpus::FIB_ITER, "fib-iter", vec![fx(60)]),
        (
            "quadratic",
            corpus::QUADRATIC,
            "quadratic",
            vec![fl(1.0), fl(-3.0), fl(2.0)],
        ),
        (
            "quad-typed",
            corpus::QUADRATIC_TYPED,
            "quadratic-typed",
            vec![fl(1.0), fl(-3.0), fl(2.0)],
        ),
        (
            "sum-horner",
            corpus::HORNER_LOOP,
            "sum-horner",
            vec![fx(2_000)],
        ),
        ("dot-loop", corpus::DOT, "dot-loop", vec![fx(2_000)]),
        ("deriv", corpus::DERIV, "deriv-bench", {
            let mut i = s1lisp_reader::Interner::new();
            vec![fx(8), Value::Sym(i.intern("x"))]
        }),
    ];
    let _ = writeln!(
        out,
        "  {:<12} {:>14} {:>14} {:>8} {:>12} {:>12}",
        "program", "full insns", "naive insns", "ratio", "full words", "naive words"
    );
    let mut attributions: Vec<(&str, String)> = Vec::new();
    for (id, src, entry, args) in suite {
        let c1 = compile(src);
        let mut c2 = Compiler::unoptimized();
        c2.compile_str(src).unwrap();
        let mut m1 = c1.machine();
        let mut m2 = c2.machine();
        m1.profile = Some(Box::new(s1lisp_s1sim::ExecProfile::new()));
        let v1 = m1.run(entry, &args).unwrap();
        let v2 = m2.run(entry, &args).unwrap();
        assert_eq!(v1, v2, "{id}");
        let _ = writeln!(
            out,
            "  {:<12} {:>14} {:>14} {:>8.2} {:>12} {:>12}",
            id,
            m1.stats.insns,
            m2.stats.insns,
            m2.stats.insns as f64 / m1.stats.insns as f64,
            c1.code_size_words(),
            c2.code_size_words()
        );
        // Per-function cycle attribution of the full-compiler run,
        // heaviest first.
        let profile = m1.profile.take().expect("profile survives the run");
        let names = c1.program().names();
        let cells: Vec<String> = profile
            .per_fn()
            .into_iter()
            .map(|(fnid, cycles)| {
                let name = names.resolve(fnid);
                format!("{name} {cycles}")
            })
            .collect();
        attributions.push((id, cells.join(", ")));
    }
    out.push_str("\nPer-function cycles (full compiler, heaviest first; runtime calls cost 8):\n");
    for (id, cells) in attributions {
        let _ = writeln!(out, "  {id:<12} {cells}");
    }
    out.push_str("\n(naive = no source-level optimization, no tail calls, no pdl numbers,\n no special caching, no TNBIND, no representation analysis)\n");
    out
}
