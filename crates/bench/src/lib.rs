//! The experiment harness: one regenerator per table/figure/claim of the
//! paper (the experiment index lives in DESIGN.md; measured results in
//! EXPERIMENTS.md).
//!
//! Run everything with `cargo run -p s1lisp-bench --bin report`, or one
//! experiment with `… --bin report -- e4`.  Wall-clock timings of the
//! same workloads live in the Criterion bench (`cargo bench`).

pub mod backend;
pub mod corpus;
pub mod durability;
pub mod experiments;
pub mod explain;
pub mod flame;
pub mod json_report;
pub mod metrics_report;
pub mod passes;
pub mod perfbench;
pub mod serve;
pub mod service;

pub use backend::{backend_batch, backend_record};
pub use durability::durability_record;
pub use experiments::{all_experiments, run_experiment, Experiment};
pub use explain::{corpus_functions, explain_function};
pub use flame::{batch_events, chrome_trace, flame_report};
pub use json_report::{all_json_records, json_record, trap_record};
pub use metrics_report::{collect_metrics, metrics_record, metrics_report};
pub use passes::{passes_record, passes_report};
pub use serve::serve_record;
pub use service::{
    guard_batch, guard_miscompile_record, guard_record, oracle_cases, service_batch,
    service_batch_for, service_fault_record, service_record, service_record_for, service_report,
    service_units, GUARD_SEED,
};
