//! The `service` report: batch-compiling the experiment corpus through
//! the parallel compilation service (`report --jobs N [--cache-dir D]
//! service`).
//!
//! Two records share the machinery: the clean batch over every
//! experiment workload, and a demonstration batch with an injected
//! optimizer panic showing the degraded path ([`service_fault_record`]).
//! Both are schema-pinned by `tests/golden_json.rs`.

use std::path::PathBuf;

use s1lisp_driver::{
    BatchResult, CompileService, FaultInjection, FaultMode, ServiceConfig, SourceUnit,
};
use s1lisp_trace::json::Json;

use crate::json_report::workload;

/// One [`SourceUnit`] per experiment, named by experiment id.
pub fn service_units() -> Vec<SourceUnit> {
    crate::all_experiments()
        .iter()
        .filter_map(|e| workload(e.id).map(|wl| SourceUnit::new(e.id, wl.src)))
        .collect()
}

fn config(jobs: usize, cache_dir: Option<PathBuf>) -> ServiceConfig {
    ServiceConfig {
        jobs,
        cache_dir,
        ..ServiceConfig::default()
    }
}

/// Batch-compiles the corpus at the given worker count (with an
/// optional persistent cache directory).
pub fn service_batch(jobs: usize, cache_dir: Option<PathBuf>) -> BatchResult {
    CompileService::new(config(jobs, cache_dir)).compile_batch(&service_units())
}

fn record(id: &str, title: &str, batch: &BatchResult) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::str(id)),
        ("title".to_string(), Json::str(title)),
        ("batch".to_string(), batch.to_json()),
    ])
}

/// The machine-readable `service` record.
pub fn service_record(jobs: usize, cache_dir: Option<PathBuf>) -> Json {
    record(
        "service",
        "Compilation service batch over the experiment corpus",
        &service_batch(jobs, cache_dir),
    )
}

/// A demonstration record with a panic injected into one function's
/// optimization, exercising the incident/degradation surface: the batch
/// completes, `quadratic` comes back degraded, and every other function
/// is untouched.
pub fn service_fault_record() -> Json {
    let cfg = ServiceConfig {
        jobs: 4,
        fault: Some(FaultInjection {
            function: "quadratic".to_string(),
            mode: FaultMode::Panic,
        }),
        ..ServiceConfig::default()
    };
    let batch = CompileService::new(cfg).compile_batch(&service_units());
    record(
        "service-fault",
        "Compilation service degraded-path demonstration",
        &batch,
    )
}

/// The human-readable `service` report text.
pub fn service_report(jobs: usize, cache_dir: Option<PathBuf>) -> String {
    use std::fmt::Write as _;
    let batch = service_batch(jobs, cache_dir);
    let mut out = String::new();
    let s = &batch.stats;
    let _ = writeln!(
        out,
        "workers={} functions={} queue_peak={}",
        s.workers_used, s.functions, s.queue_peak
    );
    let _ = writeln!(
        out,
        "hit_rate={}% hits={} misses={} evictions={} disk_hits={}",
        batch.hit_rate_percent(),
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache.disk_hits
    );
    let _ = writeln!(
        out,
        "incidents={} failures={}",
        batch.incidents.len(),
        batch.failures.len()
    );
    for w in &s.workers {
        let _ = writeln!(
            out,
            "  worker {}: jobs={} wall_us={}",
            w.worker, w.jobs, w.wall_us
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:<10} {:>8} {:>9}",
        "function", "outcome", "insns", "wall_us"
    );
    for r in &batch.records {
        let insns = batch
            .artifacts
            .iter()
            .find(|a| a.name == r.function)
            .map_or(0, |a| a.insns);
        let _ = writeln!(
            out,
            "{:<14} {:<10} {:>8} {:>9}",
            r.function,
            r.outcome.as_str(),
            insns,
            r.wall_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_batch_compiles_cleanly() {
        let batch = service_batch(2, None);
        assert!(batch.stats.functions >= 12, "{}", batch.stats.functions);
        assert_eq!(batch.artifacts.len(), batch.stats.functions);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        assert!(batch.incidents.is_empty());
        // e10's proclaimed special must have reached its job.
        let acc = batch.artifact("accumulate").unwrap();
        assert!(acc.assembly.contains("%SPEC"), "{}", acc.assembly);
    }

    #[test]
    fn fault_record_reports_one_degraded_function() {
        let rec = service_fault_record();
        let batch = rec.get("batch").unwrap();
        let incidents = batch.get("incidents").unwrap().as_arr().unwrap();
        assert_eq!(incidents.len(), 1);
        assert_eq!(
            incidents[0].get("function").unwrap().as_str(),
            Some("quadratic")
        );
        assert_eq!(incidents[0].get("recovered").unwrap().as_bool(), Some(true));
    }
}
