//! The `service` report: batch-compiling the experiment corpus through
//! the parallel compilation service (`report --jobs N [--cache-dir D]
//! service`).
//!
//! Four records share the machinery: the clean batch over every
//! experiment workload, a demonstration batch with an injected
//! optimizer panic showing the degraded path ([`service_fault_record`]),
//! a guarded batch under a seeded fault storm ([`guard_record`]), and a
//! guaranteed oracle miscompile ([`guard_miscompile_record`]).  All are
//! schema-pinned by `tests/golden_json.rs`.

use std::path::PathBuf;

use s1lisp_driver::{
    BackendSelect, BatchResult, CompileService, FaultInjection, FaultMode, FaultPlan, FaultSite,
    OracleCase, ServiceConfig, SourceUnit,
};
use s1lisp_trace::json::Json;

use crate::json_report::workload;

/// One [`SourceUnit`] per experiment, named by experiment id.
pub fn service_units() -> Vec<SourceUnit> {
    crate::all_experiments()
        .iter()
        .filter_map(|e| workload(e.id).map(|wl| SourceUnit::new(e.id, wl.src)))
        .collect()
}

fn config(jobs: usize, cache_dir: Option<PathBuf>) -> ServiceConfig {
    ServiceConfig {
        jobs,
        cache_dir,
        ..ServiceConfig::default()
    }
}

/// Batch-compiles the corpus at the given worker count (with an
/// optional persistent cache directory).
pub fn service_batch(jobs: usize, cache_dir: Option<PathBuf>) -> BatchResult {
    service_batch_for(jobs, cache_dir, BackendSelect::S1)
}

/// [`service_batch`] with an explicit backend selection (`report
/// --backend s1|bytecode|both service`).  `Both` additionally runs the
/// cross-backend oracle over [`oracle_cases`].
pub fn service_batch_for(
    jobs: usize,
    cache_dir: Option<PathBuf>,
    backend: BackendSelect,
) -> BatchResult {
    let mut cfg = config(jobs, cache_dir);
    cfg.backend = backend;
    if backend.cross_checked() {
        cfg.oracle = oracle_cases();
    }
    CompileService::new(cfg).compile_batch(&service_units())
}

fn record(id: &str, title: &str, batch: &BatchResult) -> Json {
    Json::Obj(vec![
        ("id".to_string(), Json::str(id)),
        ("title".to_string(), Json::str(title)),
        ("batch".to_string(), batch.to_json()),
    ])
}

/// The machine-readable `service` record.
pub fn service_record(jobs: usize, cache_dir: Option<PathBuf>) -> Json {
    service_record_for(jobs, cache_dir, BackendSelect::S1)
}

/// [`service_record`] with an explicit backend selection.
pub fn service_record_for(jobs: usize, cache_dir: Option<PathBuf>, backend: BackendSelect) -> Json {
    record(
        "service",
        "Compilation service batch over the experiment corpus",
        &service_batch_for(jobs, cache_dir, backend),
    )
}

/// A demonstration record with a panic injected into one function's
/// optimization, exercising the incident/degradation surface: the batch
/// completes, `quadratic` comes back degraded, and every other function
/// is untouched.
pub fn service_fault_record() -> Json {
    let cfg = ServiceConfig {
        jobs: 4,
        fault: Some(FaultInjection {
            function: "quadratic".to_string(),
            mode: FaultMode::Panic,
        }),
        ..ServiceConfig::default()
    };
    let batch = CompileService::new(cfg).compile_batch(&service_units());
    record(
        "service-fault",
        "Compilation service degraded-path demonstration",
        &batch,
    )
}

/// Differential-oracle cases over the corpus: call each entry with the
/// workload-shaped arguments (kept small so the oracle stays fast).
pub fn oracle_cases() -> Vec<OracleCase> {
    vec![
        OracleCase::new("exptl", ["3", "10", "1"]),
        OracleCase::new("quadratic", ["1.0", "-3.0", "2.0"]),
        OracleCase::new("loopn", ["1000"]),
        OracleCase::new("sum-horner", ["200"]),
        OracleCase::new("tak", ["10", "6", "3"]),
    ]
}

/// The seed behind the pinned `guard` record.  Chosen so the storm
/// deterministically produces at least one incident of each flavor the
/// schema pins (the decision function is pure, so it replays forever).
pub const GUARD_SEED: u64 = 13;

/// A guarded batch over the corpus under a seeded fault storm: phase
/// panics, cache I/O errors and corruption, simulator traps, and
/// miscompiles, all armed from one seed.  When `cache_dir` is given it
/// is first warmed by a clean pass so read-side faults have real bytes
/// to corrupt.
pub fn guard_batch(seed: u64, cache_dir: Option<PathBuf>) -> BatchResult {
    let units = service_units();
    if let Some(dir) = &cache_dir {
        CompileService::new(config(2, Some(dir.clone()))).compile_batch(&units);
    }
    let plan = FaultPlan::new(seed)
        .arm(FaultSite::PhasePanic, 8)
        .arm(FaultSite::CacheRead, 400)
        .arm(FaultSite::CacheWrite, 400)
        .arm(FaultSite::CacheCorrupt, 400)
        .arm(FaultSite::SimTrap, 150)
        .arm(FaultSite::Miscompile, 150);
    let cfg = ServiceConfig {
        jobs: 4,
        guard: true,
        fault_plan: Some(plan),
        cache_dir,
        disk_max_entries: Some(8),
        oracle: oracle_cases(),
        ..ServiceConfig::default()
    };
    CompileService::new(cfg).compile_batch(&units)
}

/// The machine-readable `guard` record: a seeded fault storm over the
/// corpus, with the containment verdict and oracle verdicts attached.
pub fn guard_record() -> Json {
    let dir = std::env::temp_dir().join(format!("s1lisp-guard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let batch = guard_batch(GUARD_SEED, Some(dir.clone()));
    let _ = std::fs::remove_dir_all(&dir);
    record(
        "guard",
        "Guarded batch under a seeded deterministic fault storm",
        &batch,
    )
}

/// The machine-readable `guard-miscompile` record: every oracle case's
/// optimized result is perturbed, so the differential oracle must flag
/// the mismatch and ship the reference (unoptimized) artifact.
pub fn guard_miscompile_record() -> Json {
    let cfg = ServiceConfig {
        jobs: 2,
        guard: true,
        fault_plan: Some(FaultPlan::new(7).arm(FaultSite::Miscompile, 1000)),
        oracle: vec![OracleCase::new("quadratic", ["1.0", "-3.0", "2.0"])],
        ..ServiceConfig::default()
    };
    let batch = CompileService::new(cfg).compile_batch(&service_units());
    record(
        "guard-miscompile",
        "Differential oracle shipping the unoptimized artifact",
        &batch,
    )
}

/// The human-readable `service` report text.
pub fn service_report(jobs: usize, cache_dir: Option<PathBuf>) -> String {
    use std::fmt::Write as _;
    let batch = service_batch(jobs, cache_dir);
    let mut out = String::new();
    let s = &batch.stats;
    let _ = writeln!(
        out,
        "workers={} schedule={} functions={} queue_peak={}",
        s.workers_used,
        s.schedule.as_str(),
        s.functions,
        s.queue_peak
    );
    let _ = writeln!(
        out,
        "hit_rate={}% hits={} misses={} evictions={} disk_hits={} \
         io_retries={} io_errors={} corrupt_reads={} disk_evictions={}",
        batch.hit_rate_percent(),
        s.cache.hits,
        s.cache.misses,
        s.cache.evictions,
        s.cache.disk_hits,
        s.cache.io_retries,
        s.cache.io_errors,
        s.cache.corrupt_reads,
        s.cache.disk_evictions
    );
    let _ = writeln!(
        out,
        "incidents={} failures={}",
        batch.incidents.len(),
        batch.failures.len()
    );
    for w in &s.workers {
        let _ = writeln!(
            out,
            "  worker {}: jobs={} wall_us={}",
            w.worker, w.jobs, w.wall_us
        );
    }
    let _ = writeln!(
        out,
        "{:<14} {:<10} {:>8} {:>9}",
        "function", "outcome", "insns", "wall_us"
    );
    for r in &batch.records {
        let insns = batch
            .artifacts
            .iter()
            .find(|a| a.name == r.function)
            .map_or(0, |a| a.insns);
        let _ = writeln!(
            out,
            "{:<14} {:<10} {:>8} {:>9}",
            r.function,
            r.outcome.as_str(),
            insns,
            r.wall_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_batch_compiles_cleanly() {
        let batch = service_batch(2, None);
        assert!(batch.stats.functions >= 12, "{}", batch.stats.functions);
        assert_eq!(batch.artifacts.len(), batch.stats.functions);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        assert!(batch.incidents.is_empty());
        // e10's proclaimed special must have reached its job.
        let acc = batch.artifact("accumulate").unwrap();
        assert!(acc.assembly.contains("%SPEC"), "{}", acc.assembly);
    }

    #[test]
    fn human_report_surfaces_schedule_and_queue_peak() {
        let text = service_report(2, None);
        let head = text.lines().next().unwrap_or_default();
        assert!(head.contains("schedule=sorted"), "{head}");
        // The peak is the whole batch (the queue only drains), so the
        // surfaced value must equal the function count on the same line.
        let field = |key: &str| {
            head.split_whitespace()
                .find_map(|w| w.strip_prefix(key))
                .unwrap_or_else(|| panic!("no {key} in {head}"))
                .to_string()
        };
        assert_eq!(field("queue_peak="), field("functions="), "{head}");
    }

    #[test]
    fn guard_storm_contains_every_fault() {
        let batch = guard_batch(GUARD_SEED, None);
        // Zero lost functions: every job produced an artifact.
        assert_eq!(batch.artifacts.len(), batch.stats.functions);
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        let guard = batch.guard.as_ref().expect("guard report");
        assert!(guard.contained, "{:?}", batch.incidents);
        assert!(batch.incidents.iter().all(|i| i.recovered));
        // The pinned seed produces real incidents and oracle traffic.
        assert!(!batch.incidents.is_empty());
        assert!(!guard.oracle.is_empty());
    }

    #[test]
    fn miscompile_record_ships_the_reference_artifact() {
        let rec = guard_miscompile_record();
        let batch = rec.get("batch").unwrap();
        let incidents = batch.get("incidents").unwrap().as_arr().unwrap();
        assert!(incidents
            .iter()
            .any(|i| i.get("kind").unwrap().as_str() == Some("miscompile")
                && i.get("recovered").unwrap().as_bool() == Some(true)));
        let guard = batch.get("guard").unwrap();
        assert_eq!(guard.get("contained").unwrap().as_bool(), Some(true));
        let artifacts = batch.get("artifacts").unwrap().as_arr().unwrap();
        let quadratic = artifacts
            .iter()
            .find(|a| a.get("name").unwrap().as_str() == Some("quadratic"))
            .unwrap();
        assert_eq!(quadratic.get("degraded").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn fault_record_reports_one_degraded_function() {
        let rec = service_fault_record();
        let batch = rec.get("batch").unwrap();
        let incidents = batch.get("incidents").unwrap().as_arr().unwrap();
        assert_eq!(incidents.len(), 1);
        assert_eq!(
            incidents[0].get("function").unwrap().as_str(),
            Some("quadratic")
        );
        assert_eq!(incidents[0].get("recovered").unwrap().as_bool(), Some(true));
    }
}
