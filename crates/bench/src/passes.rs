//! The `passes` report: the per-function pass schedule (Table 1 as
//! data), as the live [`s1lisp::Pipeline`] describes itself (`report
//! --passes`).
//!
//! The record lists every scheduled pass — name, the Table-1 rows it
//! implements, the implementing module, and whether the default options
//! enable it — so schedule drift is visible in one place.  The shape is
//! schema-pinned by `tests/golden_json.rs`; the pass names themselves
//! are cross-checked against `phases()` by the core crate's pipeline
//! tests.

use s1lisp::Compiler;
use s1lisp_trace::json::Json;

/// The machine-readable `passes` record, from a default compiler's
/// pipeline.
pub fn passes_record() -> Json {
    let passes = Compiler::new()
        .pipeline()
        .describe()
        .into_iter()
        .map(|p| {
            Json::Obj(vec![
                ("name".to_string(), Json::str(p.name)),
                (
                    "table1".to_string(),
                    Json::Arr(p.table1.iter().map(|r| Json::str(*r)).collect()),
                ),
                ("module".to_string(), Json::str(p.module)),
                ("enabled".to_string(), Json::Bool(p.enabled)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("id".to_string(), Json::str("passes")),
        (
            "title".to_string(),
            Json::str("Per-function pass schedule (Table 1 as data)"),
        ),
        ("passes".to_string(), Json::Arr(passes)),
    ])
}

/// The human-readable `passes` report text: one row per scheduled pass.
pub fn passes_report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<34} {:<8} {:<42} table-1 rows",
        "pass", "enabled", "module"
    );
    for p in Compiler::new().pipeline().describe() {
        let rows = if p.table1.is_empty() {
            "(cross-cutting)".to_string()
        } else {
            p.table1.join(", ")
        };
        let _ = writeln!(
            out,
            "{:<34} {:<8} {:<42} {}",
            p.name,
            if p.enabled { "yes" } else { "no" },
            p.module,
            rows
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_report_lists_the_whole_schedule() {
        let text = passes_report();
        for name in [
            "Environment analysis",
            "Source-level optimization",
            "Binding annotation",
            "Code generation",
            "Peephole optimizer",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // Cross-cutting wrappers show up too, disabled by default.
        assert!(text.contains("Fault injection"));
        assert!(text.contains("Guard: conversion"));
    }
}
