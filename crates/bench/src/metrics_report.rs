//! The `metrics` report: one unified [`MetricsSnapshot`] spanning the
//! compiler pipeline, the simulator and its heap, the artifact cache,
//! and the compile service — rendered as a human table by
//! `report --metrics` and as a schema-pinned JSON record by
//! `report --json metrics`.
//!
//! The snapshot comes from a *pinned* workload so its shape (which
//! metrics exist) is stable: the tak kernel compiled with tracing and
//! run with a profile attached, plus one service batch over the
//! experiment corpus at `jobs = 2`.  Every subsystem reports into a
//! single registry — the service's — so the record is one surface, not
//! four stapled together.
//!
//! Determinism: with [`MetricsSnapshot::zero_time_metrics`] applied,
//! two runs of [`collect_metrics`] are byte-identical (pinned by test,
//! the PR-2 post-mortem discipline); the unzeroed snapshot is what the
//! human report shows.

use s1lisp::{Compiler, Value};
use s1lisp_driver::{CompileService, ServiceConfig};
use s1lisp_s1sim::ExecProfile;
use s1lisp_trace::json::Json;
use s1lisp_trace::metrics::MetricsSnapshot;

use crate::corpus;
use crate::service::service_units;

/// Runs the pinned metrics workload and returns the unified snapshot.
/// Host-time metrics (`*_ns`, `*_us`, `*_per_sec`) carry real wall
/// times; everything else is a pure function of the workload.
pub fn collect_metrics() -> MetricsSnapshot {
    // Simulator side: tak with tracing and an opcode profile.
    let mut c = Compiler::new();
    c.enable_trace();
    c.compile_str(corpus::TAK).expect("tak compiles");
    let mut m = c.machine();
    m.profile = Some(Box::new(ExecProfile::new()));
    m.run(
        "tak",
        &[Value::Fixnum(14), Value::Fixnum(10), Value::Fixnum(6)],
    )
    .expect("tak runs");
    // Service side: one batch over the corpus; the service and its
    // cache already share a registry, so export the compiler and the
    // machine into the same one.
    let service = CompileService::new(ServiceConfig {
        jobs: 2,
        ..ServiceConfig::default()
    });
    let batch = service.compile_batch(&service_units());
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    let reg = service.metrics();
    c.export_metrics(reg);
    m.export_metrics(reg); // includes the heap's telemetry
    reg.snapshot()
}

/// The machine-readable `metrics` record (schema-pinned by golden test).
pub fn metrics_record() -> Json {
    let snap = collect_metrics();
    Json::Obj(vec![
        ("id".to_string(), Json::str("metrics")),
        (
            "title".to_string(),
            Json::str("Unified metrics snapshot over the pinned workload"),
        ),
        ("metrics".to_string(), snap.to_json()),
    ])
}

/// The human-readable `metrics` report: the snapshot as an aligned
/// table, grouped by metric kind.
pub fn metrics_report() -> String {
    collect_metrics().render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_trace::json;

    #[test]
    fn snapshot_covers_every_subsystem() {
        let snap = collect_metrics();
        // One name from each layer proves the registry is shared.
        for name in [
            "sim.insns_retired",
            "sim.opclass.call",
            "heap.alloc.conses",
            "cache.hits",
            "service.jobs",
            "pipeline.code_generation.spans",
        ] {
            assert!(
                snap.counter(name).is_some(),
                "missing {name}; have {:?}",
                snap.counters.iter().map(|(n, _)| n).collect::<Vec<_>>()
            );
        }
        assert!(snap.gauge("service.queue_peak").is_some());
        assert!(snap.histogram("heap.alloc_size_words").is_some());
        assert!(snap.histogram("service.job_wall_us").is_some());
    }

    #[test]
    fn two_runs_are_byte_identical_with_time_zeroed() {
        // Satellite: the determinism contract.  Same workload, same
        // seed, no shared state — after zeroing host-time metrics the
        // serialized snapshots must agree byte for byte.
        let mut a = collect_metrics();
        let mut b = collect_metrics();
        a.zero_time_metrics();
        b.zero_time_metrics();
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn record_parses_and_nests_the_snapshot_schema() {
        let rec = metrics_record();
        json::parse(&rec.to_string()).expect("well-formed");
        let metrics = rec.get("metrics").unwrap();
        assert!(json::schema(metrics).starts_with("{counters:map<int>"));
    }

    #[test]
    fn machine_stats_table_matches_the_registry_snapshot() {
        // Satellite: MachineStats/ExecProfile double-bookkeeping is
        // gone — after a tak run the Display table and the registry
        // snapshot are the same numbers, and the profile's retired
        // total agrees with the stats counter.
        let mut c = Compiler::new();
        c.compile_str(corpus::TAK).expect("tak compiles");
        let mut m = c.machine();
        m.profile = Some(Box::new(ExecProfile::new()));
        m.run(
            "tak",
            &[Value::Fixnum(14), Value::Fixnum(10), Value::Fixnum(6)],
        )
        .expect("tak runs");
        let reg = s1lisp_trace::metrics::MetricsRegistry::new();
        m.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim.insns_retired"), Some(m.stats.insns));
        for (label, value) in m.stats.counters() {
            // Every Display row reads back out of the snapshot under
            // the corresponding sim.* name with the same value.
            let metric = snap
                .counters
                .iter()
                .find(|(n, v)| n.starts_with("sim.") && *v == value)
                .map(|(n, _)| n.clone());
            assert!(metric.is_some(), "no sim.* metric carries {label}={value}");
        }
        // And the profile's cycle attribution accounts for the same
        // total the stats counter reports — one bookkeeping, two views.
        // (`retired()` excludes the synthetic runtime-call surcharge,
        // so it is bounded by `insns`; `per_fn` includes it and agrees
        // exactly.)
        let profile = m.profile.as_ref().unwrap();
        let attributed: u64 = profile.per_fn().iter().map(|&(_, c)| c).sum();
        assert_eq!(attributed, m.stats.insns);
        assert!(profile.retired() <= m.stats.insns);
        let class_total: u64 = profile.class_histogram().values().sum();
        assert_eq!(class_total, profile.retired());
    }
}
