//! The perf-trajectory harness: pinned simulator kernels and service
//! batches, appended to `BENCH_sim.json` / `BENCH_service.json` at the
//! repo root (one entry per invocation — run it once per commit of
//! interest and the files become the project's performance history).
//!
//! ```sh
//! cargo run --release -p s1lisp-bench --bin perfbench            # append both
//! cargo run --release -p s1lisp-bench --bin perfbench -- --trials 9
//! cargo run --release -p s1lisp-bench --bin perfbench -- --check # CI smoke
//! ```
//!
//! `--check` runs one trial of the smallest workload on each side,
//! validates the emitted entries against the committed schema goldens
//! (`crates/bench/tests/golden/perfbench_*_schema.txt`), and exits
//! nonzero on any mismatch — without touching the trajectory files.
//! No thresholds are gated: the trajectory records, it does not judge.
//!
//! `--compare [--tolerance N]` is the judging mode: measure the full
//! matrix fresh, compare each workload's median throughput against the
//! *best* entry in the committed trajectory, and exit nonzero listing
//! every workload that fell more than N percent (default 20) below its
//! best baseline.  The trajectory files are never modified.

use s1lisp_bench::perfbench;
use s1lisp_trace::json;

const SIM_SCHEMA: &str = include_str!("../../tests/golden/perfbench_sim_schema.txt");
const SERVICE_SCHEMA: &str = include_str!("../../tests/golden/perfbench_service_schema.txt");

fn check_schema(label: &str, entry: &json::Json, golden: &str) -> bool {
    let got = json::schema(entry);
    if got == golden.trim() {
        println!("perfbench --check: {label} schema ok");
        true
    } else {
        eprintln!(
            "perfbench --check: {label} schema mismatch\n  want: {}\n  got:  {got}",
            golden.trim()
        );
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let compare = args.iter().any(|a| a == "--compare");
    let mut warmup = 1usize;
    let mut trials = 5usize;
    let mut tolerance = perfbench::DEFAULT_COMPARE_TOLERANCE;
    let mut it = args.iter().filter(|a| *a != "--check" && *a != "--compare");
    while let Some(a) = it.next() {
        let mut grab = |name: &str| match it.next().and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => {
                eprintln!("{name} wants a number");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--warmup" => warmup = grab("--warmup"),
            "--trials" => trials = grab("--trials"),
            "--tolerance" => tolerance = grab("--tolerance") as u64,
            other => {
                eprintln!(
                    "unknown argument {other} \
                     (want --check, --compare, --warmup N, --trials N, --tolerance N)"
                );
                std::process::exit(2);
            }
        }
    }
    let root = perfbench::repo_root();
    if compare {
        let trials = trials.max(1);
        println!("perfbench --compare: tolerance {tolerance}% below best baseline");
        let mut regressed = false;
        for (file, entry) in [
            (
                "BENCH_sim.json",
                perfbench::sim_entry(&root, warmup, trials),
            ),
            (
                "BENCH_service.json",
                perfbench::service_entry(&root, warmup, trials),
            ),
        ] {
            let baselines = match perfbench::load_trajectory(&root.join(file)) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("perfbench: {e}");
                    std::process::exit(1);
                }
            };
            let comparisons = perfbench::compare_entry(&entry, &baselines, tolerance);
            println!("{file}:");
            if comparisons.is_empty() {
                println!("  (no baselines — run perfbench once to record them)");
            } else {
                print!("{}", perfbench::format_comparisons(&comparisons));
            }
            regressed |= comparisons.iter().any(|c| c.regressed);
        }
        std::process::exit(i32::from(regressed));
    }
    if check {
        let sim = perfbench::smoke_sim_entry(&root);
        let service = perfbench::smoke_service_entry(&root);
        let sim_rows = sim.get("workloads").and_then(json::Json::as_arr);
        let service_rows = service.get("batches").and_then(json::Json::as_arr);
        let serve_rows = service.get("serves").and_then(json::Json::as_arr);
        let nonempty = sim_rows.is_some_and(|r| !r.is_empty())
            && service_rows.is_some_and(|r| !r.is_empty())
            && serve_rows.is_some_and(|r| !r.is_empty());
        if !nonempty {
            eprintln!("perfbench --check: empty workload rows");
            std::process::exit(1);
        }
        let ok = check_schema("sim", &sim, SIM_SCHEMA)
            & check_schema("service", &service, SERVICE_SCHEMA);
        std::process::exit(i32::from(!ok));
    }
    let trials = trials.max(1);
    println!("perfbench: sim kernels ({warmup} warmup + {trials} trials each)");
    let sim = perfbench::sim_entry(&root, warmup, trials);
    print!("{}", perfbench::summarize_entry(&sim));
    println!("perfbench: service batches at jobs=1/2/8, serve bursts at clients=1/4/16");
    let service = perfbench::service_entry(&root, warmup, trials);
    print!("{}", perfbench::summarize_entry(&service));
    for (file, entry) in [("BENCH_sim.json", sim), ("BENCH_service.json", service)] {
        let path = root.join(file);
        match perfbench::append_trajectory(&path, entry) {
            Ok(n) => println!("appended entry {n} to {file}"),
            Err(e) => {
                eprintln!("perfbench: {e}");
                std::process::exit(1);
            }
        }
    }
}
