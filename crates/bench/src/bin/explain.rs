//! Prints the compilation dossier for one corpus function.
//!
//! ```sh
//! cargo run -p s1lisp-bench --bin explain -- exptl          # full dossier
//! cargo run -p s1lisp-bench --bin explain -- --no-wall tak  # deterministic
//! cargo run -p s1lisp-bench --bin explain -- --list         # known functions
//! ```
//!
//! The dossier is the per-function story the paper tells in §7 and
//! Table 1: phase timings, every META-rule that fired (with
//! before/after source), WANTREP/ISREP representation decisions and
//! the coercions they cost, the TN packing map, and the final assembly.
//! `--no-wall` omits wall-clock times, making the output byte-stable
//! (the form pinned by `tests/golden_dossiers.rs`).

use s1lisp_bench::{corpus_functions, explain_function};

fn list() {
    eprintln!("known functions:");
    for f in corpus_functions() {
        eprintln!("  {f}");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let include_wall = !args.iter().any(|a| a == "--no-wall");
    args.retain(|a| a != "--no-wall");
    match args.as_slice() {
        [flag] if flag == "--list" => list(),
        [name] => match explain_function(name, include_wall) {
            Some(text) => print!("{text}"),
            None => {
                eprintln!("no corpus workload defines `{name}`");
                list();
                std::process::exit(1);
            }
        },
        _ => {
            eprintln!("usage: explain [--no-wall] <function> | --list");
            list();
            std::process::exit(2);
        }
    }
}
