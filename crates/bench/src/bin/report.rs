//! Prints the experiment reports (all of them, or those named on the
//! command line).
//!
//! ```sh
//! cargo run -p s1lisp-bench --bin report                   # everything
//! cargo run -p s1lisp-bench --bin report -- e4 e7          # selected
//! cargo run -p s1lisp-bench --bin report -- --json         # JSON array
//! cargo run -p s1lisp-bench --bin report -- --json e1 e12  # selected
//! ```
//!
//! `--json` emits one machine-readable record per experiment (the shape
//! pinned by `tests/golden_json.rs`) instead of the human-readable text.
//! The special id `trap` selects the trap post-mortem demonstration
//! record (`--json trap`).

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let selected: Vec<String> = if args.is_empty() {
        s1lisp_bench::all_experiments()
            .iter()
            .map(|e| e.id.to_string())
            .collect()
    } else {
        args
    };
    if json {
        let records: Vec<s1lisp_trace::json::Json> = selected
            .iter()
            .filter_map(|id| {
                let rec = if id == "trap" {
                    Some(s1lisp_bench::trap_record())
                } else {
                    s1lisp_bench::json_record(id)
                };
                if rec.is_none() {
                    eprintln!("unknown experiment {id} (want e1..e12 or trap)");
                }
                rec
            })
            .collect();
        println!("{}", s1lisp_trace::json::Json::Arr(records));
        return;
    }
    for id in selected {
        match s1lisp_bench::run_experiment(&id) {
            Some(report) => {
                let title = s1lisp_bench::all_experiments()
                    .into_iter()
                    .find(|e| e.id == id)
                    .map(|e| e.title)
                    .unwrap_or("");
                println!("==================================================================");
                println!("{} — {}", id.to_uppercase(), title);
                println!("==================================================================");
                println!("{report}");
            }
            None => eprintln!("unknown experiment {id} (want e1..e12)"),
        }
    }
}
