//! Prints the experiment reports (all of them, or those named on the
//! command line).
//!
//! ```sh
//! cargo run -p s1lisp-bench --bin report                   # everything
//! cargo run -p s1lisp-bench --bin report -- e4 e7          # selected
//! cargo run -p s1lisp-bench --bin report -- --json         # JSON array
//! cargo run -p s1lisp-bench --bin report -- --json e1 e12  # selected
//! cargo run -p s1lisp-bench --bin report -- --jobs 4 service
//! cargo run -p s1lisp-bench --bin report -- --passes       # schedule
//! cargo run -p s1lisp-bench --bin report -- --metrics      # unified metrics
//! cargo run -p s1lisp-bench --bin report -- --flame tak    # folded stacks
//! cargo run -p s1lisp-bench --bin report -- --chrome-trace # trace JSON
//! ```
//!
//! `--json` emits one machine-readable record per experiment (the shape
//! pinned by `tests/golden_json.rs`) instead of the human-readable text.
//! Special ids: `trap` selects the trap post-mortem demonstration
//! record; `service` batch-compiles the whole corpus through the
//! parallel compilation service (`--jobs N` workers, `--cache-dir D`
//! for a persistent artifact cache — run it twice with the same
//! directory and the second run reports `hit_rate=100%`);
//! `backend` reports the bytecode backend's per-function code footprint
//! and the cross-backend oracle verdicts (S-1 on the simulator vs
//! bytecode on the evaluator; `--backend s1|bytecode|both` selects the
//! service batch's code generator);
//! `serve` runs a scripted two-tenant session against an in-process
//! compile-server daemon and records every wire response;
//! `durability` runs a scripted crash drill — a durable burst, a torn
//! journal tail, a mid-log bit flip — and records the recovery verdict;
//! `service-fault` demonstrates the degraded path with an injected
//! optimizer panic; `guard` runs the guarded batch under a seeded
//! deterministic fault storm (phase validators, cache fault injection,
//! differential oracle); and `guard-miscompile` shows the oracle
//! catching a miscompile and shipping the unoptimized artifact.
//!
//! `--metrics` (or the `metrics` id under `--json`) runs the pinned
//! metrics workload — tak plus one service batch — and renders the
//! unified registry snapshot: simulator, heap/GC, pipeline, cache, and
//! service metrics in one table (or one schema-pinned record).
//!
//! `--flame <workload>` runs one perfbench kernel (tak, exptl, loopn,
//! horner, gc-stress) under the calling-context profiler and prints
//! folded stacks (`caller;callee cycles`) — pipe into `flamegraph.pl`
//! or load in speedscope.  `--chrome-trace` prints a Chrome trace-event
//! JSON array (a traced compile plus a 2-worker batch timeline) for
//! `chrome://tracing` / Perfetto.

use std::path::PathBuf;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let passes = args.iter().any(|a| a == "--passes");
    args.retain(|a| a != "--passes");
    let metrics = args.iter().any(|a| a == "--metrics");
    args.retain(|a| a != "--metrics");
    let chrome = args.iter().any(|a| a == "--chrome-trace");
    args.retain(|a| a != "--chrome-trace");
    if let Some(i) = args.iter().position(|a| a == "--flame") {
        args.remove(i);
        let Some(entry) = args.get(i).cloned() else {
            eprintln!("--flame wants a workload id (try tak)");
            std::process::exit(2);
        };
        match s1lisp_bench::flame_report(&entry) {
            Ok(folded) => print!("{folded}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        return;
    }
    if chrome {
        println!("{}", s1lisp_bench::chrome_trace());
        return;
    }
    if metrics {
        if json {
            println!(
                "{}",
                s1lisp_trace::json::Json::Arr(vec![s1lisp_bench::metrics_record()])
            );
        } else {
            print!("{}", s1lisp_bench::metrics_report());
        }
        return;
    }
    if passes {
        // The pass schedule is static — print it and stop.
        if json {
            println!(
                "{}",
                s1lisp_trace::json::Json::Arr(vec![s1lisp_bench::passes_record()])
            );
        } else {
            print!("{}", s1lisp_bench::passes_report());
        }
        return;
    }
    let mut jobs = 1usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut backend = s1lisp_driver::BackendSelect::S1;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs wants a number");
                    std::process::exit(2);
                }
            },
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--cache-dir wants a path");
                    std::process::exit(2);
                }
            },
            "--backend" => match it
                .next()
                .and_then(|v| s1lisp_driver::BackendSelect::parse(&v))
            {
                Some(b) => backend = b,
                None => {
                    eprintln!("--backend wants s1, bytecode, or both");
                    std::process::exit(2);
                }
            },
            _ => rest.push(a),
        }
    }
    let selected: Vec<String> = if rest.is_empty() {
        s1lisp_bench::all_experiments()
            .iter()
            .map(|e| e.id.to_string())
            .collect()
    } else {
        rest
    };
    if json {
        let records: Vec<s1lisp_trace::json::Json> = selected
            .iter()
            .filter_map(|id| {
                let rec = match id.as_str() {
                    "trap" => Some(s1lisp_bench::trap_record()),
                    "metrics" => Some(s1lisp_bench::metrics_record()),
                    "serve" => Some(s1lisp_bench::serve_record()),
                    "durability" => Some(s1lisp_bench::durability_record()),
                    "service" => Some(s1lisp_bench::service_record_for(
                        jobs,
                        cache_dir.clone(),
                        backend,
                    )),
                    "backend" => Some(s1lisp_bench::backend_record()),
                    "service-fault" | "guard" | "guard-miscompile" => {
                        // Injected panics are the record's subject;
                        // keep their backtraces off stderr.
                        let prev = std::panic::take_hook();
                        std::panic::set_hook(Box::new(|_| {}));
                        let rec = match id.as_str() {
                            "service-fault" => s1lisp_bench::service_fault_record(),
                            "guard" => s1lisp_bench::guard_record(),
                            _ => s1lisp_bench::guard_miscompile_record(),
                        };
                        std::panic::set_hook(prev);
                        Some(rec)
                    }
                    _ => s1lisp_bench::json_record(id),
                };
                if rec.is_none() {
                    eprintln!(
                        "unknown experiment {id} (want e1..e12, trap, serve, durability, \
                         service, backend, or guard)"
                    );
                }
                rec
            })
            .collect();
        println!("{}", s1lisp_trace::json::Json::Arr(records));
        return;
    }
    for id in selected {
        if id == "service" {
            println!("==================================================================");
            println!("SERVICE — parallel batch compile of the experiment corpus");
            println!("==================================================================");
            print!("{}", s1lisp_bench::service_report(jobs, cache_dir.clone()));
            continue;
        }
        match s1lisp_bench::run_experiment(&id) {
            Some(report) => {
                let title = s1lisp_bench::all_experiments()
                    .into_iter()
                    .find(|e| e.id == id)
                    .map(|e| e.title)
                    .unwrap_or("");
                println!("==================================================================");
                println!("{} — {}", id.to_uppercase(), title);
                println!("==================================================================");
                println!("{report}");
            }
            None => eprintln!("unknown experiment {id} (want e1..e12 or service)"),
        }
    }
}
