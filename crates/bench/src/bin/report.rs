//! Prints the experiment reports (all of them, or those named on the
//! command line).
//!
//! ```sh
//! cargo run -p s1lisp-bench --bin report            # everything
//! cargo run -p s1lisp-bench --bin report -- e4 e7   # selected
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<String> = if args.is_empty() {
        s1lisp_bench::all_experiments()
            .iter()
            .map(|e| e.id.to_string())
            .collect()
    } else {
        args
    };
    for id in selected {
        match s1lisp_bench::run_experiment(&id) {
            Some(report) => {
                let title = s1lisp_bench::all_experiments()
                    .into_iter()
                    .find(|e| e.id == id)
                    .map(|e| e.title)
                    .unwrap_or("");
                println!("==================================================================");
                println!("{} — {}", id.to_uppercase(), title);
                println!("==================================================================");
                println!("{report}");
            }
            None => eprintln!("unknown experiment {id} (want e1..e12)"),
        }
    }
}
