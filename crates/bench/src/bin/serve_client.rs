//! A command-line client for the compile-server daemon, and the CI
//! smoke behind `--selftest`.
//!
//! ```sh
//! # CI smoke: concurrent tenants against an in-process daemon must be
//! # byte-identical to a plain service batch; with --serve-bin, also
//! # drive a spawned `serve --stdio` child and check clean shutdown.
//! cargo run -p s1lisp-bench --bin serve_client -- --selftest
//! cargo run -p s1lisp-bench --bin serve_client -- --selftest \
//!     --serve-bin target/release/serve
//!
//! # Ad-hoc client: one op against a running daemon, response as JSON.
//! cargo run -p s1lisp-bench --bin serve_client -- \
//!     --connect 127.0.0.1:7777 --tenant alice compile lib.lisp
//! cargo run -p s1lisp-bench --bin serve_client -- \
//!     --connect 127.0.0.1:7777 --tenant alice run poke 4
//! ```

use std::collections::HashMap;

use s1lisp_bench::service_units;
use s1lisp_driver::{CompileService, ServiceConfig};
use s1lisp_server::{Body, CompileServer, ServeClient, ServerConfig};

fn fail(msg: &str) -> ! {
    eprintln!("serve_client: {msg}");
    std::process::exit(1);
}

/// The corpus artifacts a plain (non-server) service batch produces,
/// keyed by function name — the byte-identity baseline.
fn baseline_artifacts() -> HashMap<String, String> {
    let service = CompileService::new(ServiceConfig::default());
    let batch = service.compile_batch(&service_units());
    if !batch.failures.is_empty() {
        fail(&format!("baseline batch failed: {:?}", batch.failures));
    }
    batch
        .artifacts
        .iter()
        .map(|a| (a.name.clone(), a.to_json().to_string()))
        .collect()
}

/// Compiles every corpus unit through `client`, one fresh tenant per
/// unit (mirroring the batch contract that declarations do not leak
/// across units), and checks each artifact byte-for-byte against the
/// baseline.  Returns the number of artifacts compared.
fn compile_corpus_and_compare(
    client: &mut ServeClient,
    tenant_prefix: &str,
    baseline: &HashMap<String, String>,
) -> usize {
    let mut compared = 0;
    for (i, unit) in service_units().iter().enumerate() {
        let hello = client
            .hello(&format!("{tenant_prefix}{i}"), None)
            .unwrap_or_else(|e| fail(&format!("hello: {e}")));
        if !hello.ok {
            fail(&format!("hello refused: {:?}", hello.error));
        }
        let resp = client
            .compile(&unit.name, &unit.source)
            .unwrap_or_else(|e| fail(&format!("compile {}: {e}", unit.name)));
        let Body::Compile { artifacts, .. } = &resp.body else {
            fail(&format!("{}: no compile body", unit.name));
        };
        if !resp.ok {
            fail(&format!("{}: {:?}", unit.name, resp.error));
        }
        for a in artifacts {
            let want = baseline
                .get(&a.name)
                .unwrap_or_else(|| fail(&format!("{}: not in the baseline", a.name)));
            if a.to_json().to_string() != *want {
                fail(&format!("{}: artifact differs from compile_batch", a.name));
            }
            compared += 1;
        }
    }
    compared
}

/// The CI smoke: an in-process TCP daemon serving two concurrent
/// tenants byte-identically to `compile_batch`, and (with `serve_bin`)
/// a spawned `serve --stdio` child doing the same plus a clean exit.
fn selftest(serve_bin: Option<&str>) {
    let baseline = baseline_artifacts();

    let handle = CompileServer::new(ServerConfig::default())
        .serve_tcp(0)
        .unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let port = handle.port();
    let threads: Vec<_> = ["a", "b"]
        .into_iter()
        .map(|who| {
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&format!("127.0.0.1:{port}"))
                    .unwrap_or_else(|e| fail(&format!("connect: {e}")));
                compile_corpus_and_compare(&mut client, who, &baseline)
            })
        })
        .collect();
    let compared: usize = threads
        .into_iter()
        .map(|t| t.join().unwrap_or_else(|_| fail("client thread panicked")))
        .sum();
    handle.shutdown();
    handle.join();
    println!("serve_client --selftest: tcp ok, {compared} artifacts byte-identical across 2 concurrent tenants");

    if let Some(bin) = serve_bin {
        let mut client = ServeClient::spawn_stdio(bin, &[])
            .unwrap_or_else(|e| fail(&format!("spawn {bin}: {e}")));
        let compared = compile_corpus_and_compare(&mut client, "stdio", &baseline);
        let hello = client.hello("stdio-run", None).expect("hello");
        assert!(hello.ok);
        let compile = client
            .compile("smoke", "(defun dbl (x) (+ x x))")
            .expect("compile");
        assert!(compile.ok);
        let run = client.run("dbl", &["21"]).expect("run");
        if run.body != (Body::Run { value: "42".into() }) {
            fail(&format!("stdio run: {run:?}"));
        }
        let bye = client.shutdown().expect("shutdown");
        assert!(bye.ok);
        match client.wait_exit() {
            Ok(true) => {}
            Ok(false) => fail("stdio daemon exited nonzero"),
            Err(e) => fail(&format!("wait: {e}")),
        }
        println!(
            "serve_client --selftest: stdio ok, {compared} artifacts byte-identical, clean exit"
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--selftest") {
        args.retain(|a| a != "--selftest");
        let serve_bin = match args.iter().position(|a| a == "--serve-bin") {
            Some(i) => {
                args.remove(i);
                Some(args.remove(i))
            }
            None => None,
        };
        selftest(serve_bin.as_deref());
        return;
    }

    let mut connect = None;
    let mut tenant = None;
    let mut token = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = it.next(),
            "--tenant" => tenant = it.next(),
            "--token" => token = it.next(),
            _ => rest.push(a),
        }
    }
    let (Some(addr), Some(tenant)) = (connect, tenant) else {
        fail("want --selftest, or --connect ADDR --tenant NAME <compile FILE | run ENTRY ARGS... | explain NAME | ping | shutdown>");
    };
    let mut client =
        ServeClient::connect(&addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")));
    let hello = client
        .hello(&tenant, token.as_deref())
        .unwrap_or_else(|e| fail(&format!("hello: {e}")));
    if !hello.ok {
        fail(&format!("hello refused: {:?}", hello.error));
    }
    let resp = match rest.first().map(String::as_str) {
        Some("compile") => {
            let path = rest.get(1).unwrap_or_else(|| fail("compile wants a file"));
            let source =
                std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            client.compile(path, &source)
        }
        Some("run") => {
            let entry = rest.get(1).unwrap_or_else(|| fail("run wants an entry"));
            let args: Vec<&str> = rest[2..].iter().map(String::as_str).collect();
            client.run(entry, &args)
        }
        Some("explain") => {
            let name = rest.get(1).unwrap_or_else(|| fail("explain wants a name"));
            client.explain(name)
        }
        Some("ping") => client.ping(),
        Some("shutdown") => client.shutdown(),
        _ => fail("want compile FILE | run ENTRY ARGS... | explain NAME | ping | shutdown"),
    };
    let resp = resp.unwrap_or_else(|e| fail(&format!("transport: {e}")));
    println!("{}", resp.to_json());
    std::process::exit(i32::from(!resp.ok));
}
