//! The kill -9 chaos drill for the durable compile server.
//!
//! ```sh
//! cargo run --release -p s1lisp-bench --bin chaos
//! cargo run --release -p s1lisp-bench --bin chaos -- --cycles 30 --seed 7
//! cargo run --release -p s1lisp-bench --bin chaos -- --serve-bin target/release/serve
//! ```
//!
//! Each cycle spawns the real `serve` daemon on a shared `--state-dir`,
//! drives an interleaved two-tenant mutation burst through TCP, and
//! SIGKILLs the process at a seeded point mid-burst — before the hello,
//! between acks, mid-fsync, or after the burst, wherever the seed
//! lands.  After every kill the drill recovers the directory in-process
//! and asserts the durability contract:
//!
//! * every mutation acknowledged `durable` is present;
//! * recovered state is an exact prefix of the send order — at most one
//!   in-flight mutation per tenant (journaled, ack lost to the kill)
//!   beyond the acknowledged set, and nothing never-sent;
//! * no cycle tears anything but the journal tail: mid-log corruption
//!   and quarantine counters stay zero;
//! * recovered artifacts are byte-identical to a cold `compile_batch`
//!   of the recovered log (checked in full after the last cycle).
//!
//! A final in-process phase arms the seeded `journal-write` fault site
//! and proves the flag is honest the other way round: with appends
//! failing, responses stop claiming `durable`, and recovery returns
//! exactly the durable-acked subset.
//!
//! Exits 0 when every cycle upholds the contract; panics (nonzero exit)
//! at the first violation, leaving the state dir behind for inspection.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use s1lisp_driver::{CompileService, FaultPlan, FaultSite, ServiceConfig, SourceUnit};
use s1lisp_server::{CompileServer, ServeClient, ServerConfig};
use s1lisp_trace::rng::SplitMix64;

/// Mutations sent per tenant per cycle.
const BURST: usize = 6;

const TENANTS: [&str; 2] = ["chaos-a", "chaos-b"];

fn usage() -> ! {
    eprintln!("usage: chaos [--cycles N] [--seed N] [--serve-bin PATH] [--keep]");
    std::process::exit(2);
}

fn unit(n: usize) -> (String, String) {
    (format!("u{n}"), format!("(defun g{n} (x) (+ x {n}))"))
}

fn durable_config(state_dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        state_dir: Some(state_dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// Spawns the serve daemon and parses the announced port off stderr; a
/// drain thread keeps reading so the child can never block on a full
/// pipe.
fn spawn_serve(serve_bin: &str, state_dir: &std::path::Path) -> (Child, u16) {
    let mut child = Command::new(serve_bin)
        .args(["--port", "0", "--state-dir"])
        .arg(state_dir)
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {serve_bin}: {e}"));
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr);
    let mut announce = String::new();
    lines.read_line(&mut announce).expect("serve announce line");
    let port: u16 = announce
        .trim()
        .rsplit(':')
        .next()
        .and_then(|p| p.parse().ok())
        .unwrap_or_else(|| panic!("unparseable announce: {announce:?}"));
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = lines.read_to_end(&mut sink);
    });
    (child, port)
}

/// Per-tenant drill ledger across cycles.
struct Ledger {
    /// Sources known recovered after the last verification — the
    /// authoritative prefix the next cycle extends.
    committed: Vec<String>,
    /// Sources sent this cycle, in order (acked or not).
    sent: Vec<String>,
    /// Durable acks received this cycle (always a prefix of `sent`).
    acked: usize,
}

fn main() {
    let mut cycles = 20usize;
    let mut seed = 0x5EED_u64;
    let mut serve_bin: Option<String> = None;
    let mut keep = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("chaos: {flag} wants a value");
                usage()
            })
        };
        match arg.as_str() {
            "--cycles" => cycles = val("--cycles").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--serve-bin" => serve_bin = Some(val("--serve-bin")),
            "--keep" => keep = true,
            _ => usage(),
        }
    }
    let serve_bin = serve_bin.unwrap_or_else(|| {
        // Both binaries land in the same target directory.
        let mut path = std::env::current_exe().expect("current_exe");
        path.set_file_name("serve");
        path.to_string_lossy().into_owned()
    });
    let state_dir: PathBuf =
        std::env::temp_dir().join(format!("s1lisp-chaos-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    println!(
        "chaos: {cycles} kill cycles, seed {seed:#x}, serve {serve_bin}, state {}",
        state_dir.display()
    );

    let mut rng = SplitMix64::new(seed);
    let mut next_unit = 0usize;
    let mut ledgers: Vec<Ledger> = TENANTS
        .iter()
        .map(|_| Ledger {
            committed: Vec::new(),
            sent: Vec::new(),
            acked: 0,
        })
        .collect();

    // Cycle 0 calibrates: a full unkilled burst measures how long the
    // fsync-bound mutation train actually takes on this filesystem, and
    // the kill points of every later cycle are drawn uniformly across
    // that window (plus slack) — before the hello, between acks,
    // mid-fsync, after the burst, wherever the seed lands.
    let mut window_us: u64 = 0;
    for cycle in 0..=cycles {
        let (mut child, port) = spawn_serve(&serve_bin, &state_dir);
        let kill_after =
            (cycle > 0).then(|| Duration::from_micros(rng.below(window_us.max(1) * 11 / 10)));
        let killer = kill_after.map(|delay| {
            let pid = child.id();
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                // kill(2) via the child handle needs ownership; the
                // external kill command delivers the same SIGKILL.
                let _ = Command::new("kill")
                    .args(["-KILL", &pid.to_string()])
                    .status();
            })
        });
        let burst_start = std::time::Instant::now();

        // The burst: both tenants interleaved, raw rejection surface
        // (no retry policy — a kill mid-call must error, not spin).
        let mut clients: Vec<Option<ServeClient>> = TENANTS
            .iter()
            .map(|tenant| {
                let mut c = match ServeClient::connect(&format!("127.0.0.1:{port}")) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("chaos: cycle {cycle}: connect {tenant}: {e}");
                        return None;
                    }
                };
                c.set_retry_policy(None);
                match c.hello(tenant, None) {
                    Ok(r) if r.ok => Some(c),
                    Ok(r) => {
                        eprintln!(
                            "chaos: cycle {cycle}: hello {tenant} refused: {:?}",
                            r.error
                        );
                        None
                    }
                    Err(e) => {
                        eprintln!("chaos: cycle {cycle}: hello {tenant}: {e}");
                        None
                    }
                }
            })
            .collect();
        for l in &mut ledgers {
            l.sent.clear();
            l.acked = 0;
        }
        'burst: for _ in 0..BURST {
            for (t, ledger) in ledgers.iter_mut().enumerate() {
                let Some(client) = clients[t].as_mut() else {
                    break 'burst;
                };
                let (name, src) = unit(next_unit);
                next_unit += 1;
                ledger.sent.push(src.clone());
                match client.compile(&name, &src) {
                    Ok(resp) if resp.ok && resp.durable => {
                        assert_eq!(
                            ledger.acked,
                            ledger.sent.len() - 1,
                            "acks must arrive in send order"
                        );
                        ledger.acked += 1;
                    }
                    Ok(resp) => panic!(
                        "cycle {cycle}: live server must ack durable: {:?}",
                        resp.error
                    ),
                    Err(_) => break 'burst, // the kill landed
                }
            }
        }
        if cycle == 0 {
            window_us = u64::try_from(burst_start.elapsed().as_micros())
                .unwrap_or(u64::MAX)
                .max(1_000);
        }
        if let Some(k) = killer {
            k.join().expect("killer thread");
        }
        let _ = child.kill(); // idempotent if the killer already hit
        let _ = child.wait();

        // Recover in-process and hold the contract up to the light.
        let recovered = CompileServer::new(durable_config(&state_dir));
        let metrics = recovered.metrics_snapshot();
        for bad in ["corrupt_journals", "quarantined", "replay_failures"] {
            let n = metrics
                .counter(&format!("server.recovery.{bad}"))
                .unwrap_or(0);
            assert_eq!(
                n, 0,
                "cycle {cycle}: {bad} = {n}, a kill may only tear the tail"
            );
        }
        let mut acked_total = 0usize;
        let mut inflight = 0usize;
        for (tenant, ledger) in TENANTS.iter().zip(&mut ledgers) {
            let Some(state) = recovered.tenant(tenant) else {
                // A kill before the tenant's first hello leaves no
                // state dir behind — fine unless something durable (or
                // previously committed) vanished with it.
                assert!(
                    ledger.committed.is_empty() && ledger.acked == 0,
                    "cycle {cycle}: tenant {tenant} lost durable state"
                );
                ledger.sent.clear();
                continue;
            };
            let st = state.lock().expect("tenant lock");
            let mut expected = ledger.committed.clone();
            expected.extend(ledger.sent.iter().cloned());
            let floor = ledger.committed.len() + ledger.acked;
            assert!(
                st.sources.len() >= floor,
                "cycle {cycle}: {tenant} lost acked mutations ({} < {floor})",
                st.sources.len()
            );
            assert!(
                st.sources.len() <= expected.len(),
                "cycle {cycle}: {tenant} resurrected {} mutations beyond the {} sent",
                st.sources.len() - expected.len(),
                expected.len()
            );
            assert_eq!(
                st.sources,
                expected[..st.sources.len()],
                "cycle {cycle}: {tenant} recovered out of send order"
            );
            acked_total += ledger.acked;
            inflight += st.sources.len() - floor;
            ledger.committed = st.sources.clone();
        }
        match kill_after {
            Some(delay) => println!(
                "chaos: cycle {cycle:>2} kill@{:>6}us acked={acked_total} inflight={inflight} \
                 committed={}",
                delay.as_micros(),
                ledgers.iter().map(|l| l.committed.len()).sum::<usize>()
            ),
            None => println!(
                "chaos: calibration burst took {window_us}us, acked={acked_total}, \
                 kill window 0..{}us",
                window_us * 11 / 10
            ),
        }
    }

    // The full byte-identity check: every recovered artifact equals a
    // cold `compile_batch` of the same log, front to back.
    let recovered = CompileServer::new(durable_config(&state_dir));
    for (tenant, ledger) in TENANTS.iter().zip(&ledgers) {
        let st = recovered.tenant(tenant).expect("tenant").clone();
        let st = st.lock().expect("tenant lock");
        let units: Vec<SourceUnit> = ledger
            .committed
            .iter()
            .enumerate()
            .map(|(i, src)| SourceUnit::new(format!("cold{i}"), src.clone()))
            .collect();
        let cold = CompileService::new(ServiceConfig::default()).compile_batch(&units);
        assert!(cold.failures.is_empty(), "{:?}", cold.failures);
        assert_eq!(cold.artifacts.len(), st.artifacts.len(), "{tenant}");
        for artifact in &cold.artifacts {
            let got = st
                .artifacts
                .get(&artifact.name)
                .unwrap_or_else(|| panic!("{tenant}: artifact {} lost", artifact.name));
            assert_eq!(
                got.to_json().to_string(),
                artifact.to_json().to_string(),
                "{tenant}: artifact {} differs from a cold compile",
                artifact.name
            );
        }
        println!(
            "chaos: {tenant} byte-identical: {} artifacts == cold compile_batch",
            cold.artifacts.len()
        );
    }
    drop(recovered);

    // Fault phase: with `journal-write` armed, the durable flag must
    // turn honest-pessimistic, and recovery must return exactly the
    // durable subset (the server shuts down cleanly, so there is no
    // in-flight allowance here).
    let fault_dir = state_dir.join("fault-phase");
    let mut config = durable_config(&fault_dir);
    config.service.fault_plan = Some(FaultPlan::new(seed).arm(FaultSite::JournalWrite, 400));
    // Periodic snapshots capture live state wholesale, which would
    // legitimately rescue a mutation whose journal append failed — keep
    // them off so "durable" and "recovered" must match exactly.
    config.snapshot_every = u64::MAX;
    let handle = CompileServer::new(config)
        .serve_tcp(0)
        .expect("bind fault-phase server");
    let mut client =
        ServeClient::connect(&format!("127.0.0.1:{}", handle.port())).expect("connect");
    assert!(client.hello("chaos-f", None).expect("hello").ok);
    let mut durable_sources = Vec::new();
    for n in 0..3 * BURST {
        let (name, src) = unit(n);
        let resp = client.compile(&name, &src).expect("compile");
        assert!(resp.ok, "{:?}", resp.error);
        if resp.durable {
            durable_sources.push(src);
        }
    }
    handle.shutdown();
    handle.join();
    assert!(
        durable_sources.len() < 3 * BURST,
        "a 400‰ journal fault storm must cost some durability"
    );
    let recovered = CompileServer::new(durable_config(&fault_dir));
    let st = recovered.tenant("chaos-f").expect("tenant").clone();
    let st = st.lock().expect("tenant lock");
    assert_eq!(
        st.sources, durable_sources,
        "recovery must return exactly the durable-acked subset"
    );
    println!(
        "chaos: fault phase: {}/{} acks durable, recovery returned exactly those",
        durable_sources.len(),
        3 * BURST
    );
    drop(st);
    drop(recovered);

    if keep {
        println!("chaos: PASS (state kept at {})", state_dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&state_dir);
        println!("chaos: PASS");
    }
}
