//! The `explain` surface: per-function compilation dossiers over the
//! benchmark corpus.
//!
//! `cargo run -p s1lisp-bench --bin explain -- <function>` finds the
//! experiment workload that defines `<function>`, compiles it with
//! tracing enabled, and prints the function's full dossier
//! ([`s1lisp::Dossier`]): Table 1 phase rows, the rewrite transcript,
//! representation decisions and coercions, the TN packing map, and the
//! assembly listing.  [`explain_function`] with `include_wall` false
//! renders the byte-stable form the golden tests pin.

use s1lisp::Compiler;

use crate::json_report::workload;

/// Experiment ids searched, in order, for a workload defining the
/// requested function.
const SEARCH_ORDER: [&str; 12] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
];

/// Renders the compilation dossier for one corpus function, or `None`
/// if no experiment workload defines it.  With `include_wall` false the
/// rendering omits wall-clock times and is deterministic across runs.
pub fn explain_function(name: &str, include_wall: bool) -> Option<String> {
    let marker = format!("(defun {name} ");
    for id in SEARCH_ORDER {
        let wl = workload(id).expect("search order lists known experiments");
        if !wl.src.contains(&marker) {
            continue;
        }
        let mut c = Compiler::new();
        c.enable_trace();
        c.compile_str(wl.src).expect("corpus workload compiles");
        if let Some(d) = c.explain(name) {
            return Some(d.render(include_wall));
        }
    }
    None
}

/// Every function `explain` knows about: the `defun` names of all
/// experiment workloads, in search order, deduplicated.
pub fn corpus_functions() -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for id in SEARCH_ORDER {
        let wl = workload(id).expect("search order lists known experiments");
        for part in wl.src.split("(defun ").skip(1) {
            let name: String = part
                .chars()
                .take_while(|c| !c.is_whitespace() && *c != '(' && *c != ')')
                .collect();
            if !name.is_empty() && !out.contains(&name) {
                out.push(name);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_functions_cover_the_headline_entries() {
        let fns = corpus_functions();
        for expected in ["exptl", "testfn", "tak", "quadratic", "sum-horner"] {
            assert!(fns.iter().any(|f| f == expected), "{fns:?}");
        }
    }

    #[test]
    fn every_corpus_function_explains() {
        for f in corpus_functions() {
            let text = explain_function(&f, false).unwrap_or_else(|| panic!("no dossier for {f}"));
            assert!(text.contains(&format!("compilation dossier: {f}")), "{f}");
            assert!(text.contains("-- assembly --"), "{f}");
            assert!(text.contains("Table 1 phases"), "{f}");
        }
    }

    #[test]
    fn unknown_functions_have_no_dossier() {
        assert!(explain_function("no-such-fn", false).is_none());
    }
}
