//! Machine-readable experiment records (`report --json`).
//!
//! Every experiment gets a record of the *same shape*, built by compiling
//! a representative workload with tracing enabled and running it on a
//! machine with an execution profile attached:
//!
//! ```text
//! { id, title,
//!   compile: { phases: [{phase, spans, wall_us, counters}], rules,
//!              code_size_words },
//!   run:     { entry, value, stats, opcodes, per_function } }
//! ```
//!
//! Fixed keys are [`Json::Obj`] fields (schema); histograms keyed by rule
//! or opcode name are [`Json::Map`]s (only the value type is schema).
//! The golden tests pin [`s1lisp_trace::json::schema`] of these records
//! so the surface stays machine-stable while measured values vary.
//!
//! The run section carries a `post_mortem` field: `null` on success,
//! and the machine's [`PostMortem`](s1lisp_s1sim::PostMortem) JSON when
//! the workload trapped — see [`trap_record`] for the demonstration
//! record `report --json trap` emits.

use s1lisp::{Compiler, Value};
use s1lisp_s1sim::ExecProfile;
use s1lisp_trace::json::Json;

use crate::corpus;

/// The representative workload behind one experiment's JSON record.
pub(crate) struct Workload {
    pub(crate) src: &'static str,
    pub(crate) entry: &'static str,
    pub(crate) args: Vec<Value>,
    pub(crate) globals: Vec<(&'static str, Value)>,
}

fn fx(n: i64) -> Value {
    Value::Fixnum(n)
}

fn fl(x: f64) -> Value {
    Value::Flonum(x)
}

pub(crate) fn workload(id: &str) -> Option<Workload> {
    let w = |src, entry, args| Workload {
        src,
        entry,
        args,
        globals: Vec::new(),
    };
    Some(match id {
        "e1" => w(corpus::EXPTL, "exptl", vec![fx(3), fx(10), fx(1)]),
        "e2" => w(
            corpus::QUADRATIC,
            "quadratic",
            vec![fl(1.0), fl(-3.0), fl(2.0)],
        ),
        "e3" => w(
            "(defun f (a b c) (if (and a (or b c)) (e1) (e2)))
             (defun e1 () 1) (defun e2 () 2)",
            "f",
            vec![fx(1), Value::Nil, fx(1)],
        ),
        "e4" => w(corpus::LOOPN, "loopn", vec![fx(100_000)]),
        "e5" => w(corpus::DOT, "dot-loop", vec![fx(2_000)]),
        "e6" => w(
            corpus::QUADRATIC_TYPED,
            "quadratic-typed",
            vec![fl(1.0), fl(-3.0), fl(2.0)],
        ),
        "e7" => w(
            corpus::PDL_KERNEL,
            "pdl-loop",
            vec![fx(2_000), fl(1.5), fl(2.5)],
        ),
        "e8" => w(corpus::TESTFN, "testfn", vec![fl(1.5), fl(2.5), fl(0.5)]),
        "e9" => w(corpus::HORNER_LOOP, "sum-horner", vec![fx(2_000)]),
        "e10" => Workload {
            src: corpus::SPECIALS_LOOP,
            entry: "accumulate",
            args: vec![fx(5_000)],
            globals: vec![("*step*", fx(2))],
        },
        "e11" => w(corpus::CLOSURES, "escape-test", vec![fx(5)]),
        "e12" => w(corpus::TAK, "tak", vec![fx(14), fx(10), fx(6)]),
        _ => return None,
    })
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn compile_section(c: &Compiler) -> Json {
    let sink = c.trace().expect("tracing was enabled");
    let phases = sink
        .phases()
        .iter()
        .map(|p| {
            let counters = Json::Map(
                p.counters
                    .iter()
                    .map(|&(n, v)| (n.to_string(), Json::uint(v)))
                    .collect(),
            );
            obj(vec![
                ("phase", Json::str(p.phase)),
                ("spans", Json::uint(p.spans)),
                (
                    "wall_us",
                    Json::uint(p.wall.as_micros().try_into().unwrap_or(u64::MAX)),
                ),
                ("counters", counters),
            ])
        })
        .collect();
    let rules = Json::Map(
        c.rule_histogram()
            .into_iter()
            .map(|(r, n)| (r.to_string(), Json::uint(n)))
            .collect(),
    );
    obj(vec![
        ("phases", Json::Arr(phases)),
        ("rules", rules),
        ("code_size_words", Json::uint(c.code_size_words() as u64)),
    ])
}

fn run_section(c: &Compiler, wl: &Workload) -> Json {
    let mut m = c.machine();
    for (name, v) in &wl.globals {
        m.set_global(name, v).expect("global installs");
    }
    // A ring buffer on the profile means a trapping workload yields a
    // post-mortem with its last retired instructions.
    m.profile = Some(Box::new(ExecProfile::with_ring(32)));
    let (value, post_mortem) = match m.run(wl.entry, &wl.args) {
        Ok(v) => (format!("{v}"), Json::Null),
        Err(trap) => (
            format!("{trap}"),
            m.post_mortem.as_ref().map_or(Json::Null, |pm| pm.to_json()),
        ),
    };
    let stats = Json::Map(
        m.stats
            .counters()
            .into_iter()
            .map(|(label, v)| (label.to_string(), Json::uint(v)))
            .collect(),
    );
    let profile = m.profile.take().expect("profile survives the run");
    let opcodes = Json::Map(
        profile
            .opcodes
            .iter()
            .map(|(&op, &n)| (op.to_string(), Json::uint(n)))
            .collect(),
    );
    let names = c.program().names();
    let per_function = profile
        .per_fn()
        .into_iter()
        .map(|(fnid, cycles)| {
            let name = names.resolve(fnid);
            obj(vec![
                ("function", Json::str(&*name)),
                ("cycles", Json::uint(cycles)),
            ])
        })
        .collect();
    obj(vec![
        ("entry", Json::str(wl.entry)),
        ("value", Json::str(value)),
        ("stats", stats),
        ("opcodes", opcodes),
        ("per_function", Json::Arr(per_function)),
        ("post_mortem", post_mortem),
    ])
}

/// The JSON record for one experiment, or `None` for an unknown id.
pub fn json_record(id: &str) -> Option<Json> {
    let title = crate::all_experiments()
        .into_iter()
        .find(|e| e.id == id)?
        .title;
    let wl = workload(id)?;
    let mut c = Compiler::new();
    c.enable_trace();
    c.compile_str(wl.src).expect("workload compiles");
    let compile = compile_section(&c);
    let run = run_section(&c, &wl);
    Some(obj(vec![
        ("id", Json::str(id)),
        ("title", Json::str(title)),
        ("compile", compile),
        ("run", run),
    ]))
}

/// A demonstration record whose workload deliberately traps (`car` of a
/// fixnum two frames deep), exercising the post-mortem surface: the run
/// section's `value` is the trap message and `post_mortem` carries the
/// fault site, last retired instructions, register file, and pending
/// frames.  Everything in it is simulator state, so the record is
/// bit-identical across runs (pinned by test).
pub fn trap_record() -> Json {
    let wl = Workload {
        src: "(defun boom (x) (car x))
              (defun outer (x) (+ 1 (boom x)))",
        entry: "outer",
        args: vec![fx(5)],
        globals: Vec::new(),
    };
    let mut c = Compiler::new();
    c.enable_trace();
    c.compile_str(wl.src).expect("trap workload compiles");
    let compile = compile_section(&c);
    let run = run_section(&c, &wl);
    obj(vec![
        ("id", Json::str("trap")),
        ("title", Json::str("Trap post-mortem demonstration")),
        ("compile", compile),
        ("run", run),
    ])
}

/// Records for every experiment, in index order.
pub fn all_json_records() -> Json {
    Json::Arr(
        crate::all_experiments()
            .iter()
            .filter_map(|e| json_record(e.id))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use s1lisp_trace::json;

    #[test]
    fn every_experiment_has_a_record_and_it_parses() {
        for e in crate::all_experiments() {
            let rec = json_record(e.id).unwrap_or_else(|| panic!("no record for {}", e.id));
            let text = rec.to_string();
            json::parse(&text).unwrap_or_else(|err| panic!("{}: {err}", e.id));
        }
    }

    #[test]
    fn records_share_one_schema() {
        let sigs: Vec<String> = ["e1", "e7", "e12"]
            .iter()
            .map(|id| json::schema(&json_record(id).unwrap()))
            .collect();
        assert_eq!(sigs[0], sigs[1]);
        assert_eq!(sigs[1], sigs[2]);
    }
}
