//! Benchmark programs (duplicated from the suite crate: the workspace
//! root package is not a dependency of this crate).

/// §2's exponentiation-by-squaring.
pub const EXPTL: &str = "(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
        (t (exptl (* x x) (floor (/ n 2)) a))))";

/// A pure tail-recursive countdown loop.
pub const LOOPN: &str = "(defun loopn (n) (if (= n 0) 'done (loopn (- n 1))))";

/// §7's worked example, with `frotz` defined as a no-op.
pub const TESTFN: &str = "(defun frotz (a b c) '())
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))";

/// §4.1's quadratic solver.
pub const QUADRATIC: &str = "(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) two-a)
                     (/ (- (- b) sd) two-a)))))))";

/// Takeuchi's function.
pub const TAK: &str = "(defun tak (x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))";

/// Iterative Fibonacci.
pub const FIB_ITER: &str = "(defun fib-iter (n)
  (do ((a 0 b) (b 1 (+ a b)) (i 0 (+ i 1)))
      ((= i n) a)))";

/// Typed float polynomial (Horner) and a driving loop.
pub const HORNER_LOOP: &str = "(defun horner (x c3 c2 c1 c0)
  (declare (flonum x c3 c2 c1 c0))
  (+$f (*$f (+$f (*$f (+$f (*$f c3 x) c2) x) c1) x) c0))
(defun sum-horner (n)
  (declare (fixnum n))
  (prog (acc x)
    (setq acc 0.0 x 0.0)
    top
    (if (zerop n) (return acc))
    (setq acc (+$f acc (horner x 1.0 -2.0 3.0 -4.0)))
    (setq x (+$f x 0.001))
    (setq n (- n 1))
    (go top)))";

/// A float kernel whose temporaries must become pointers (passed to a
/// user function), for the pdl-number experiment.
pub const PDL_KERNEL: &str = "(defun sink (x y) '())
(defun step$f (a b)
  (let ((d (+$f a b)) (e (*$f a b)))
    (sink d e)
    (max$f d e)))
(defun pdl-loop (n a b)
  (prog (r)
    top
    (if (zerop n) (return r))
    (setq r (step$f a b))
    (setq n (- n 1))
    (go top)))";

/// Special-variable-heavy loop for the deep-binding experiment.
pub const SPECIALS_LOOP: &str = "(proclaim '(special *step*))
(defun accumulate (n)
  (prog (acc)
    (setq acc 0)
    top
    (if (zerop n) (return acc))
    (setq acc (+ acc *step*))
    (setq n (- n 1))
    (go top)))";

/// Closure-discipline suite: one lambda per binding-annotation strategy.
pub const CLOSURES: &str = "(defun use-let (x) (let ((y (* x x))) (+ y 1)))
(defun use-join (a) (if (and a (frob a)) 1 2))
(defun frob (x) x)
(defun make-adder (n) (lambda (x) (+ x n)))
(defun escape-test (n) (let ((f (make-adder n))) (funcall f 10)))";

/// The dot-product kernel for the representation-analysis ablation.
pub const DOT: &str = "(defun dot (ax ay bx by)
  (declare (flonum ax ay bx by))
  (+$f (*$f ax bx) (*$f ay by)))
(defun dot-loop (n)
  (declare (fixnum n))
  (prog (acc)
    (setq acc 0.0)
    top
    (if (zerop n) (return acc))
    (setq acc (+$f acc (dot 1.5 2.5 3.5 4.5)))
    (setq n (- n 1))
    (go top)))";

/// The quadratic solver with type declarations — the type-inference
/// extension turns its generic float arithmetic into machine
/// instructions with no `$f` spelling in the source.
pub const QUADRATIC_TYPED: &str = "(defun quadratic-typed (a b c)
  (declare (flonum a b c))
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) two-a)
                     (/ (- (- b) sd) two-a)))))))";

/// Symbolic differentiation + simplification — the MACSYMA-flavored
/// symbolic workload of the paper's introduction.
pub const DERIV: &str = "(defun deriv (e x)
  (cond ((numberp e) 0)
        ((symbolp e) (if (eq e x) 1 0))
        ((eq (car e) '+) (list '+ (deriv (cadr e) x) (deriv (caddr e) x)))
        ((eq (car e) '*)
         (list '+ (list '* (cadr e) (deriv (caddr e) x))
                  (list '* (caddr e) (deriv (cadr e) x))))
        (t (error 'unknown))))
(defun build-expr (n x)
  (if (zerop n) x (list '* x (list '+ (build-expr (- n 1) x) 1))))
(defun deriv-bench (n x) (deriv (build-expr n x) x))";

/// The Horner kernel with the polynomial written *inline* in the loop
/// (no function-call boundary): the configuration under which the
/// Fateman-style parity claim applies.
pub const HORNER_INLINE: &str = "(defun sum-horner-inline (n)
  (declare (fixnum n))
  (let ((acc 0.0) (x 0.0))
    (prog ()
      top
      (if (zerop n) (return acc))
      (setq acc (+$f acc
                     (+$f (*$f (+$f (*$f (+$f (*$f 1.0 x) -2.0) x) 3.0) x) -4.0)))
      (setq x (+$f x 0.001))
      (setq n (- n 1))
      (go top))))";

/// Allocation churn for the GC trajectory: each outer iteration builds
/// a 500-cons list and immediately drops it, so the inner loop count
/// times the list length overruns the heap and forces collections.
pub const GC_STRESS: &str = "(defun build-list (n acc)
  (if (zerop n) acc (build-list (- n 1) (cons n acc))))
(defun gc-stress (m)
  (prog ()
    top
    (if (zerop m) (return 'done))
    (build-list 500 '())
    (setq m (- m 1))
    (go top)))";

/// `exptl` with a fixnum declaration on the exponent: type inference
/// turns the `floor`/`/`/`*` chain into machine arithmetic.
pub const EXPTL_TYPED: &str = "(defun exptl-typed (x n a)
  (declare (fixnum x n a))
  (cond ((zerop n) a)
        ((oddp n) (exptl-typed (* x x) (floor (/ n 2)) (* a x)))
        (t (exptl-typed (* x x) (floor (/ n 2)) a))))";
