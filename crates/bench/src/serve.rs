//! The compile-server demonstration record (`report --json serve`).
//!
//! One scripted session against an in-process daemon: two tenants join,
//! one proclaims a special that the other does not, both compile the
//! same source into their own namespaces, and the record captures every
//! response — success, auth rejection, unknown-function error — in the
//! fixed wire shape (`tests/golden_json.rs` pins the schema).  The
//! script is deterministic, so the record's *shape* never varies; only
//! the SLO timings do.

use s1lisp_server::{CompileServer, Response, ServeClient, ServerConfig};
use s1lisp_trace::json::Json;

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The source both tenants compile.  `cell` is a plain (unstarred)
/// name: the tenant that proclaims it special gets deep-binding code,
/// the other gets an ordinary lexical `let` — same value, different
/// artifacts, one namespace apart.
const SHARED_SRC: &str = "(defun poke (x) (let ((cell (+ x 21))) (* cell 2)))";

/// Builds the `serve` record: a scripted two-tenant session against a
/// live in-process server, every response in wire form, plus the
/// server-side request counters.
///
/// # Panics
///
/// Panics when the in-process server cannot bind or a transport call
/// fails — the record is a demonstration, not a fault drill.
pub fn serve_record() -> Json {
    let handle = CompileServer::new(ServerConfig::default())
        .serve_tcp(0)
        .expect("bind an ephemeral port");
    let addr = format!("127.0.0.1:{}", handle.port());
    let mut responses: Vec<Json> = Vec::new();
    let mut record = |resp: std::io::Result<Response>| {
        let resp = resp.expect("serve transport");
        responses.push(resp.to_json());
        resp
    };

    let mut alpha = ServeClient::connect(&addr).expect("connect alpha");
    record(alpha.hello("alpha", None));
    // An invalid hello is a first-class refusal, not a dropped frame.
    record(alpha.hello("", None));
    record(alpha.compile("decls", "(proclaim (quote (special cell)))"));
    record(alpha.compile("lib", SHARED_SRC));
    record(alpha.run("poke", &["0"]));
    record(alpha.explain("poke"));
    record(alpha.explain("nope"));
    record(alpha.ping());

    let mut beta = ServeClient::connect(&addr).expect("connect beta");
    record(beta.hello("beta", None));
    record(beta.compile("lib", SHARED_SRC));
    record(beta.run("poke", &["0"]));
    record(beta.ping());

    record(alpha.shutdown());
    let snapshot = handle.metrics_snapshot();
    handle.join();
    let counter = |name: &str| Json::uint(snapshot.counter(name).unwrap_or(0));
    obj(vec![
        ("id", Json::str("serve")),
        (
            "title",
            Json::str("compile server: one session across two tenant namespaces"),
        ),
        (
            "tenants",
            Json::Arr(vec![Json::str("alpha"), Json::str("beta")]),
        ),
        ("responses", Json::Arr(responses)),
        (
            "server",
            obj(vec![
                ("requests", counter("server.requests")),
                ("errors", counter("server.errors")),
                ("rejected", counter("server.rejected")),
                ("incidents", counter("server.incidents")),
                ("degraded_responses", counter("server.degraded_responses")),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_record_demonstrates_namespace_isolation() {
        let rec = serve_record();
        let responses = rec.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(responses.len(), 13);
        // The two `lib` compiles produced byte-different artifacts:
        // alpha's `cell` is special, beta's is lexical.
        let artifact_of = |i: usize| {
            responses[i]
                .get("compile")
                .and_then(|c| c.get("artifacts"))
                .and_then(Json::as_arr)
                .map(|a| a[0].to_string())
                .unwrap()
        };
        let (alpha_lib, beta_lib) = (artifact_of(3), artifact_of(9));
        assert_ne!(alpha_lib, beta_lib, "the proclaim must isolate alpha");
        // Same observable value on both sides.
        assert_eq!(responses[4].get("value"), responses[10].get("value"));
        // The invalid hello and the unknown explain were refused, not
        // dropped.
        assert_eq!(responses[1].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(responses[6].get("ok"), Some(&Json::Bool(false)));
    }
}
