//! Wall-clock benchmarks for the experiment workloads.
//!
//! Instruction/allocation *counts* are deterministic and live in the
//! `report` binary; these benches time the same workloads so the ratios
//! can be checked against physical time (`cargo bench`).
//!
//! The harness is hand-rolled (no external crates available offline): a
//! short warm-up, then a fixed number of timed batches, reporting the
//! best per-iteration time — the usual minimum-of-batches estimator,
//! which is robust to scheduler noise if not criterion-grade.

use std::time::Instant;

use s1lisp::{CodegenOptions, Compiler, Value};
use s1lisp_bench::corpus;

fn fx(n: i64) -> Value {
    Value::Fixnum(n)
}

fn fl(x: f64) -> Value {
    Value::Flonum(x)
}

fn compile(src: &str) -> Compiler {
    let mut c = Compiler::new();
    c.compile_str(src).expect("bench source compiles");
    c
}

/// Times `f` and prints a one-line result: best per-iteration time over
/// `BATCHES` batches of `iters` calls each.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    const BATCHES: u32 = 7;
    // Warm-up.
    for _ in 0..iters {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per = t0.elapsed().as_secs_f64() / f64::from(iters);
        if per < best {
            best = per;
        }
    }
    println!("{name:<40} {:>12.3} µs/iter", best * 1e6);
}

/// E4: tail-recursive loop, compiled vs interpreted.
fn bench_exptl() {
    let compiler = compile(corpus::EXPTL);
    let mut m = compiler.machine();
    let interp = compiler.interpreter();
    let args = [fx(3), fx(30), fx(1)];
    bench("e4_exptl/compiled", 200, || {
        m.run("exptl", &args).unwrap();
    });
    bench("e4_exptl/interpreted", 200, || {
        interp.call("exptl", &args).unwrap();
    });
}

/// E3: boolean short-circuiting.
fn bench_bool() {
    let compiler = compile(
        "(defun f (a b c) (if (and a (or b c)) 1 2))
         (defun drive (n a b c)
           (prog (acc) (setq acc 0)
             top (if (zerop n) (return acc))
             (setq acc (+ acc (f a b c)))
             (setq n (- n 1)) (go top)))",
    );
    let mut m = compiler.machine();
    bench("e3_bool_shortcircuit/compiled", 100, || {
        m.run("drive", &[fx(500), fx(1), Value::Nil, fx(1)])
            .unwrap();
    });
}

/// E7: pdl numbers on/off.
fn bench_pdl() {
    for (name, pdl) in [("on", true), ("off", false)] {
        let mut compiler = Compiler::new();
        compiler.codegen_options = CodegenOptions {
            pdl_numbers: pdl,
            ..CodegenOptions::default()
        };
        compiler.compile_str(corpus::PDL_KERNEL).unwrap();
        let mut m = compiler.machine();
        bench(&format!("e7_pdl_numbers/{name}"), 50, || {
            m.run("pdl-loop", &[fx(500), fl(1.5), fl(2.5)]).unwrap();
        });
    }
}

/// E10: special-variable caching on/off.
fn bench_specials() {
    for (name, cached) in [("cached", true), ("uncached", false)] {
        let mut compiler = Compiler::new();
        compiler.codegen_options = CodegenOptions {
            cache_specials: cached,
            ..CodegenOptions::default()
        };
        compiler.compile_str(corpus::SPECIALS_LOOP).unwrap();
        let mut m = compiler.machine();
        m.set_global("*step*", &fx(2)).unwrap();
        bench(&format!("e10_specials/{name}"), 50, || {
            m.run("accumulate", &[fx(500)]).unwrap();
        });
    }
}

/// E6/E9: the numeric kernel with and without representation analysis.
fn bench_numeric() {
    for (name, rep) in [("on", true), ("off", false)] {
        let mut compiler = Compiler::new();
        compiler.codegen_options = CodegenOptions {
            representation_analysis: rep,
            ..CodegenOptions::default()
        };
        compiler.compile_str(corpus::HORNER_LOOP).unwrap();
        let mut m = compiler.machine();
        bench(&format!("e6_representation/{name}"), 50, || {
            m.run("sum-horner", &[fx(500)]).unwrap();
        });
    }
}

/// E12: full vs naive compiler on tak.
fn bench_ablation() {
    let full = compile(corpus::TAK);
    let mut naive = Compiler::unoptimized();
    naive.compile_str(corpus::TAK).unwrap();
    let args = [fx(12), fx(8), fx(4)];
    let mut m1 = full.machine();
    let mut m2 = naive.machine();
    bench("e12_ablation_tak/full", 20, || {
        m1.run("tak", &args).unwrap();
    });
    bench("e12_ablation_tak/naive", 20, || {
        m2.run("tak", &args).unwrap();
    });
}

/// Compilation speed itself (the compiler is also a program).
fn bench_compile_time() {
    bench("compile_testfn", 50, || {
        let mut compiler = Compiler::new();
        compiler.compile_str(corpus::TESTFN).unwrap();
        compiler.code_size_words();
    });
}

fn main() {
    bench_exptl();
    bench_bool();
    bench_pdl();
    bench_specials();
    bench_numeric();
    bench_ablation();
    bench_compile_time();
}
