//! Criterion wall-clock benchmarks for the experiment workloads.
//!
//! Instruction/allocation *counts* are deterministic and live in the
//! `report` binary; these benches time the same workloads so the ratios
//! can be checked against physical time (`cargo bench`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use s1lisp::{CodegenOptions, Compiler, Value};
use s1lisp_bench::corpus;

fn fx(n: i64) -> Value {
    Value::Fixnum(n)
}

fn fl(x: f64) -> Value {
    Value::Flonum(x)
}

fn compile(src: &str) -> Compiler {
    let mut c = Compiler::new();
    c.compile_str(src).expect("bench source compiles");
    c
}

/// E4: tail-recursive loop, compiled vs interpreted.
fn bench_exptl(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_exptl");
    let compiler = compile(corpus::EXPTL);
    let mut m = compiler.machine();
    let interp = compiler.interpreter();
    let args = [fx(3), fx(30), fx(1)];
    group.bench_function("compiled", |b| {
        b.iter(|| m.run("exptl", &args).unwrap())
    });
    group.bench_function("interpreted", |b| {
        b.iter(|| interp.call("exptl", &args).unwrap())
    });
    group.finish();
}

/// E3: boolean short-circuiting.
fn bench_bool(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_bool_shortcircuit");
    let compiler = compile(
        "(defun f (a b c) (if (and a (or b c)) 1 2))
         (defun drive (n a b c)
           (prog (acc) (setq acc 0)
             top (if (zerop n) (return acc))
             (setq acc (+ acc (f a b c)))
             (setq n (- n 1)) (go top)))",
    );
    let mut m = compiler.machine();
    group.bench_function("compiled", |b| {
        b.iter(|| m.run("drive", &[fx(500), fx(1), Value::Nil, fx(1)]).unwrap())
    });
    group.finish();
}

/// E7: pdl numbers on/off.
fn bench_pdl(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pdl_numbers");
    for (name, pdl) in [("on", true), ("off", false)] {
        let mut compiler = Compiler::new();
        compiler.codegen_options = CodegenOptions {
            pdl_numbers: pdl,
            ..CodegenOptions::default()
        };
        compiler.compile_str(corpus::PDL_KERNEL).unwrap();
        let mut m = compiler.machine();
        group.bench_with_input(BenchmarkId::from_parameter(name), &pdl, |b, _| {
            b.iter(|| m.run("pdl-loop", &[fx(500), fl(1.5), fl(2.5)]).unwrap())
        });
    }
    group.finish();
}

/// E10: special-variable caching on/off.
fn bench_specials(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_specials");
    for (name, cached) in [("cached", true), ("uncached", false)] {
        let mut compiler = Compiler::new();
        compiler.codegen_options = CodegenOptions {
            cache_specials: cached,
            ..CodegenOptions::default()
        };
        compiler.compile_str(corpus::SPECIALS_LOOP).unwrap();
        let mut m = compiler.machine();
        m.set_global("*step*", &fx(2)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &cached, |b, _| {
            b.iter(|| m.run("accumulate", &[fx(500)]).unwrap())
        });
    }
    group.finish();
}

/// E6/E9: the numeric kernel with and without representation analysis.
fn bench_numeric(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_representation");
    for (name, rep) in [("on", true), ("off", false)] {
        let mut compiler = Compiler::new();
        compiler.codegen_options = CodegenOptions {
            representation_analysis: rep,
            ..CodegenOptions::default()
        };
        compiler.compile_str(corpus::HORNER_LOOP).unwrap();
        let mut m = compiler.machine();
        group.bench_with_input(BenchmarkId::from_parameter(name), &rep, |b, _| {
            b.iter(|| m.run("sum-horner", &[fx(500)]).unwrap())
        });
    }
    group.finish();
}

/// E12: full vs naive compiler on tak.
fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_ablation_tak");
    let full = compile(corpus::TAK);
    let mut naive = Compiler::unoptimized();
    naive.compile_str(corpus::TAK).unwrap();
    let args = [fx(12), fx(8), fx(4)];
    let mut m1 = full.machine();
    let mut m2 = naive.machine();
    group.bench_function("full", |b| b.iter(|| m1.run("tak", &args).unwrap()));
    group.bench_function("naive", |b| b.iter(|| m2.run("tak", &args).unwrap()));
    group.finish();
}

/// Compilation speed itself (the compiler is also a program).
fn bench_compile_time(c: &mut Criterion) {
    c.bench_function("compile_testfn", |b| {
        b.iter(|| {
            let mut compiler = Compiler::new();
            compiler.compile_str(corpus::TESTFN).unwrap();
            compiler.code_size_words()
        })
    });
}

criterion_group!(
    benches,
    bench_exptl,
    bench_bool,
    bench_pdl,
    bench_specials,
    bench_numeric,
    bench_ablation,
    bench_compile_time
);
criterion_main!(benches);
