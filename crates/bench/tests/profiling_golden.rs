//! Golden tests for the profiling layer: the folded-stack text for the
//! pinned tak kernel (byte-golden — it is pure simulated-machine state,
//! so two runs must agree exactly), the chrome-trace event schema, and
//! the self/cumulative reconciliation contract.

use s1lisp_bench::{chrome_trace, flame_report};
use s1lisp_trace::chrome;
use s1lisp_trace::json::{self, Json};

const TAK_FOLDED_GOLDEN: &str = include_str!("golden/tak_folded.txt");
const CHROME_TRACE_GOLDEN: &str = include_str!("golden/chrome_trace_schema.txt");

/// Compares `got` against a golden file; `UPDATE_GOLDEN=1 cargo test -p
/// s1lisp-bench` rewrites the file instead, for deliberate bumps.
fn check_golden(got: &str, golden: &str, file: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, got).expect("golden rewrite");
        return;
    }
    assert_eq!(got.trim_end(), golden.trim_end());
}

#[test]
fn tak_folded_stacks_match_golden_byte_for_byte() {
    // Folded stacks are calling-context cycle attribution of a
    // deterministic simulation: no wall times, no host state.  The
    // golden pins both the format (caller;callee cycles) and the exact
    // counts; a codegen change that shifts cycles is a deliberate bump.
    let folded = flame_report("tak").unwrap();
    assert_eq!(folded, flame_report("tak").unwrap(), "byte-deterministic");
    check_golden(&folded, TAK_FOLDED_GOLDEN, "tak_folded.txt");
}

/// See golden_json.rs: empty dynamic maps carry no value type, so pad
/// them with a sentinel before computing the signature.
fn pad_empty_maps(v: Json) -> Json {
    match v {
        Json::Map(entries) if entries.is_empty() => {
            Json::Map(vec![("_".to_string(), Json::Int(0))])
        }
        Json::Map(entries) => Json::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k, pad_empty_maps(v)))
                .collect(),
        ),
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k, pad_empty_maps(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(pad_empty_maps).collect()),
        other => other,
    }
}

#[test]
fn chrome_trace_schema_matches_golden() {
    let trace = chrome_trace();
    // Every event carries the six required trace-event fields.
    let n = chrome::validate_trace(&trace).expect("valid trace");
    assert!(n > 0);
    json::parse(&trace.to_string()).expect("well-formed JSON");
    // Durations are host wall time, but the event *structure* (count,
    // order, field shapes) is deterministic — pinned as a schema.
    let sig = format!("{}\n", json::schema(&pad_empty_maps(trace)));
    check_golden(&sig, CHROME_TRACE_GOLDEN, "chrome_trace_schema.txt");
}

#[test]
fn folded_cycles_reconcile_with_retired_and_per_fn() {
    use s1lisp::{Compiler, Value};
    use s1lisp_s1sim::ExecProfile;

    let mut c = Compiler::new();
    c.compile_str(s1lisp_bench::corpus::TAK).unwrap();
    let mut m = c.machine();
    m.profile = Some(Box::new(ExecProfile::default()));
    m.run(
        "tak",
        &[Value::Fixnum(12), Value::Fixnum(8), Value::Fixnum(4)],
    )
    .unwrap();
    let folded = m.folded_stacks().unwrap();
    let folded_total: u64 = folded
        .lines()
        .map(|l| {
            l.rsplit_once(' ')
                .expect("line is `path cycles`")
                .1
                .parse::<u64>()
                .expect("cycle count")
        })
        .sum();
    let p = m.profile.take().unwrap();
    let per_fn_total: u64 = p.per_fn().iter().map(|&(_, cy)| cy).sum();
    // The reconciliation contract: every attributed cycle is a retired
    // instruction or a runtime-call surcharge, and the stack view, the
    // flat per-function view, and the machine counter all agree.
    assert_eq!(folded_total, p.retired() + p.synthetic_cycles());
    assert_eq!(folded_total, per_fn_total);
    // `stats.insns` already counts the synthetic runtime-call cost, so
    // all three views and the machine counter are the same number.
    assert_eq!(folded_total, m.stats.insns);
    assert_eq!(p.stack_truncated(), 0, "tak(12,8,4) fits the depth cap");
}
