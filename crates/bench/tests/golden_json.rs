//! Golden tests pinning the `report --json` record shape, and the
//! zero-overhead guarantee for execution profiling.
//!
//! The golden file holds the canonical type signature
//! (`s1lisp_trace::json::schema`) of an experiment record.  Measured
//! *values* are free to vary run to run; renaming a field, changing a
//! counter's type, or restructuring the record breaks the golden and
//! must be a deliberate schema bump.

use s1lisp_bench::{
    backend_record, durability_record, guard_miscompile_record, guard_record, json_record,
    metrics_record, passes_record, perfbench, serve_record, service_fault_record, service_record,
    trap_record,
};
use s1lisp_trace::json::{self, Json};

const GOLDEN: &str = include_str!("golden/report_schema.txt");
const TRAP_GOLDEN: &str = include_str!("golden/trap_schema.txt");
const SERVICE_GOLDEN: &str = include_str!("golden/service_schema.txt");
const SERVICE_FAULT_GOLDEN: &str = include_str!("golden/service_fault_schema.txt");
const GUARD_GOLDEN: &str = include_str!("golden/guard_schema.txt");
const GUARD_MISCOMPILE_GOLDEN: &str = include_str!("golden/guard_miscompile_schema.txt");
const PASSES_GOLDEN: &str = include_str!("golden/passes_schema.txt");
const METRICS_GOLDEN: &str = include_str!("golden/metrics_schema.txt");
const PERFBENCH_SIM_GOLDEN: &str = include_str!("golden/perfbench_sim_schema.txt");
const PERFBENCH_SERVICE_GOLDEN: &str = include_str!("golden/perfbench_service_schema.txt");
const SERVE_GOLDEN: &str = include_str!("golden/serve_schema.txt");
const DURABILITY_GOLDEN: &str = include_str!("golden/durability_schema.txt");
const BACKEND_GOLDEN: &str = include_str!("golden/backend_schema.txt");

/// Dynamic maps in a record are int-valued histograms; an *empty* one
/// carries no value type, so pad it with a sentinel entry before
/// computing the signature.  (An experiment whose workload fires no
/// optimizer rules has `rules: {}` — same schema, no entries.)
fn pad_empty_maps(v: Json) -> Json {
    match v {
        Json::Map(entries) if entries.is_empty() => {
            Json::Map(vec![("_".to_string(), Json::Int(0))])
        }
        Json::Map(entries) => Json::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k, pad_empty_maps(v)))
                .collect(),
        ),
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k, pad_empty_maps(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.into_iter().map(pad_empty_maps).collect()),
        other => other,
    }
}

fn pinned_schema(id: &str) -> String {
    let rec = json_record(id).unwrap_or_else(|| panic!("no record for {id}"));
    // The record must also be well-formed JSON text.
    json::parse(&rec.to_string()).unwrap_or_else(|e| panic!("{id}: bad JSON: {e}"));
    json::schema(&pad_empty_maps(rec))
}

#[test]
fn e1_schema_matches_golden() {
    assert_eq!(pinned_schema("e1"), GOLDEN.trim());
}

#[test]
fn e12_schema_matches_golden() {
    assert_eq!(pinned_schema("e12"), GOLDEN.trim());
}

#[test]
fn e8_schema_matches_golden_with_rules_populated() {
    // e8 (testfn) fires optimizer rules, so its `rules` map is
    // populated — the schema must still be the canonical one.
    let rec = json_record("e8").unwrap();
    let rules_nonempty = match &rec {
        Json::Obj(fields) => fields.iter().any(|(k, v)| {
            k == "compile"
                && matches!(v, Json::Obj(inner)
                    if inner.iter().any(|(k2, v2)| k2 == "rules"
                        && matches!(v2, Json::Map(m) if !m.is_empty())))
        }),
        _ => false,
    };
    assert!(rules_nonempty, "testfn should fire rules");
    assert_eq!(pinned_schema("e8"), GOLDEN.trim());
}

#[test]
fn trap_record_schema_matches_golden() {
    let rec = trap_record();
    json::parse(&rec.to_string()).expect("trap record is well-formed JSON");
    assert_eq!(json::schema(&pad_empty_maps(rec)), TRAP_GOLDEN.trim());
}

/// Compares a record's padded schema against a golden file;
/// `UPDATE_GOLDEN=1 cargo test -p s1lisp-bench` rewrites the file
/// instead, for deliberate schema bumps.
fn check_schema(rec: Json, golden: &str, file: &str) {
    json::parse(&rec.to_string()).expect("record is well-formed JSON");
    let sig = json::schema(&pad_empty_maps(rec));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!("{}/tests/golden/{file}", env!("CARGO_MANIFEST_DIR"));
        std::fs::write(path, format!("{sig}\n")).expect("golden rewrite");
        return;
    }
    assert_eq!(sig, golden.trim());
}

#[test]
fn service_record_schema_matches_golden() {
    // jobs = 2, no disk tier: the canonical clean batch record.
    check_schema(
        service_record(2, None),
        SERVICE_GOLDEN,
        "service_schema.txt",
    );
}

#[test]
fn serve_record_schema_matches_golden() {
    // A scripted two-tenant daemon session: every wire response shape
    // (success, auth refusal, unknown-function error, run, explain,
    // ping, shutdown) plus the server counters, pinned as one record.
    check_schema(serve_record(), SERVE_GOLDEN, "serve_schema.txt");
}

#[test]
fn durability_record_schema_matches_golden() {
    // The crash drill: a durable burst, a torn tail, a mid-log flip,
    // and the recovery verdict with both lifetimes' counters.
    check_schema(
        durability_record(),
        DURABILITY_GOLDEN,
        "durability_schema.txt",
    );
}

#[test]
fn backend_record_schema_matches_golden() {
    // The bytecode footprint table plus the cross-backend oracle
    // verdicts, in one record.
    check_schema(backend_record(), BACKEND_GOLDEN, "backend_schema.txt");
}

#[test]
fn service_fault_record_schema_matches_golden() {
    // The faulted batch has a populated incidents array, so its schema
    // is pinned separately from the clean record's.
    check_schema(
        service_fault_record(),
        SERVICE_FAULT_GOLDEN,
        "service_fault_schema.txt",
    );
}

#[test]
fn guard_record_schema_matches_golden() {
    // The injected phase panics are the record's subject; keep their
    // backtraces off test stderr.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let rec = guard_record();
    std::panic::set_hook(prev);
    check_schema(rec, GUARD_GOLDEN, "guard_schema.txt");
}

#[test]
fn passes_record_schema_matches_golden() {
    // The pass schedule as data; a pass rename or a new pass is a
    // deliberate schema/golden bump, caught here and by the core
    // crate's phases() cross-check.
    check_schema(passes_record(), PASSES_GOLDEN, "passes_schema.txt");
}

#[test]
fn guard_miscompile_record_schema_matches_golden() {
    check_schema(
        guard_miscompile_record(),
        GUARD_MISCOMPILE_GOLDEN,
        "guard_miscompile_schema.txt",
    );
}

#[test]
fn metrics_record_schema_matches_golden() {
    // The unified registry snapshot: sim, heap, pipeline, cache, and
    // service metrics in one record.  A renamed metric or a reshaped
    // histogram is a deliberate golden bump.
    check_schema(metrics_record(), METRICS_GOLDEN, "metrics_schema.txt");
}

#[test]
fn perfbench_sim_entry_schema_matches_golden() {
    // The smoke entry (1 trial, smallest kernel) shares its schema with
    // the full trajectory entry — pinned so `perfbench --check` and the
    // committed BENCH_sim.json baseline stay in lockstep.
    let root = std::env::temp_dir();
    check_schema(
        perfbench::smoke_sim_entry(&root),
        PERFBENCH_SIM_GOLDEN,
        "perfbench_sim_schema.txt",
    );
}

#[test]
fn perfbench_service_entry_schema_matches_golden() {
    let root = std::env::temp_dir();
    check_schema(
        perfbench::smoke_service_entry(&root),
        PERFBENCH_SERVICE_GOLDEN,
        "perfbench_service_schema.txt",
    );
}

#[test]
fn trap_post_mortem_is_bit_identical_across_runs() {
    // Everything in the post-mortem is simulated-machine state, so two
    // independent compile+run cycles must agree byte for byte.  (The
    // compile section carries wall times, so compare runs only.)
    let run_of = |rec: Json| match rec {
        Json::Obj(fields) => fields
            .into_iter()
            .find(|(k, _)| k == "run")
            .expect("record has a run section")
            .1
            .to_string(),
        other => panic!("unexpected record shape: {other}"),
    };
    let a = run_of(trap_record());
    let b = run_of(trap_record());
    assert_eq!(a, b);
    // And the post-mortem is populated, not null.
    assert!(a.contains("\"post_mortem\":{"), "{a}");
    assert!(a.contains("\"last_retired\":[{"), "{a}");
    assert!(a.contains("\"registers\":{"), "{a}");
}

#[test]
fn profiling_does_not_perturb_the_simulation() {
    use s1lisp::{Compiler, Value};
    use s1lisp_s1sim::ExecProfile;

    let src = "(defun tak (x y z)
                 (if (not (< y x)) z
                     (tak (tak (- x 1) y z)
                          (tak (- y 1) z x)
                          (tak (- z 1) x y))))";
    let mut c = Compiler::new();
    c.compile_str(src).unwrap();
    let args = [Value::Fixnum(12), Value::Fixnum(8), Value::Fixnum(4)];

    let mut plain = c.machine();
    let v1 = plain.run("tak", &args).unwrap();

    let mut profiled = c.machine();
    profiled.profile = Some(Box::new(ExecProfile::with_ring(64)));
    let v2 = profiled.run("tak", &args).unwrap();

    assert_eq!(v1, v2);
    // The profile is host-side bookkeeping: every simulated counter is
    // bit-identical with and without it.
    assert_eq!(plain.stats.insns, profiled.stats.insns);
    assert_eq!(plain.stats.moves, profiled.stats.moves);
    assert_eq!(plain.stats.calls, profiled.stats.calls);
    assert_eq!(plain.stats.tail_calls, profiled.stats.tail_calls);
    assert_eq!(plain.stats.max_call_depth, profiled.stats.max_call_depth);
    assert_eq!(plain.stats.max_stack_words, profiled.stats.max_stack_words);
    assert_eq!(plain.stats.heap.words, profiled.stats.heap.words);
    assert_eq!(plain.stats.heap.objects(), profiled.stats.heap.objects());
    // And the profile itself accounts for every retired instruction
    // plus the runtime-call surcharges.
    let folded = profiled.folded_stacks().expect("profiled run folds");
    assert!(plain.folded_stacks().is_none(), "no profile, no stacks");
    let p = profiled.profile.take().unwrap();
    assert!(p.retired() > 0);
    let attributed: u64 = p.per_fn().iter().map(|&(_, c)| c).sum();
    assert_eq!(attributed, profiled.stats.insns);
    // The stack tracker rides the same Option check: its folded view
    // accounts for the same total, so enabling it costs the simulation
    // nothing and loses no cycles.
    let folded_total: u64 = folded
        .lines()
        .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
        .sum();
    assert_eq!(folded_total, profiled.stats.insns);
}
