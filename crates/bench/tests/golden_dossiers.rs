//! Golden tests pinning full `explain` dossiers.
//!
//! A dossier rendered without wall times is a pure function of the
//! source and the compiler's decisions, so any byte of drift means a
//! pipeline phase changed behavior — the paper-style transcript, the
//! representation verdicts, the TN packing, or the emitted code.
//! Regenerate deliberately with
//! `cargo run -p s1lisp-bench --bin explain -- --no-wall <fn>`.

use s1lisp_bench::{corpus_functions, explain_function};

fn pinned(name: &str, golden: &str) {
    let text = explain_function(name, false).unwrap_or_else(|| panic!("no dossier for {name}"));
    assert_eq!(
        text, golden,
        "dossier for {name} drifted; regenerate the golden if intentional"
    );
}

#[test]
fn exptl_dossier_matches_golden() {
    // e1's workhorse: the paper's recursive exponentiation example.
    pinned("exptl", include_str!("golden/dossier_exptl.txt"));
}

#[test]
fn testfn_dossier_matches_golden() {
    // e8: the §7 transcript function — rewrites, rep decisions, pdl
    // boxes, and a mixed register/slot TN packing all in one dossier.
    pinned("testfn", include_str!("golden/dossier_testfn.txt"));
}

#[test]
fn tak_dossier_matches_golden() {
    // e12's ablation headliner.
    pinned("tak", include_str!("golden/dossier_tak.txt"));
}

/// The full-corpus byte-identity pin: every experiment function's
/// rendered dossier (sources, transcript, phase rows, rep verdicts, TN
/// packing, assembly), concatenated in corpus order.  Any refactor of
/// the pipeline must leave this file untouched; regenerate deliberately
/// with `UPDATE_GOLDEN=1 cargo test -p s1lisp-bench corpus_dossiers`.
#[test]
fn corpus_dossiers_match_golden() {
    let mut all = String::new();
    for f in corpus_functions() {
        let text = explain_function(&f, false).unwrap_or_else(|| panic!("no dossier for {f}"));
        all.push_str(&text);
        if !all.ends_with('\n') {
            all.push('\n');
        }
        all.push_str("========\n");
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let path = format!(
            "{}/tests/golden/corpus_dossiers.txt",
            env!("CARGO_MANIFEST_DIR")
        );
        std::fs::write(path, &all).expect("golden rewrite");
        return;
    }
    assert_eq!(
        all,
        include_str!("golden/corpus_dossiers.txt"),
        "corpus dossiers drifted; UPDATE_GOLDEN=1 to regenerate if intentional"
    );
}
