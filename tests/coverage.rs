//! Differential coverage of the dialect's corners: every test runs the
//! same program compiled-on-simulator and interpreted, and requires
//! agreement.

use s1lisp::Value;
use s1lisp_suite::{build, check_agree, fl, fx};

fn sym(s: &str) -> Value {
    let mut i = s1lisp_reader::Interner::new();
    Value::Sym(i.intern(s))
}

#[test]
fn apply_spreads_argument_lists() {
    let (mut m, i) = build(
        "(defun add3 (a b c) (+ a b c))
         (defun spread (l) (apply #'add3 l))
         (defun spread-var (f l) (apply f l))",
    );
    let l = Value::list([fx(1), fx(2), fx(3)]);
    check_agree(&mut m, &i, "spread", std::slice::from_ref(&l));
    check_agree(
        &mut m,
        &i,
        "spread-var",
        &[Value::global_function("add3"), l],
    );
    // Wrong count through apply traps in both.
    let short = Value::list([fx(1)]);
    check_agree(&mut m, &i, "spread", &[short]);
}

#[test]
fn funcall_through_data_structures() {
    let (mut m, i) = build(
        "(defun twice (f x) (funcall f (funcall f x)))
         (defun add5 (x) (+ x 5))
         (defun pick (flag) (if flag #'add5 #'1+))
         (defun run (flag x) (twice (pick flag) x))",
    );
    check_agree(&mut m, &i, "run", &[sym("t"), fx(1)]);
    check_agree(&mut m, &i, "run", &[Value::Nil, fx(1)]);
}

#[test]
fn nested_closures_capture_transitively() {
    let (mut m, i) = build(
        "(defun make-add (a) (lambda (b) (lambda (c) (+ a b c))))
         (defun run (x y z) (funcall (funcall (make-add x) y) z))",
    );
    check_agree(&mut m, &i, "run", &[fx(1), fx(2), fx(3)]);
    check_agree(&mut m, &i, "run", &[fx(-7), fx(0), fx(100)]);
}

#[test]
fn closures_share_mutable_state_pairwise() {
    let (mut m, i) = build(
        "(defun make-pair ()
           (let ((n 0))
             (cons (lambda () (setq n (+ n 1)) n)
                   (lambda () n))))
         (defun run ()
           (let ((p (make-pair)))
             (funcall (car p))
             (funcall (car p))
             (funcall (cdr p))))",
    );
    check_agree(&mut m, &i, "run", &[]);
}

#[test]
fn catch_across_functions_unwinds_specials() {
    let (mut m, interp) = build(
        "(proclaim '(special *lvl*))
         (defun probe () *lvl*)
         (defun down (*lvl* n)
           (if (zerop n) (throw 'stop (probe)) (down (+ *lvl* 1) (- n 1))))
         (defun run (n)
           (let ((caught (catch 'stop (down 1 n))))
             (list caught (probe))))",
    );
    m.set_global("*lvl*", &fx(0)).unwrap();
    interp.set_global("*lvl*", fx(0));
    check_agree(&mut m, &interp, "run", &[fx(5)]);
    check_agree(&mut m, &interp, "run", &[fx(0)]);
}

#[test]
fn nested_catches_pick_the_right_tag() {
    let (mut m, i) = build(
        "(defun run (which)
           (catch 'outer
             (+ 100 (catch 'inner
                      (if (eq which 'inner) (throw 'inner 1) '())
                      (if (eq which 'outer) (throw 'outer 2) '())
                      10))))",
    );
    check_agree(&mut m, &i, "run", &[sym("inner")]);
    check_agree(&mut m, &i, "run", &[sym("outer")]);
    check_agree(&mut m, &i, "run", &[sym("neither")]);
}

#[test]
fn caseq_with_symbol_keys() {
    let (mut m, i) = build(
        "(defun color-code (c)
           (caseq c ((red crimson) 1) ((green) 2) ((blue) 3) (t 0)))",
    );
    for s in ["red", "crimson", "green", "blue", "mauve"] {
        check_agree(&mut m, &i, "color-code", &[sym(s)]);
    }
    check_agree(&mut m, &i, "color-code", &[fx(5)]);
}

#[test]
fn rest_parameters_with_many_arguments() {
    let (mut m, i) = build("(defun count-args (&rest r) (length r))");
    for n in [0usize, 1, 5, 12] {
        let args: Vec<Value> = (0..n as i64).map(fx).collect();
        check_agree(&mut m, &i, "count-args", &args);
    }
}

#[test]
fn optional_plus_rest_combination() {
    let (mut m, i) = build("(defun f (a &optional (b 10) &rest r) (list a b r))");
    check_agree(&mut m, &i, "f", &[fx(1)]);
    check_agree(&mut m, &i, "f", &[fx(1), fx(2)]);
    check_agree(&mut m, &i, "f", &[fx(1), fx(2), fx(3), fx(4)]);
    check_agree(&mut m, &i, "f", &[]);
}

#[test]
fn shadowed_progbody_tags_bind_innermost() {
    let (mut m, i) = build(
        "(defun run (n)
           (prog (acc)
             (setq acc 0)
             top
             (if (zerop n) (return acc))
             (prog (k)
               (setq k 2)
               top   ; shadows the outer tag
               (if (zerop k) (return '()))
               (setq acc (+ acc 1))
               (setq k (- k 1))
               (go top))
             (setq n (- n 1))
             (go top)))",
    );
    check_agree(&mut m, &i, "run", &[fx(5)]);
}

#[test]
fn strings_and_characters_flow_through() {
    let (mut m, i) = build(
        "(defun pick (flag a b) (if flag a b))
         (defun is-str (x) (stringp x))",
    );
    check_agree(
        &mut m,
        &i,
        "pick",
        &[sym("t"), Value::Str("hello".into()), fx(1)],
    );
    check_agree(&mut m, &i, "is-str", &[Value::Str("x".into())]);
    check_agree(&mut m, &i, "is-str", &[Value::Char('q')]);
    check_agree(
        &mut m,
        &i,
        "pick",
        &[Value::Nil, Value::Char('a'), Value::Char('b')],
    );
}

#[test]
fn list_library_compiled() {
    let (mut m, i) = build(
        "(defun run (l k)
           (list (length l)
                 (nth k l)
                 (member k l)
                 (reverse l)
                 (append l l)
                 (last l)
                 (nthcdr k l)))",
    );
    let l = Value::list([fx(10), fx(20), fx(1), fx(30)]);
    check_agree(&mut m, &i, "run", &[l.clone(), fx(1)]);
    check_agree(&mut m, &i, "run", &[Value::Nil, fx(0)]);
}

#[test]
fn assoc_tables_compiled() {
    let (mut m, i) = build(
        "(defun lookup (key table) (cdr (assq key table)))
         (defun table () (list (cons 'a 1) (cons 'b 2)))
         (defun run (k) (lookup k (table)))",
    );
    check_agree(&mut m, &i, "run", &[sym("a")]);
    check_agree(&mut m, &i, "run", &[sym("b")]);
    check_agree(&mut m, &i, "run", &[sym("zz")]);
}

#[test]
fn rplaca_certifies_and_mutates() {
    let (mut m, i) = build("(defun smash (cell x) (rplaca cell (+$f x 1.0)) (car cell))");
    let cell = Value::cons(fx(0), Value::Nil);
    check_agree(&mut m, &i, "smash", &[cell, fl(2.5)]);
}

#[test]
fn equal_on_structures() {
    let (mut m, i) = build("(defun same (a b) (equal a b))");
    let x = Value::list([fx(1), Value::list([fx(2), fx(3)]), Value::Str("s".into())]);
    let y = Value::list([fx(1), Value::list([fx(2), fx(3)]), Value::Str("s".into())]);
    let z = Value::list([fx(1), Value::list([fx(2), fx(4)]), Value::Str("s".into())]);
    check_agree(&mut m, &i, "same", &[x.clone(), y]);
    check_agree(&mut m, &i, "same", &[x, z]);
}

#[test]
fn generic_arithmetic_corners() {
    let (mut m, i) = build(
        "(defun run (a b)
           (list (max a b 3) (min a b) (abs (- a b)) (mod a b) (rem a b)
                 (floor a b) (ceiling a b) (truncate a b) (round a b)
                 (expt a 3) (1+ a) (1- b)))",
    );
    for (a, b) in [(7, 2), (-7, 2), (7, -2), (-7, -2), (0, 5)] {
        check_agree(&mut m, &i, "run", &[fx(a), fx(b)]);
    }
    // Division by zero traps in both.
    check_agree(&mut m, &i, "run", &[fx(1), fx(0)]);
}

#[test]
fn mixed_type_contagion() {
    let (mut m, i) = build("(defun run (a b) (list (+ a b) (* a b) (< a b) (= a b)))");
    check_agree(&mut m, &i, "run", &[fx(2), fl(2.5)]);
    check_agree(&mut m, &i, "run", &[fl(2.0), fx(2)]);
    check_agree(&mut m, &i, "run", &[fl(1.5), fl(1.5)]);
}

#[test]
fn deeply_nested_lets_and_ifs() {
    let (mut m, i) = build(
        "(defun run (x)
           (let ((a (+ x 1)))
             (let ((b (if (oddp a) (* a 2) (let ((c (* a 3))) (- c 1)))))
               (let ((d (if (> b 10) b (- b))))
                 (list a b d)))))",
    );
    for n in -3..4 {
        check_agree(&mut m, &i, "run", &[fx(n)]);
    }
}

#[test]
fn setq_of_parameters_and_loop_vars() {
    let (mut m, i) = build(
        "(defun gcd2 (a b)
           (prog ()
             top
             (if (zerop b) (return a))
             (let ((r (rem a b))) (setq a b) (setq b r))
             (go top)))",
    );
    for (a, b) in [(12, 18), (17, 5), (100, 75), (3, 0)] {
        check_agree(&mut m, &i, "gcd2", &[fx(a), fx(b)]);
    }
}

#[test]
fn not_in_value_and_test_positions() {
    let (mut m, i) =
        build("(defun run (p q) (list (not p) (null q) (if (not p) 1 2) (and (not p) (not q))))");
    check_agree(&mut m, &i, "run", &[Value::Nil, fx(1)]);
    check_agree(&mut m, &i, "run", &[fx(1), Value::Nil]);
}

#[test]
fn closures_over_loop_variables_capture_cells() {
    // The loop variable is heap-allocated because closures capture it;
    // all closures see the final value (single cell, as in the
    // interpreter's shared-environment semantics).
    let (mut m, i) = build(
        "(defun make-getters (n)
           (prog (acc)
             top
             (if (zerop n) (return acc))
             (setq acc (cons (lambda () n) acc))
             (setq n (- n 1))
             (go top)))
         (defun run (n) (funcall (car (make-getters n))))",
    );
    check_agree(&mut m, &i, "run", &[fx(3)]);
}

#[test]
fn higher_order_with_specials() {
    let (mut m, interp) = build(
        "(proclaim '(special *scale*))
         (defun scaled (x) (* x *scale*))
         (defun with-scale (*scale* f x) (funcall f x))
         (defun run (x) (with-scale 10 #'scaled x))",
    );
    m.set_global("*scale*", &fx(1)).unwrap();
    interp.set_global("*scale*", fx(1));
    check_agree(&mut m, &interp, "run", &[fx(7)]);
    check_agree(&mut m, &interp, "scaled", &[fx(7)]);
}

#[test]
fn float_specials_certify_on_binding() {
    let (mut m, interp) = build(
        "(proclaim '(special *acc*))
         (defun bump (x) (setq *acc* (+$f *acc* x)) *acc*)",
    );
    m.set_global("*acc*", &fl(0.0)).unwrap();
    interp.set_global("*acc*", fl(0.0));
    check_agree(&mut m, &interp, "bump", &[fl(1.5)]);
    check_agree(&mut m, &interp, "bump", &[fl(2.5)]);
}

#[test]
fn type_inference_lowers_declared_generic_arithmetic() {
    // The paper's stated future work, implemented: declarations let the
    // compiler deduce types for generic operators.
    let src = "(defun poly (x)
                 (declare (flonum x))
                 (+ (* x x) (* 2.0 x) (sqrt (max x 0.5)) 1.0))";
    let (mut m, i) = build(src);
    for x in [0.0, 1.5, -2.0, 9.0] {
        check_agree(&mut m, &i, "poly", &[fl(x)]);
    }
    // And it is actually lowered: no runtime arithmetic calls remain.
    let mut c = s1lisp::Compiler::new();
    c.compile_str(src).unwrap();
    let code = c.disassemble("poly").unwrap();
    let rt_arith = code
        .lines()
        .filter(|l| {
            l.contains("%CALLRT +")
                || l.contains("%CALLRT *")
                || l.contains("%CALLRT sqrt")
                || l.contains("%CALLRT max")
        })
        .count();
    assert_eq!(rt_arith, 0, "{code}");
    assert!(code.contains("FSQRT"), "{code}");
}

#[test]
fn dense_caseq_compiles_to_a_dispatch_table() {
    let src = "(defun digit-name (d)
                 (caseq d ((0) 'zero) ((1) 'one) ((2) 'two) ((3) 'three)
                          ((4) 'four) ((5 6 7) 'several) (t 'many)))";
    let (mut m, i) = build(src);
    for d in -2..10 {
        check_agree(&mut m, &i, "digit-name", &[fx(d)]);
    }
    check_agree(&mut m, &i, "digit-name", &[sym("not-a-number")]);
    let mut c = s1lisp::Compiler::new();
    c.compile_str(src).unwrap();
    let code = c.disassemble("digit-name").unwrap();
    assert!(code.contains("DISPATCH"), "jump table expected:\n{code}");
}

#[test]
fn sparse_caseq_stays_a_compare_chain() {
    let src = "(defun sparse (d) (caseq d ((1) 'a) ((1000) 'b) ((-5) 'c) (t 'z)))";
    let (mut m, i) = build(src);
    for d in [-5, 1, 1000, 7] {
        check_agree(&mut m, &i, "sparse", &[fx(d)]);
    }
}

#[test]
fn fixnum_inference_agrees_with_interpreter() {
    let src = "(defun euclid (a b)
                 (declare (fixnum a b))
                 (if (zerop b) a (euclid b (mod a b))))
               (defun arith (a b)
                 (declare (fixnum a b))
                 (list (+ a b 1) (- a b) (* a 3) (/ a b) (floor a b) (rem a b) (mod a b) (1+ a) (1- b) (- a)))";
    let (mut m, i) = build(src);
    for (a, b) in [(48, 18), (17, 5), (-48, 18), (7, -3), (0, 4)] {
        check_agree(&mut m, &i, "euclid", &[fx(a), fx(b)]);
        check_agree(&mut m, &i, "arith", &[fx(a), fx(b)]);
    }
    // Division by zero still traps in both.
    check_agree(&mut m, &i, "arith", &[fx(5), fx(0)]);
    // Overflow still traps in both.
    check_agree(&mut m, &i, "arith", &[fx(i64::MAX), fx(1)]);
}

#[test]
fn unrolled_loops_agree_with_the_interpreter() {
    let src = "(defun sum-down (n acc)
                 (declare (fixnum n acc))
                 (if (zerop n) acc (sum-down (- n 1) (+ acc n))))";
    // Compare unrolled-compiled vs default-compiled vs interpreter.
    let mut unrolled = s1lisp::Compiler::new();
    unrolled.opt_options.unroll = true;
    let (mut m_u, i_u) = s1lisp_suite::build_with(src, unrolled);
    let (mut m_d, _) = build(src);
    for n in [0i64, 1, 7, 100, 101] {
        let args = [fx(n), fx(0)];
        check_agree(&mut m_u, &i_u, "sum-down", &args);
        assert_eq!(
            m_u.run("sum-down", &args).unwrap(),
            m_d.run("sum-down", &args).unwrap()
        );
    }
    // The unrolled loop takes about half the tail transfers.
    m_u.stats.reset();
    m_d.stats.reset();
    m_u.run("sum-down", &[fx(1000), fx(0)]).unwrap();
    m_d.run("sum-down", &[fx(1000), fx(0)]).unwrap();
    assert!(
        m_u.stats.tail_calls * 2 <= m_d.stats.tail_calls + 2,
        "unrolled {} vs default {}",
        m_u.stats.tail_calls,
        m_d.stats.tail_calls
    );
}
