//! Compile-server contracts: byte-identity with `compile_batch`,
//! tenant isolation, backpressure, fairness, and incident-budget
//! demotion.

use s1lisp::Compiler;
use s1lisp_bench::service_units;
use s1lisp_driver::{CompileService, FaultInjection, FaultMode, ServiceConfig, SourceUnit};
use s1lisp_server::{
    Body, CompileServer, Op, QueueConfig, ServeClient, ServerConfig, ServerHandle,
};

fn start(config: ServerConfig) -> ServerHandle {
    CompileServer::new(config)
        .serve_tcp(0)
        .expect("bind an ephemeral port")
}

fn connect(handle: &ServerHandle) -> ServeClient {
    ServeClient::connect(&format!("127.0.0.1:{}", handle.port())).expect("connect")
}

fn artifact_bytes(resp: &s1lisp_server::Response) -> Vec<String> {
    let Body::Compile { artifacts, .. } = &resp.body else {
        panic!("compile body expected, got ok={} {:?}", resp.ok, resp.error);
    };
    artifacts.iter().map(|a| a.to_json().to_string()).collect()
}

/// Two tenants concurrently compile the whole experiment corpus through
/// the daemon (a fresh namespace per unit, mirroring `compile_batch`'s
/// no-leak-across-units contract) and every artifact is byte-identical
/// to a plain `compile_batch` of the same corpus — the acceptance
/// contract for the server being "the same compiler, resident".
#[test]
fn server_artifacts_are_byte_identical_to_compile_batch() {
    let reference: Vec<String> = CompileService::new(ServiceConfig::default())
        .compile_batch(&service_units())
        .artifacts
        .iter()
        .map(|a| a.to_json().to_string())
        .collect();
    assert!(!reference.is_empty());

    let handle = start(ServerConfig::default());
    let port = handle.port();
    let clients: Vec<_> = ["alpha", "beta"]
        .into_iter()
        .map(|who| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(&format!("127.0.0.1:{port}")).unwrap();
                let mut served = Vec::new();
                for (i, unit) in service_units().iter().enumerate() {
                    // A fresh tenant per unit: units must not see each
                    // other's proclaims, exactly as in `compile_batch`.
                    assert!(client.hello(&format!("{who}-{i}"), None).unwrap().ok);
                    let resp = client.compile(&unit.name, &unit.source).unwrap();
                    assert!(resp.ok, "{who} unit {}: {:?}", unit.name, resp.error);
                    served.extend(artifact_bytes(&resp));
                }
                served
            })
        })
        .collect();
    for client in clients {
        let served = client.join().expect("client thread");
        assert_eq!(
            served, reference,
            "served artifacts diverge from compile_batch"
        );
    }
    handle.shutdown();
    handle.join();
}

/// Conflicting `proclaim`s give byte-different, each-internally-
/// consistent artifacts: the tenant that proclaimed `cell` special
/// gets deep-binding code (`%SPECBIND`), the tenant that didn't gets a
/// lexical `let`, and each matches what a dedicated compiler with that
/// namespace produces.  (A plain name: starred names are special by
/// convention for every tenant, so they can't tell namespaces apart.)
#[test]
fn conflicting_specials_isolate_tenant_namespaces() {
    const DEF: &str = "(defun probe (x) (let ((cell (+ x 1))) (use cell)))";
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    assert!(client.hello("special-k", None).unwrap().ok);
    assert!(
        client
            .compile("decl", "(proclaim (quote (special cell)))")
            .unwrap()
            .ok
    );
    let special = client.compile("probe", DEF).unwrap();
    let special_bytes = artifact_bytes(&special);

    assert!(client.hello("lexical", None).unwrap().ok);
    let lexical = client.compile("probe", DEF).unwrap();
    let lexical_bytes = artifact_bytes(&lexical);

    assert_ne!(
        special_bytes, lexical_bytes,
        "the proclaim must change compiled code"
    );

    // Each tenant's artifact is exactly what a single-tenant compile of
    // its namespace produces: the special tenant matches a unit that
    // proclaims then defines; the lexical tenant matches the bare unit.
    let service = CompileService::new(ServiceConfig::default());
    let special_ref = service.compile_batch(&[SourceUnit::new(
        "probe",
        format!("(proclaim (quote (special cell)))\n{DEF}"),
    )]);
    let lexical_ref = service.compile_batch(&[SourceUnit::new("probe", DEF)]);
    assert_eq!(
        special_bytes,
        special_ref
            .artifacts
            .iter()
            .map(|a| a.to_json().to_string())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        lexical_bytes,
        lexical_ref
            .artifacts
            .iter()
            .map(|a| a.to_json().to_string())
            .collect::<Vec<_>>()
    );

    // And the single-shot tenant constructor agrees on the code.
    let mut c = Compiler::for_tenant(["cell"]);
    c.compile_str(DEF).expect("serial compile");
    let serial = c.artifact("probe").expect("artifact");
    assert_eq!(serial.assembly, special_ref.artifacts[0].assembly);

    handle.shutdown();
    handle.join();
}

/// Tenants never warm-hit each other's cache entries: recompiling the
/// same source as the same tenant hits, compiling it as another tenant
/// does not — while still producing byte-identical artifacts.
#[test]
fn no_cross_tenant_cache_hits() {
    const SRC: &str = "(defun shared (x) (* x (+ x 1)))";
    let handle = start(ServerConfig::default());
    let mut client = connect(&handle);

    assert!(client.hello("first", None).unwrap().ok);
    let cold = client.compile("u", SRC).unwrap();
    let before_warm = handle.metrics_snapshot().counter("cache.hits").unwrap_or(0);
    let warm = client.compile("u", SRC).unwrap();
    let after_warm = handle.metrics_snapshot().counter("cache.hits").unwrap_or(0);
    assert!(
        after_warm > before_warm,
        "same tenant, same source must warm-hit"
    );
    assert_eq!(artifact_bytes(&cold), artifact_bytes(&warm));

    assert!(client.hello("second", None).unwrap().ok);
    let other = client.compile("u", SRC).unwrap();
    let after_other = handle.metrics_snapshot().counter("cache.hits").unwrap_or(0);
    assert_eq!(
        after_other, after_warm,
        "a different tenant must not hit the first tenant's entries"
    );
    // Same code nonetheless: isolation is about observability, not
    // output divergence.
    assert_eq!(artifact_bytes(&cold), artifact_bytes(&other));

    handle.shutdown();
    handle.join();
}

/// A full queue answers with a retry hint; nothing is silently
/// dropped: every pipelined request gets exactly one response, either
/// served or rejected.
#[test]
fn queue_full_rejects_with_retry_after_and_drops_nothing() {
    let handle = start(ServerConfig {
        workers: 1,
        queue: QueueConfig {
            per_tenant: 2,
            total: 2,
            quantum: 4,
        },
        run_fuel: 20_000_000,
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    assert!(client.hello("burst", None).unwrap().ok);
    assert!(
        client
            .compile("spin", "(defun spin (n) (if (= n 0) 0 (spin (- n 1))))")
            .unwrap()
            .ok
    );
    // Eight fuel-bound runs into a 1-worker, depth-2 queue: the first
    // occupies the worker, two queue, the rest must bounce.
    let ids: Vec<u64> = (0..8)
        .map(|_| {
            client
                .send(Op::Run {
                    entry: "spin".into(),
                    args: vec!["100000000".into()],
                })
                .unwrap()
        })
        .collect();
    let responses: Vec<_> = ids
        .into_iter()
        .map(|id| client.recv_id(id).unwrap())
        .collect();
    let served = responses.iter().filter(|r| r.ok).count();
    let rejected: Vec<_> = responses.iter().filter(|r| !r.ok).collect();
    assert_eq!(served + rejected.len(), 8, "every request got a response");
    // At least the queue's depth is served; whether the worker claimed
    // one mid-burst (making it three) is a scheduling race.
    assert!(served >= 2, "queue capacity must serve");
    assert!(!rejected.is_empty(), "the burst must overflow the queue");
    for r in rejected {
        assert!(r.retry_after_ms > 0, "rejections carry a retry hint");
        assert_eq!(r.error.as_deref(), Some("queue full"));
    }
    // Served runs all hit the fuel ceiling — contained, not hung.
    for r in responses.iter().filter(|r| r.ok) {
        let Body::Run { value } = &r.body else {
            panic!("run body expected");
        };
        assert!(
            value.starts_with("trap:"),
            "fuel must bound the run: {value}"
        );
    }
    handle.shutdown();
    handle.join();
}

/// Deficit-round-robin end to end: a tenant flooding the only worker
/// with slow runs cannot starve a light tenant's requests.
#[test]
fn flooding_tenant_cannot_starve_light_tenant() {
    let handle = start(ServerConfig {
        workers: 1,
        run_fuel: 20_000_000,
        ..ServerConfig::default()
    });
    let port = handle.port();
    let flooder = std::thread::spawn(move || {
        let mut client = ServeClient::connect(&format!("127.0.0.1:{port}")).unwrap();
        assert!(client.hello("flood", None).unwrap().ok);
        assert!(
            client
                .compile("spin", "(defun spin (n) (if (= n 0) 0 (spin (- n 1))))")
                .unwrap()
                .ok
        );
        let ids: Vec<u64> = (0..6)
            .map(|_| {
                client
                    .send(Op::Run {
                        entry: "spin".into(),
                        args: vec!["100000000".into()],
                    })
                    .unwrap()
            })
            .collect();
        for id in ids {
            client.recv_id(id).unwrap();
        }
        std::time::Instant::now()
    });
    // Give the flood a head start so its backlog is queued first.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut light = connect(&handle);
    assert!(light.hello("light", None).unwrap().ok);
    assert!(light.ping().unwrap().ok);
    assert!(light.ping().unwrap().ok);
    let light_done = std::time::Instant::now();
    let flood_done = flooder.join().expect("flooder thread");
    assert!(
        light_done < flood_done,
        "light tenant waited behind the whole flood backlog"
    );
    handle.shutdown();
    handle.join();
}

/// An exhausted incident budget demotes the tenant: later compiles run
/// with transformations off (clean artifacts, `degraded` SLO flag on),
/// while other tenants keep full optimization.
#[test]
fn incident_budget_demotes_only_the_offending_tenant() {
    const OPT: &str = "(defun folds (x) (if (null nil) (+ x 1) (- x 1)))";
    let handle = start(ServerConfig {
        incident_budget: 1,
        service: ServiceConfig {
            fault: Some(FaultInjection {
                function: "boom".into(),
                mode: FaultMode::Panic,
            }),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    });
    let mut client = connect(&handle);
    assert!(client.hello("victim", None).unwrap().ok);

    let faulted = client.compile("boom", "(defun boom (x) (* x x))").unwrap();
    assert!(faulted.ok, "the incident is contained: {:?}", faulted.error);
    assert_eq!(faulted.slo.incident_kind.as_deref(), Some("panic"));
    assert!(faulted.slo.degraded);
    let Body::Compile {
        artifacts,
        incidents,
        ..
    } = &faulted.body
    else {
        panic!("compile body expected");
    };
    assert!(incidents[0].recovered);
    assert!(artifacts[0].degraded, "the recovery artifact is marked");

    // The victim is now demoted: clean compiles, transformations off.
    let demoted = client.compile("opt", OPT).unwrap();
    assert!(demoted.ok);
    assert!(demoted.slo.degraded, "demotion shows on every response");
    let Body::Compile { artifacts, .. } = &demoted.body else {
        panic!("compile body expected");
    };
    assert_eq!(artifacts[0].transformations, 0);
    assert!(
        !artifacts[0].degraded,
        "demoted compiles are clean, not faulted"
    );

    // A well-behaved tenant on the same server still optimizes.
    assert!(client.hello("bystander", None).unwrap().ok);
    let full = client.compile("opt", OPT).unwrap();
    assert!(!full.slo.degraded);
    let Body::Compile { artifacts, .. } = &full.body else {
        panic!("compile body expected");
    };
    assert!(
        artifacts[0].transformations > 0,
        "the bystander keeps source-level optimization"
    );

    handle.shutdown();
    handle.join();
}
