//! The classic stress test: a (mini) Lisp evaluator written in the
//! dialect itself, compiled to S-1 code, evaluating expressions on the
//! simulator — association-list environments, symbol dispatch, recursion
//! and heap churn all at once, checked against the reference
//! interpreter.

use s1lisp::Value;
use s1lisp_reader::{read_str, Interner};
use s1lisp_suite::{build, check_agree};

const MINI_EVAL: &str = "
(defun lookup (x env)
  (let ((hit (assq x env)))
    (if (null hit) (error 'unbound) (cdr hit))))

(defun mini-eval (e env)
  (cond ((numberp e) e)
        ((symbolp e) (lookup e env))
        ((eq (car e) 'quote) (cadr e))
        ((eq (car e) 'if)
         (if (mini-eval (cadr e) env)
             (mini-eval (caddr e) env)
             (mini-eval (car (cdddr e)) env)))
        ((eq (car e) 'let1)   ; (let1 name init body)
         (mini-eval (car (cdddr e))
                    (cons (cons (cadr e) (mini-eval (caddr e) env)) env)))
        (t (mini-apply (car e)
                       (mini-eval (cadr e) env)
                       (if (cddr e) (mini-eval (caddr e) env) 0)))))

(defun mini-apply (op a b)
  (caseq op
    ((+) (+ a b))
    ((-) (- a b))
    ((*) (* a b))
    ((<) (< a b))
    ((=) (= a b))
    (t (error 'unknown-op))))

(defun run-mini (e) (mini-eval e '()))
";

fn datum(src: &str) -> Value {
    let mut i = Interner::new();
    Value::from_datum(&read_str(src, &mut i).unwrap())
}

#[test]
fn mini_evaluator_agrees_compiled_vs_interpreted() {
    let (mut m, i) = build(MINI_EVAL);
    for expr in [
        "42",
        "(+ 1 2)",
        "(* (+ 1 2) (- 10 4))",
        "(if (< 1 2) 10 20)",
        "(if (= 1 2) 10 20)",
        "(let1 x 5 (* x x))",
        "(let1 x 3 (let1 y (+ x 1) (* x y)))",
        "(let1 x 2 (if (< x 3) (let1 y 10 (+ x y)) 0))",
        "(quote 99)",
        "unbound-symbol",
        "(% 1 2)",
    ] {
        check_agree(&mut m, &i, "run-mini", &[datum(expr)]);
    }
}

#[test]
fn mini_evaluator_runs_a_recursive_tower() {
    // Nested let1s deep enough to churn the environment alist.
    let mut expr = String::from("x0");
    for k in (0..30).rev() {
        expr = format!("(let1 x{k} {} (+ x{k} {}))", k + 1, expr);
    }
    // Replace the innermost free x0 reference correctly: the expression
    // is (let1 x0 1 (+ x0 (let1 x1 2 (+ x1 …)))).
    let (mut m, i) = build(MINI_EVAL);
    check_agree(&mut m, &i, "run-mini", &[datum(&expr)]);
    assert!(m.stats.heap.conses > 0, "environment alists allocate");
}
