//! Tier-1 pins for the parallel compilation service (`crates/driver`):
//! scheduling invariance, cache soundness, and fault isolation.
//!
//! The contracts pinned here are the acceptance criteria of the
//! subsystem:
//! * batch compiles at `jobs ∈ {1, 2, 8}` are **byte-identical** —
//!   assembly and full dossier renders — over the whole experiment
//!   corpus;
//! * a warm-cache recompile is byte-identical too, and its job records
//!   show the Preliminary phase *alone* (cache hits skip every
//!   downstream phase);
//! * an injected optimizer panic (or budget overrun) degrades exactly
//!   the targeted function — recorded as an `Incident` — while every
//!   other artifact matches the clean run byte for byte.

use std::time::Duration;

use s1lisp_bench::service_units;
use s1lisp_driver::{
    BatchResult, CompileService, FaultInjection, FaultMode, IncidentKind, Outcome, Schedule,
    ServiceConfig, SourceUnit,
};

fn corpus_batch(jobs: usize) -> (CompileService, BatchResult) {
    let service = CompileService::new(ServiceConfig::with_jobs(jobs));
    let batch = service.compile_batch(&service_units());
    (service, batch)
}

#[test]
fn parallel_and_serial_corpus_compiles_are_byte_identical() {
    let (_, serial) = corpus_batch(1);
    assert!(serial.failures.is_empty(), "{:?}", serial.failures);
    assert!(serial.stats.functions >= 12);
    let serial_render = serial.render_artifacts();
    for jobs in [2, 8] {
        let (_, parallel) = corpus_batch(jobs);
        assert_eq!(
            serial_render,
            parallel.render_artifacts(),
            "jobs={jobs} diverged from serial"
        );
        // Assembly is inside the dossiers, but pin it explicitly too.
        for (a, b) in serial.artifacts.iter().zip(&parallel.artifacts) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.assembly, b.assembly, "assembly diverged for {}", a.name);
            assert_eq!(a.fingerprint, b.fingerprint);
        }
    }
}

#[test]
fn sorted_and_fifo_schedules_are_byte_identical() {
    // Size-sorted scheduling reorders only the queue; reassembly is by
    // source order, so FIFO and largest-first batches must agree byte
    // for byte at every worker count.
    let fifo_render = {
        let config = ServiceConfig {
            jobs: 1,
            schedule: Schedule::Fifo,
            ..ServiceConfig::default()
        };
        let batch = CompileService::new(config).compile_batch(&service_units());
        assert!(batch.failures.is_empty(), "{:?}", batch.failures);
        assert_eq!(batch.stats.schedule, Schedule::Fifo);
        batch.render_artifacts()
    };
    for jobs in [1, 2, 8] {
        let config = ServiceConfig {
            jobs,
            schedule: Schedule::LargestFirst,
            ..ServiceConfig::default()
        };
        let batch = CompileService::new(config).compile_batch(&service_units());
        assert_eq!(batch.stats.schedule, Schedule::LargestFirst);
        // Records come back in source order regardless of queue order.
        let seqs: Vec<usize> = batch.records.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        assert_eq!(
            fifo_render,
            batch.render_artifacts(),
            "sorted schedule at jobs={jobs} diverged from FIFO"
        );
    }
}

#[test]
fn warm_cache_recompile_is_identical_and_skips_all_phases() {
    let (service, cold) = corpus_batch(4);
    assert_eq!(cold.stats.cache.hits, 0);
    assert_eq!(cold.stats.cache.misses, cold.stats.functions as u64);
    let warm = service.compile_batch(&service_units());
    assert_eq!(cold.render_artifacts(), warm.render_artifacts());
    assert_eq!(warm.hit_rate_percent(), 100);
    assert_eq!(warm.stats.cache.misses, 0);
    for r in &warm.records {
        assert_eq!(r.outcome, Outcome::Hit, "{} was not a hit", r.function);
        // The pinned evidence that a hit skips every phase after
        // Preliminary: the job's trace saw exactly one phase.
        let phases: Vec<&str> = r.phase_spans.iter().map(|(p, _, _)| p.as_str()).collect();
        assert_eq!(
            phases,
            ["Preliminary"],
            "{} ran phases {phases:?}",
            r.function
        );
    }
}

#[test]
fn injected_panic_degrades_one_function_and_spares_the_rest() {
    let (_, clean) = corpus_batch(2);
    let config = ServiceConfig {
        jobs: 2,
        fault: Some(FaultInjection {
            function: "tak".to_string(),
            mode: FaultMode::Panic,
        }),
        ..ServiceConfig::default()
    };
    let faulted = CompileService::new(config).compile_batch(&service_units());
    // The batch still completed: every function has an artifact.
    assert_eq!(faulted.artifacts.len(), clean.artifacts.len());
    assert!(faulted.failures.is_empty(), "{:?}", faulted.failures);
    // Exactly one incident, recovered via the degraded path.
    assert_eq!(faulted.incidents.len(), 1);
    let incident = &faulted.incidents[0];
    assert_eq!(incident.function, "tak");
    assert_eq!(incident.kind, IncidentKind::Panic);
    assert!(incident.recovered);
    assert!(incident.detail.contains("injected"), "{}", incident.detail);
    // Exactly one degraded artifact; everything else is byte-equal to
    // the clean run.
    let mut degraded = 0;
    for (c, f) in clean.artifacts.iter().zip(&faulted.artifacts) {
        assert_eq!(c.name, f.name);
        if f.degraded {
            degraded += 1;
            assert_eq!(f.name, "tak");
            assert!(f.insns > 0);
        } else {
            assert_eq!(c.dossier, f.dossier, "{} was perturbed", c.name);
        }
    }
    assert_eq!(degraded, 1);
    let record = faulted
        .records
        .iter()
        .find(|r| r.function == "tak")
        .unwrap();
    assert_eq!(record.outcome, Outcome::Degraded);
    // Degraded output is never cached: recompiling misses again.
    // (A fresh service, same fault: still exactly one incident.)
}

#[test]
fn budget_overrun_times_out_and_recovers() {
    let config = ServiceConfig {
        jobs: 2,
        time_budget: Some(Duration::from_millis(50)),
        fault: Some(FaultInjection {
            function: "slowpoke".to_string(),
            mode: FaultMode::Hang(Duration::from_millis(400)),
        }),
        ..ServiceConfig::default()
    };
    let units = [SourceUnit::new(
        "u",
        "(defun slowpoke (x) (* x x)) (defun fine (x) (+ x 1))",
    )];
    let batch = CompileService::new(config).compile_batch(&units);
    assert_eq!(batch.incidents.len(), 1);
    assert_eq!(batch.incidents[0].kind, IncidentKind::Timeout);
    assert!(batch.incidents[0].recovered);
    assert!(batch.artifact("slowpoke").unwrap().degraded);
    assert!(!batch.artifact("fine").unwrap().degraded);
    assert_eq!(
        batch
            .records
            .iter()
            .find(|r| r.function == "fine")
            .unwrap()
            .outcome,
        Outcome::Compiled
    );
}

#[test]
fn pass_budget_overrun_degrades_with_the_pass_named() {
    // A zero per-pass budget trips on the first pass of every job; the
    // service routes the structured overrun to the same degraded path
    // as a watchdog timeout, but the incident detail names the pass.
    let config = ServiceConfig {
        jobs: 2,
        pass_budget: Some(Duration::ZERO),
        ..ServiceConfig::default()
    };
    let units = [SourceUnit::new(
        "u",
        "(defun sq (x) (* x x)) (defun inc (x) (+ x 1))",
    )];
    let batch = CompileService::new(config).compile_batch(&units);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert_eq!(batch.incidents.len(), 2);
    for i in &batch.incidents {
        assert_eq!(i.kind, IncidentKind::Timeout);
        assert!(i.recovered, "{} not recovered", i.function);
        assert!(
            i.detail.contains("pass budget exceeded"),
            "detail should name the budget: {}",
            i.detail
        );
    }
    // The degraded retries ran budget-free and produced artifacts.
    assert!(batch.artifact("sq").unwrap().degraded);
    assert!(batch.artifact("inc").unwrap().degraded);
    // A generous budget compiles everything cleanly.
    let config = ServiceConfig {
        jobs: 2,
        pass_budget: Some(Duration::from_secs(60)),
        ..ServiceConfig::default()
    };
    let batch = CompileService::new(config).compile_batch(&units);
    assert!(batch.incidents.is_empty());
    assert!(!batch.artifact("sq").unwrap().degraded);
}

#[test]
fn disk_tier_warms_a_fresh_service() {
    let dir = std::env::temp_dir().join(format!("s1lisp-driver-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = |jobs| ServiceConfig {
        jobs,
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let cold = CompileService::new(config(4)).compile_batch(&service_units());
    assert_eq!(cold.stats.cache.disk_hits, 0);
    // A *different* service instance (cold memory) over the same
    // directory: every hit comes off disk.
    let warm = CompileService::new(config(4)).compile_batch(&service_units());
    assert_eq!(warm.hit_rate_percent(), 100);
    assert_eq!(warm.stats.cache.disk_hits, warm.stats.functions as u64);
    assert_eq!(cold.render_artifacts(), warm.render_artifacts());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn backend_partitions_the_cache_on_disk_and_in_memory() {
    use s1lisp_driver::BackendSelect;

    // The backend salts the options fingerprint, which is folded into
    // every cache key — so an S-1 artifact must never satisfy a
    // bytecode request, across both the memory and disk tiers.
    let dir =
        std::env::temp_dir().join(format!("s1lisp-driver-backend-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = |backend| ServiceConfig {
        jobs: 2,
        backend,
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let s1 = CompileService::new(config(BackendSelect::S1)).compile_batch(&service_units());
    assert!(s1.failures.is_empty(), "{:?}", s1.failures);
    assert_eq!(s1.stats.cache.hits, 0);
    // A fresh service, same directory, other backend: the disk tier is
    // warm with S-1 artifacts, yet nothing may hit.
    let bc = CompileService::new(config(BackendSelect::Bytecode)).compile_batch(&service_units());
    assert!(bc.failures.is_empty(), "{:?}", bc.failures);
    assert_eq!(bc.hit_rate_percent(), 0, "bytecode hit the s1 cache");
    assert_eq!(bc.stats.cache.disk_hits, 0);
    assert!(bc.artifacts.iter().all(|a| a.backend == "bytecode"));
    assert!(s1.artifacts.iter().all(|a| a.backend == "s1"));
    // Each backend *does* hit its own entries on a rerun.
    let warm = CompileService::new(config(BackendSelect::S1)).compile_batch(&service_units());
    assert_eq!(warm.hit_rate_percent(), 100);
    assert_eq!(warm.render_artifacts(), s1.render_artifacts());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compile_failures_are_isolated_per_function() {
    let units = [SourceUnit::new(
        "u",
        "(defun ok (x) (+ x 1)) (defun bad (x) (undefined-special-form)) (defun ok2 (y) (* y 2))",
    )];
    let service = CompileService::new(ServiceConfig::with_jobs(2));
    let batch = service.compile_batch(&units);
    // `bad` calls an unknown global — that still compiles (late
    // binding); use a genuinely malformed body instead.
    let units = [SourceUnit::new(
        "u",
        "(defun ok (x) (+ x 1)) (defun bad (x) (setq x)) (defun ok2 (y) (* y 2))",
    )];
    let batch2 = service.compile_batch(&units);
    assert!(batch2.artifact("ok").is_some());
    assert!(batch2.artifact("ok2").is_some());
    assert!(batch2.artifact("bad").is_none());
    assert_eq!(batch2.failures.len(), 1);
    assert_eq!(batch2.failures[0].0, "bad");
    assert_eq!(
        batch2
            .records
            .iter()
            .find(|r| r.function == "bad")
            .unwrap()
            .outcome,
        Outcome::Failed
    );
    // The first batch had no failures at all.
    assert!(batch.failures.is_empty());
}

#[test]
fn split_preserves_unit_level_specials_ordering() {
    // `counter` is proclaimed special *between* the two defuns: `before`
    // must treat it lexical, `after` special — exactly like the serial
    // front end.
    let units = [SourceUnit::new(
        "u",
        "(defun before (counter) counter)
         (proclaim '(special counter))
         (defun after () counter)",
    )];
    let batch = CompileService::new(ServiceConfig::with_jobs(2)).compile_batch(&units);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    let before = batch.artifact("before").unwrap();
    let after = batch.artifact("after").unwrap();
    assert!(!before.assembly.contains("%SPEC"), "{}", before.assembly);
    assert!(after.assembly.contains("%SPEC"), "{}", after.assembly);
}
