//! Gabriel-flavored kernels (Richard Gabriel, a co-author, later
//! assembled the standard Lisp benchmark suite) run differentially:
//! compiled-on-simulator vs the reference interpreter.

use s1lisp::Value;
use s1lisp_suite::{build, check_agree, fx};

#[test]
fn div2_iterative_and_recursive() {
    let (mut m, i) = build(
        "(defun create-n (n)
           (do ((i n (- i 1)) (a '() (cons '() a)))
               ((= i 0) a)))
         (defun iterative-div2 (l)
           (do ((l l (cddr l)) (a '() (cons (car l) a)))
               ((null l) a)))
         (defun recursive-div2 (l)
           (cond ((null l) '())
                 (t (cons (car l) (recursive-div2 (cddr l))))))
         (defun test-div2 (n)
           (let ((l (create-n n)))
             (list (length (iterative-div2 l))
                   (length (recursive-div2 l)))))",
    );
    for n in [0i64, 2, 10, 60] {
        check_agree(&mut m, &i, "test-div2", &[fx(n)]);
    }
}

#[test]
fn destructive_list_surgery() {
    let (mut m, i) = build(
        "(defun attach (x l) (rplacd (last l) (cons x '())) l)
         (defun run (n)
           (let ((l (list 1)))
             (prog ()
               top
               (if (zerop n) (return l))
               (attach n l)
               (setq n (- n 1))
               (go top))))",
    );
    for n in [0i64, 1, 5, 12] {
        check_agree(&mut m, &i, "run", &[fx(n)]);
    }
}

#[test]
fn triangle_style_counting() {
    let (mut m, i) = build(
        "(defun listn (n) (if (zerop n) '() (cons n (listn (- n 1)))))
         (defun mas (x y z)
           (if (not (shorterp y x))
               z
               (mas (mas (cdr x) y z)
                    (mas (cdr y) z x)
                    (mas (cdr z) x y))))
         (defun shorterp (x y)
           (and y (or (null x) (shorterp (cdr x) (cdr y)))))
         (defun run (a b c)
           (length (mas (listn a) (listn b) (listn c))))",
    );
    check_agree(&mut m, &i, "run", &[fx(7), fx(5), fx(3)]);
}

#[test]
fn flatten_with_accumulator() {
    let (mut m, i) = build(
        "(defun flatten (x acc)
           (cond ((null x) acc)
                 ((atom x) (cons x acc))
                 (t (flatten (car x) (flatten (cdr x) acc)))))
         (defun run (x) (flatten x '()))",
    );
    let nested = Value::list([
        fx(1),
        Value::list([fx(2), Value::list([fx(3), fx(4)]), fx(5)]),
        Value::list([]),
        fx(6),
    ]);
    check_agree(&mut m, &i, "run", &[nested]);
    check_agree(&mut m, &i, "run", &[fx(9)]);
}

#[test]
fn fixnum_heavy_puzzle_kernel() {
    // A small constraint loop with declared fixnums: inference keeps the
    // arithmetic inline.
    let (mut m, i) = build(
        "(defun collatz-steps (n)
           (declare (fixnum n))
           (prog (steps)
             (setq steps 0)
             top
             (if (= n 1) (return steps))
             (if (evenp n)
                 (setq n (/ n 2))
                 (setq n (+ (* 3 n) 1)))
             (setq steps (+ steps 1))
             (go top)))",
    );
    for n in [1i64, 6, 27, 97] {
        check_agree(&mut m, &i, "collatz-steps", &[fx(n)]);
    }
}

#[test]
fn string_symbol_tables() {
    let (mut m, i) = build(
        "(defun count-matches (key l)
           (cond ((null l) 0)
                 ((equal (car l) key) (+ 1 (count-matches key (cdr l))))
                 (t (count-matches key (cdr l)))))",
    );
    let mut si = s1lisp_reader::Interner::new();
    let l = Value::list([
        Value::Sym(si.intern("a")),
        Value::Str("x".into()),
        Value::Sym(si.intern("a")),
        Value::Str("y".into()),
        Value::Str("x".into()),
    ]);
    check_agree(
        &mut m,
        &i,
        "count-matches",
        &[Value::Sym(si.intern("a")), l.clone()],
    );
    check_agree(&mut m, &i, "count-matches", &[Value::Str("x".into()), l]);
}
