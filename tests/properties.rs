//! Property-based tests over the whole toolchain.
//!
//! Random programs are generated as source *text* from a small grammar,
//! then pushed through reader → frontend → optimizer → codegen →
//! simulator, with the reference interpreter as oracle at every level.

use s1lisp::{Compiler, Value};
use s1lisp_reader::{read_str, Interner};
use s1lisp_trace::rng::SplitMix64;

// ---------------------------------------------------------------- reader

/// print ∘ read is the identity on printed form (read-print
/// round-trip stability).
#[test]
fn reader_round_trips() {
    let mut rng = SplitMix64::new(0x5115_0006);
    for _case in 0..256 {
        let src = random_datum(&mut rng, 3);
        let mut i = Interner::new();
        let d1 = read_str(&src, &mut i).unwrap();
        let printed = d1.to_string();
        let d2 = read_str(&printed, &mut i).unwrap();
        assert!(d2.equal(&d1), "{src} → {printed}");
        assert_eq!(d2.to_string(), printed);
    }
}

/// Random datum source text.
fn random_datum(rng: &mut SplitMix64, depth: u32) -> String {
    if depth > 0 && rng.below(3) == 0 {
        let n = rng.range_usize(0, 4);
        let items: Vec<String> = (0..n).map(|_| random_datum(rng, depth - 1)).collect();
        return format!("({})", items.join(" "));
    }
    match rng.below(5) {
        0 => (rng.next_u64() as i32).to_string(),
        1 => format!("{}", f64::from(rng.range_i64(-1000, 1000) as i32) / 8.0),
        2 => {
            let mut s = String::new();
            s.push(*rng.pick(b"abcdefghijklmnopqrstuvwxyz") as char);
            for _ in 0..rng.range_usize(0, 7) {
                s.push(*rng.pick(b"abcdefghijklmnopqrstuvwxyz0123456789-") as char);
            }
            s
        }
        3 => "()".to_string(),
        _ => "\"str\"".to_string(),
    }
}

// ------------------------------------------------------------- pipeline

/// A random arithmetic/control expression over fixnum variables a, b, c
/// — including nonlocal exits (`catch`/`throw`, `prog`/`return`), so the
/// differential fuzz exercises the catcher and progbody paths.
fn random_expr(rng: &mut SplitMix64, depth: u32) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(2) {
            0 => rng.range_i64(-20, 20).to_string(),
            _ => (*rng.pick(&["a", "b", "c"])).to_string(),
        };
    }
    match rng.below(9) {
        0 => format!(
            "(+ {} {})",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        1 => format!(
            "(- {} {})",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        2 => format!(
            "(* {} {})",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        3 => format!(
            "(if (< {} 3) {} {})",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        4 => format!(
            "(let ((tmp {})) (+ tmp {}))",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        5 => format!(
            "(if (and (< {} {y}) (oddp {y})) 1 0)",
            random_expr(rng, depth - 1),
            y = random_expr(rng, depth - 1)
        ),
        6 => format!(
            "(car (cons {} {}))",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        7 => format!(
            "(catch 'esc (if (< {} 0) (throw 'esc {}) {}))",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        _ => format!(
            "(prog (acc) (setq acc {}) (if (< acc {}) (return {})) (return (+ acc {})))",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
    }
}

/// Compiled code and the interpreter agree on random expressions —
/// and the optimizer preserves that agreement.
#[test]
fn compiled_matches_interpreted() {
    let mut rng = SplitMix64::new(0x5115_0007);
    for _case in 0..64 {
        let body = random_expr(&mut rng, 3);
        let (a, b, c) = (
            rng.range_i64(-10, 10),
            rng.range_i64(-10, 10),
            rng.range_i64(-10, 10),
        );
        let src = format!("(defun f (a b c) {body})");
        let args = [Value::Fixnum(a), Value::Fixnum(b), Value::Fixnum(c)];
        for compiler in [Compiler::new(), Compiler::unoptimized()] {
            let mut comp = compiler;
            comp.compile_str(&src).unwrap();
            let interp = comp.interpreter();
            let mut m = comp.machine();
            let got = m.run("f", &args);
            let want = interp.call("f", &args);
            match (&want, &got) {
                (Ok(w), Ok(g)) => assert_eq!(g, w, "{src} {args:?}"),
                (Err(_), Err(_)) => {}
                _ => panic!("divergence on {src}: {want:?} vs {got:?}"),
            }
        }
    }
}

/// The two backends agree on random programs: the S-1 simulator and
/// the bytecode evaluator compute the same value (or both trap) for
/// every seeded case — including the grammar's nonlocal exits
/// (`catch`/`throw`, `prog`/`return`).  Each case draws its own seed,
/// printed on failure, so a divergence replays with
/// `SplitMix64::new(seed)` alone.
#[test]
fn backends_agree_on_random_programs() {
    use s1lisp::BackendKind;
    const FUEL: u64 = 1_000_000;
    let mut seeder = SplitMix64::new(0x5115_000d);
    for _case in 0..64 {
        let seed = seeder.next_u64();
        let mut rng = SplitMix64::new(seed);
        let body = random_expr(&mut rng, 3);
        let (a, b, c) = (
            rng.range_i64(-10, 10),
            rng.range_i64(-10, 10),
            rng.range_i64(-10, 10),
        );
        let src = format!("(defun f (a b c) {body})");
        let args = [Value::Fixnum(a), Value::Fixnum(b), Value::Fixnum(c)];

        let mut s1 = Compiler::new();
        s1.compile_str(&src).unwrap();
        let mut m = s1.machine();
        m.fuel_per_run = FUEL;
        let s1_r = m.run("f", &args);

        let mut bc = Compiler::new();
        bc.backend = BackendKind::Bytecode;
        bc.compile_str(&src).unwrap();
        let mut e = bc.evaluator();
        e.fuel_per_run = FUEL;
        let bc_r = e.run("f", &args);

        match (&s1_r, &bc_r) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "seed {seed:#x}: {src} {args:?}"),
            // Both trapping is agreement: trap wording and fuel
            // metering are backend-specific.
            (Err(_), Err(_)) => {}
            _ => panic!(
                "seed {seed:#x}: backends diverged on {src} {args:?}: \
                 s1 {s1_r:?} vs bytecode {bc_r:?}"
            ),
        }
    }
}

/// The optimizer never changes what a program denotes: optimized and
/// unoptimized *interpretations* agree (no simulator involved).
#[test]
fn optimizer_preserves_interpretation() {
    let mut rng = SplitMix64::new(0x5115_0008);
    for _case in 0..48 {
        let body = random_expr(&mut rng, 3);
        let (a, b) = (rng.range_i64(-10, 10), rng.range_i64(-10, 10));
        let src = format!("(defun f (a b c) {body})");
        let args = [Value::Fixnum(a), Value::Fixnum(b), Value::Fixnum(3)];
        let mut opt = Compiler::new();
        opt.compile_str(&src).unwrap();
        let mut plain = Compiler::unoptimized();
        plain.compile_str(&src).unwrap();
        let i1 = opt.interpreter(); // interprets the optimized tree
        let i2 = plain.interpreter(); // interprets the original tree
        let r1 = i1.call("f", &args);
        let r2 = i2.call("f", &args);
        match (&r1, &r2) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{src}"),
            (Err(_), Err(_)) => {}
            _ => panic!("optimizer changed semantics of {src}: {r1:?} vs {r2:?}"),
        }
    }
}

// ---------------------------------------------------- pass commutation

/// The four analysis passes are pure observers of the tree: any
/// permutation of their schedule slots produces byte-identical
/// artifacts (assembly, back-translated sources, transcripts,
/// transformation counts) over a seeded fuzz corpus.
#[test]
fn analysis_passes_commute_under_any_permutation() {
    const QUARTET: [&str; 4] = [
        "Environment analysis",
        "Side-effects analysis",
        "Complexity analysis",
        "Tail-recursion analysis",
    ];

    fn permutations(items: &[&'static str]) -> Vec<Vec<&'static str>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &head) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut tail in permutations(&rest) {
                tail.insert(0, head);
                out.push(tail);
            }
        }
        out
    }

    let mut rng = SplitMix64::new(0x5115_000c);
    let programs: Vec<String> = (0..8)
        .map(|k| format!("(defun p{k} (a b c) {})", random_expr(&mut rng, 3)))
        .collect();

    // Compile the corpus through a pipeline with the quartet in the
    // given order and render every artifact the compiler records.
    let compile_with = |order: &[&'static str]| -> String {
        let mut c = Compiler::new();
        let mut pipeline = c.pipeline();
        assert!(pipeline.permute(order), "{order:?} did not resolve");
        let mut out = String::new();
        for src in &programs {
            for p in c.convert_str(src).unwrap() {
                let name = c.compile_pending_with(p, &pipeline).unwrap();
                out.push_str(&c.disassemble(&name).unwrap());
            }
        }
        for f in &c.functions {
            out.push_str(&f.converted);
            out.push_str(&f.optimized);
            out.push_str(&format!("{}{:?}", f.transformations, f.transcript));
        }
        out
    };

    let baseline = compile_with(&QUARTET);
    for order in permutations(&QUARTET) {
        assert_eq!(baseline, compile_with(&order), "{order:?} diverged");
    }
}

/// The compilation service is scheduling-invariant on random programs:
/// serial and parallel batches agree byte for byte, and each hermetic
/// job matches a classic single-function compile of the same form.
#[test]
fn driver_batches_are_jobs_invariant_on_random_programs() {
    use s1lisp_driver::{CompileService, ServiceConfig, SourceUnit};

    let mut rng = SplitMix64::new(0x5115_0009);
    for _round in 0..6 {
        let n = rng.range_usize(3, 8);
        let defuns: Vec<String> = (0..n)
            .map(|k| format!("(defun f{k} (a b c) {})", random_expr(&mut rng, 3)))
            .collect();
        let units = [SourceUnit::new("fuzz", defuns.join("\n"))];
        let serial = CompileService::new(ServiceConfig::with_jobs(1)).compile_batch(&units);
        let parallel = CompileService::new(ServiceConfig::with_jobs(4)).compile_batch(&units);
        assert!(serial.failures.is_empty(), "{:?}", serial.failures);
        assert_eq!(
            serial.render_artifacts(),
            parallel.render_artifacts(),
            "{units:?}"
        );
        // Hermetic jobs: the service's artifact for each function is the
        // classic compiler's output for that defun compiled alone.
        for (k, d) in defuns.iter().enumerate() {
            let mut classic = Compiler::new();
            classic.compile_str(d).unwrap();
            let name = format!("f{k}");
            assert_eq!(
                serial.artifact(&name).unwrap().assembly,
                classic.disassemble(&name).unwrap(),
                "{d}"
            );
        }
    }
}

/// Seeded fault storms never lose work and never perturb bystanders:
/// for random `FaultPlan` seeds arming phase panics across the corpus,
/// every batch still completes with zero failures, and every function
/// the storm did *not* touch is byte-identical to the clean baseline.
#[test]
fn driver_fault_storms_leave_untouched_functions_byte_identical() {
    use s1lisp_driver::{CompileService, FaultPlan, FaultSite, ServiceConfig};

    let units = s1lisp_bench::service_units();
    let baseline = CompileService::new(ServiceConfig::with_jobs(2)).compile_batch(&units);
    assert!(baseline.failures.is_empty(), "{:?}", baseline.failures);

    // The injected panics are the subject; keep their backtraces quiet.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut rng = SplitMix64::new(0x5115_000b);
    for _round in 0..4 {
        let seed = rng.next_u64();
        let cfg = ServiceConfig {
            jobs: 4,
            guard: true,
            fault_plan: Some(FaultPlan::new(seed).arm(FaultSite::PhasePanic, 35)),
            ..ServiceConfig::default()
        };
        let batch = CompileService::new(cfg).compile_batch(&units);
        assert!(
            batch.failures.is_empty(),
            "seed {seed}: {:?}",
            batch.failures
        );
        assert_eq!(
            batch.artifacts.len(),
            baseline.artifacts.len(),
            "seed {seed}"
        );
        assert!(
            batch.incidents.iter().all(|i| i.recovered),
            "seed {seed}: {:?}",
            batch.incidents
        );
        assert!(batch.guard.as_ref().is_some_and(|g| g.contained));
        let hit: std::collections::HashSet<&str> = batch
            .incidents
            .iter()
            .map(|i| i.function.as_str())
            .collect();
        for a in &batch.artifacts {
            if hit.contains(a.name.as_str()) {
                continue;
            }
            let clean = baseline.artifact(&a.name).unwrap();
            assert_eq!(a.dossier, clean.dossier, "seed {seed}: {}", a.name);
            assert!(!a.degraded, "seed {seed}: {}", a.name);
        }
    }
    std::panic::set_hook(prev);
}

// ------------------------------------------------------------ GC stress

#[test]
fn gc_preserves_live_structure_under_pressure() {
    // A tiny heap forces many collections while building and walking
    // lists; results must still match the interpreter.
    let src = "(defun build (n) (if (zerop n) '() (cons n (build (- n 1)))))
               (defun total (l) (if (null l) 0 (+ (car l) (total (cdr l)))))
               (defun churn (n reps)
                 (prog (acc)
                   (setq acc 0)
                   top
                   (if (zerop reps) (return acc))
                   (setq acc (+ acc (total (build n))))
                   (setq reps (- reps 1))
                   (go top)))";
    let mut c = Compiler::new();
    c.compile_str(src).unwrap();
    let mut m = s1lisp_s1sim::Machine::with_sizes(c.program().clone(), 1 << 16, 700);
    let v = m
        .run("churn", &[Value::Fixnum(30), Value::Fixnum(200)])
        .unwrap();
    // 200 × (30·31/2) = 93 000.
    assert_eq!(v, Value::Fixnum(93_000));
    assert!(
        m.stats.heap.collections > 3,
        "expected GC pressure, got {} collections",
        m.stats.heap.collections
    );
}

#[test]
fn heap_exhaustion_is_a_clean_trap() {
    let src = "(defun keep (n acc) (if (zerop n) acc (keep (- n 1) (cons n acc))))";
    let mut c = Compiler::new();
    c.compile_str(src).unwrap();
    let mut m = s1lisp_s1sim::Machine::with_sizes(c.program().clone(), 1 << 16, 256);
    let r = m.run("keep", &[Value::Fixnum(10_000), Value::Nil]);
    let err = r.unwrap_err();
    assert!(matches!(err.cause(), s1lisp_s1sim::Trap::HeapExhausted));
    // The trap names its source: the faulting function and PC.
    assert_eq!(err.site().map(|(f, _)| f), Some("keep"));
}
