//! Property-based tests over the whole toolchain.
//!
//! Random programs are generated as source *text* from a small grammar,
//! then pushed through reader → frontend → optimizer → codegen →
//! simulator, with the reference interpreter as oracle at every level.

use proptest::prelude::*;
use s1lisp::{Compiler, Value};
use s1lisp_reader::{read_str, Interner};

// ---------------------------------------------------------------- reader

proptest! {
    /// print ∘ read is the identity on printed form (read-print
    /// round-trip stability).
    #[test]
    fn reader_round_trips(src in datum_strategy(3)) {
        let mut i = Interner::new();
        let d1 = read_str(&src, &mut i).unwrap();
        let printed = d1.to_string();
        let d2 = read_str(&printed, &mut i).unwrap();
        prop_assert!(d2.equal(&d1), "{src} → {printed}");
        prop_assert_eq!(d2.to_string(), printed);
    }
}

/// Random datum source text.
fn datum_strategy(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|n| n.to_string()),
        (-1000..1000i32).prop_map(|n| format!("{}", f64::from(n) / 8.0)),
        "[a-z][a-z0-9-]{0,6}".prop_map(|s| s),
        Just("()".to_string()),
        Just("\"str\"".to_string()),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop::collection::vec(inner, 0..4)
            .prop_map(|items| format!("({})", items.join(" ")))
    })
    .boxed()
}

// ------------------------------------------------------------- pipeline

/// A random arithmetic/control expression over fixnum variables a, b, c.
fn expr_strategy(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|n| n.to_string()),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(str::to_string),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| format!("(+ {x} {y})")),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| format!("(- {x} {y})")),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| format!("(* {x} {y})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(p, x, y)| format!("(if (< {p} 3) {x} {y})")),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| format!("(let ((tmp {x})) (+ tmp {y}))")),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| format!("(if (and (< {x} {y}) (oddp {y})) 1 0)")),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| format!("(car (cons {x} {y}))")),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Compiled code and the interpreter agree on random expressions —
    /// and the optimizer preserves that agreement.
    #[test]
    fn compiled_matches_interpreted(
        body in expr_strategy(3),
        a in -10i64..10,
        b in -10i64..10,
        c in -10i64..10,
    ) {
        let src = format!("(defun f (a b c) {body})");
        let args = [Value::Fixnum(a), Value::Fixnum(b), Value::Fixnum(c)];
        for compiler in [Compiler::new(), Compiler::unoptimized()] {
            let mut comp = compiler;
            comp.compile_str(&src).unwrap();
            let interp = comp.interpreter();
            let mut m = comp.machine();
            let got = m.run("f", &args);
            let want = interp.call("f", &args);
            match (&want, &got) {
                (Ok(w), Ok(g)) => prop_assert_eq!(g, w, "{} {:?}", src, args),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "divergence on {}: {:?} vs {:?}", src, want, got),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// The optimizer never changes what a program denotes: optimized and
    /// unoptimized *interpretations* agree (no simulator involved).
    #[test]
    fn optimizer_preserves_interpretation(
        body in expr_strategy(3),
        a in -10i64..10,
        b in -10i64..10,
    ) {
        let src = format!("(defun f (a b c) {body})");
        let args = [Value::Fixnum(a), Value::Fixnum(b), Value::Fixnum(3)];
        let mut opt = Compiler::new();
        opt.compile_str(&src).unwrap();
        let mut plain = Compiler::unoptimized();
        plain.compile_str(&src).unwrap();
        let i1 = opt.interpreter();   // interprets the optimized tree
        let i2 = plain.interpreter(); // interprets the original tree
        let r1 = i1.call("f", &args);
        let r2 = i2.call("f", &args);
        match (&r1, &r2) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "{}", src),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "optimizer changed semantics of {}: {:?} vs {:?}", src, r1, r2),
        }
    }
}

// ------------------------------------------------------------ GC stress

#[test]
fn gc_preserves_live_structure_under_pressure() {
    // A tiny heap forces many collections while building and walking
    // lists; results must still match the interpreter.
    let src = "(defun build (n) (if (zerop n) '() (cons n (build (- n 1)))))
               (defun total (l) (if (null l) 0 (+ (car l) (total (cdr l)))))
               (defun churn (n reps)
                 (prog (acc)
                   (setq acc 0)
                   top
                   (if (zerop reps) (return acc))
                   (setq acc (+ acc (total (build n))))
                   (setq reps (- reps 1))
                   (go top)))";
    let mut c = Compiler::new();
    c.compile_str(src).unwrap();
    let mut m = s1lisp_s1sim::Machine::with_sizes(c.program().clone(), 1 << 16, 700);
    let v = m
        .run("churn", &[Value::Fixnum(30), Value::Fixnum(200)])
        .unwrap();
    // 200 × (30·31/2) = 93 000.
    assert_eq!(v, Value::Fixnum(93_000));
    assert!(
        m.stats.heap.collections > 3,
        "expected GC pressure, got {} collections",
        m.stats.heap.collections
    );
}

#[test]
fn heap_exhaustion_is_a_clean_trap() {
    let src = "(defun keep (n acc) (if (zerop n) acc (keep (- n 1) (cons n acc))))";
    let mut c = Compiler::new();
    c.compile_str(src).unwrap();
    let mut m = s1lisp_s1sim::Machine::with_sizes(c.program().clone(), 1 << 16, 256);
    let r = m.run("keep", &[Value::Fixnum(10_000), Value::Nil]);
    assert!(matches!(r, Err(s1lisp_s1sim::Trap::HeapExhausted)));
}
