//! Fidelity tests: the paper's own worked examples must come out of this
//! reproduction the way the paper shows them.

use s1lisp::Compiler;
use s1lisp_suite::{fl, fx, TESTFN};

/// §4.1: the quadratic example's conversion to the internal tree "would
/// back-translate into" the form printed in the paper — `let` as a call
/// to a manifest lambda, `cond` as nested `if`s, constants quoted.
#[test]
fn quadratic_back_translation_matches_section_4_1() {
    let mut c = Compiler::new();
    c.opt_options = s1lisp::OptOptions::none(); // conversion only
    c.compile_str(s1lisp_suite::QUADRATIC).unwrap();
    let f = c.function("quadratic").unwrap();
    let flat = f
        .converted
        .replace('\n', " ")
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ");
    assert!(flat.starts_with("(lambda (a b c) ((lambda (d)"), "{flat}");
    assert!(flat.contains("(if (< d '0) '()"), "{flat}");
    assert!(flat.contains("(if (= d '0)"), "{flat}");
    assert!(flat.contains("(- (* b b) (* '4.0 a c))"), "{flat}");
}

/// Table 2: the internal tree uses exactly the paper's construct set.
#[test]
fn internal_constructs_match_table_2() {
    let mut c = Compiler::new();
    c.compile_str(
        "(defun all-constructs (x)
           (catch 'tag
             (prog (acc)
               top
               (setq acc (caseq x ((1) 'one) (t 'other)))
               (if (null acc) (go top))
               (return (progn (frotz (lambda () x)) acc)))))",
    )
    .unwrap();
    let f = c.function("all-constructs").unwrap();
    let mut seen: Vec<&'static str> = s1lisp_ast::subtree_nodes(&f.tree, f.tree.root)
        .into_iter()
        .map(|n| f.tree.kind(n).construct_name())
        .collect();
    seen.sort_unstable();
    seen.dedup();
    let table2 = [
        "call", "caseq", "catcher", "go", "if", "lambda", "progbody", "progn", "quote", "return",
        "setq", "variable",
    ];
    for construct in &seen {
        assert!(table2.contains(construct), "{construct} is not in Table 2");
    }
    // And this one program exercises every construct.
    for construct in table2 {
        assert!(seen.contains(&construct), "missing {construct}");
    }
}

/// §7: the transcript of compiling `testfn` shows the same
/// transformations, in the same spirit, as the paper's debugging output.
#[test]
fn testfn_transcript_matches_section_7() {
    let mut c = Compiler::new();
    c.compile_str(TESTFN).unwrap();
    let f = c.function("testfn").unwrap();
    let t = &f.transcript;
    // "(+$f a b c) to be (+$f (+$f c b) a) courtesy of
    // META-EVALUATE-ASSOC-COMMUT-CALL"
    assert!(
        t.entries
            .iter()
            .any(|e| e.rule == "META-EVALUATE-ASSOC-COMMUT-CALL"
                && e.before == "(+$f a b c)"
                && e.after == "(+$f (+$f c b) a)"),
        "{t}"
    );
    assert!(
        t.entries
            .iter()
            .any(|e| e.rule == "META-EVALUATE-ASSOC-COMMUT-CALL"
                && e.before == "(*$f a b c)"
                && e.after == "(*$f (*$f c b) a)"),
        "{t}"
    );
    // "(*$f e 0.159154942) to be (*$f 0.159154942 e) courtesy of
    // CONSIDER-REVERSING-ARGUMENTS"
    assert!(
        t.entries
            .iter()
            .any(|e| e.rule == "CONSIDER-REVERSING-ARGUMENTS" && e.after == "(*$f '0.159154942 e)"),
        "{t}"
    );
    // The substitution for q and the final META-CALL-LAMBDA cleanup.
    assert!(
        t.entries.iter().any(|e| e.rule == "META-SUBSTITUTE"
            && e.after
                .contains("(progn (frotz d e (max$f d e)) (sinc$f (*$f '0.159154942 e)))")),
        "{t}"
    );
    assert!(t.count("META-CALL-LAMBDA") >= 1, "{t}");
    // The final optimized form is the paper's.
    let flat = f.optimized.split_whitespace().collect::<Vec<_>>().join(" ");
    assert!(flat.contains("(+$f (+$f c b) a)"), "{flat}");
    assert!(flat.contains("(*$f (*$f c b) a)"), "{flat}");
    assert!(flat.contains("(sinc$f (*$f '0.159154942 e))"), "{flat}");
}

/// Table 4's structural landmarks in the generated code for `testfn`.
#[test]
fn testfn_code_has_table_4_landmarks() {
    let mut c = Compiler::new();
    c.compile_str(TESTFN).unwrap();
    let code = c.disassemble("testfn").unwrap();
    // The dispatch on the number of arguments (Table 4's four-way jump).
    assert!(code.contains("DISPATCH"), "{code}");
    assert!(code.contains("TRAP"), "{code}");
    // Per-arity default initialization: the constant 3.0 appears in a
    // case body.
    assert!(code.contains("K0") || code.contains("3"), "{code}");
    // Pdl numbers: values installed in stack slots, then MOVP'd into
    // pointers (Table 4's "Install value for PDL-allocated number" /
    // "Pointer to PDL slot").
    assert!(code.contains("MOVP *:DTP-SingleFlonum"), "{code}");
    // The sine-of-cycles constant and instruction.
    assert!(code.contains("0.159154942"), "{code}");
    assert!(code.contains("FSIN"), "{code}");
    // The heap allocation for the returned value ("Generate new number
    // object") — a single-flonum cons, not a pdl number.
    assert!(code.contains("%SINGLE-FLONUM-CONS"), "{code}");
    assert!(code.contains("FMAX"), "{code}");
}

/// Table 4 behaviorally: two pdl numbers, one heap box for the return
/// value, per full-argument call.
#[test]
fn testfn_allocation_behavior() {
    let mut c = Compiler::new();
    c.compile_str(TESTFN).unwrap();
    let mut m = c.machine();
    // Warm up constants, then measure one call.
    m.run("testfn", &[fl(1.5), fl(2.5), fl(0.5)]).unwrap();
    let (pdl0, flo0) = (m.stats.pdl_numbers, m.stats.heap.flonums);
    m.run("testfn", &[fl(1.5), fl(2.5), fl(0.5)]).unwrap();
    let pdl = m.stats.pdl_numbers - pdl0;
    let flonums = m.stats.heap.flonums - flo0;
    // d, e, and the max$f argument live on the stack.
    assert_eq!(pdl, 3, "pdl numbers per call");
    // 3 injected arguments + 1 returned box; d/e/max never hit the heap.
    assert_eq!(flonums, 4, "heap flonums per call");
}

/// §2's headline: `exptl` "behaves iteratively (it cannot produce stack
/// overflow no matter how large n is)".
#[test]
fn exptl_cannot_overflow() {
    let mut c = Compiler::new();
    c.compile_str(s1lisp_suite::EXPTL).unwrap();
    let mut m = c.machine();
    // n = 2^62-ish: overflows the multiply long before the stack; use
    // x=1 so every square is 1 and only n shrinks.
    let v = m.run("exptl", &[fx(1), fx(1_i64 << 40), fx(1)]).unwrap();
    assert_eq!(v, fx(1));
    assert_eq!(m.stats.max_call_depth, 0);
    assert!(m.stats.tail_calls >= 40);
}

/// §5: the boolean short-circuit example generates jump code with no
/// run-time closures, equivalent to the paper's goto rendering.
#[test]
fn boolean_short_circuiting_is_jumps() {
    let mut c = Compiler::new();
    c.compile_str(
        "(defun f (a b c) (if (and a (or b c)) (e1) (e2)))
                   (defun e1 () 1)
                   (defun e2 () 2)",
    )
    .unwrap();
    let mut m = c.machine();
    let t = fx(1);
    let nil = s1lisp::Value::Nil;
    for (a, b, cc, want) in [
        (t.clone(), t.clone(), nil.clone(), 1),
        (t.clone(), nil.clone(), t.clone(), 1),
        (t.clone(), nil.clone(), nil.clone(), 2),
        (nil.clone(), t.clone(), t.clone(), 2),
    ] {
        let v = m.run("f", &[a, b, cc]).unwrap();
        assert_eq!(v, fx(want));
    }
    assert_eq!(m.stats.closures_made, 0, "E3: no closures constructed");
    // No function objects either: the joins are local jumps.
    let code = c.disassemble("f").unwrap();
    assert!(!code.contains("%CLOSURE-CONS"), "{code}");
}

/// The compiler comments in Table 4 call out the deep-binding search
/// cache; E10's mechanism must actually cut searches.
#[test]
fn special_caching_cuts_searches() {
    let src = s1lisp_suite::SPECIALS_LOOP;
    let mut on = Compiler::new();
    on.compile_str(src).unwrap();
    let mut off = Compiler::new();
    off.codegen_options.cache_specials = false;
    off.compile_str(src).unwrap();
    let mut m_on = on.machine();
    let mut m_off = off.machine();
    m_on.set_global("*step*", &fx(2)).unwrap();
    m_off.set_global("*step*", &fx(2)).unwrap();
    let a = m_on.run("accumulate", &[fx(500)]).unwrap();
    let b = m_off.run("accumulate", &[fx(500)]).unwrap();
    assert_eq!(a, b);
    assert_eq!(a, fx(1000));
    assert!(
        m_on.stats.special_searches * 100 < m_off.stats.special_searches,
        "cached {} vs uncached {} searches",
        m_on.stats.special_searches,
        m_off.stats.special_searches
    );
    assert!(m_on.stats.special_cached > 0);
}
