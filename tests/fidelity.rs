//! Deeper fidelity properties: back-translation round trips, the §4.3
//! anti-thrashing design, and machine-level data round trips under GC.

use s1lisp::{Compiler, Value};
use s1lisp_suite as suite;
use s1lisp_suite::{corpus, fl, fx};
use s1lisp_trace::rng::SplitMix64;

/// §4.1: "the internal tree can always be back-translated into valid
/// source code, equivalent to, though not necessarily identical to, the
/// original source."  We re-read the back-translated *optimized* tree,
/// compile it as a fresh program, and require identical behavior.
#[test]
fn optimized_trees_recompile_from_their_back_translation() {
    let cases: Vec<(&str, &str, Vec<Vec<Value>>)> = vec![
        (
            suite::EXPTL,
            "exptl",
            vec![vec![fx(3), fx(10), fx(1)], vec![fx(2), fx(0), fx(7)]],
        ),
        (
            suite::QUADRATIC,
            "quadratic",
            vec![
                vec![fl(1.0), fl(-3.0), fl(2.0)],
                vec![fl(1.0), fl(0.0), fl(1.0)],
            ],
        ),
        (suite::FIB_ITER, "fib-iter", vec![vec![fx(25)]]),
        (suite::TAK, "tak", vec![vec![fx(10), fx(6), fx(3)]]),
    ];
    for (src, entry, argsets) in cases {
        let mut original = Compiler::new();
        original.compile_str(src).unwrap();
        // Rebuild the program from the back-translation of every
        // function's optimized tree.
        let mut round = Compiler::new();
        for f in &original.functions {
            let redefined = format!(
                "(defun {} {}",
                f.name,
                f.optimized
                    .trim()
                    .strip_prefix("(lambda ")
                    .expect("optimized form is a lambda"),
            );
            round
                .compile_str(&redefined)
                .unwrap_or_else(|e| panic!("round-trip of {} failed: {e}\n{redefined}", f.name));
        }
        let mut m1 = original.machine();
        let mut m2 = round.machine();
        for args in argsets {
            let v1 = m1.run(entry, &args).unwrap();
            let v2 = m2.run(entry, &args).unwrap();
            assert_eq!(v1, v2, "{entry} {args:?}");
        }
    }
}

/// §4.3: separating CSE from the source-level optimizer "avoids the
/// possibility of an endless cycle of introductions and eliminations."
/// Optimize → CSE → optimize again must be a fixpoint: the second
/// optimizer pass must not undo what CSE did.
#[test]
fn cse_and_optimizer_do_not_thrash() {
    let src = "(defun f (a b)
                 (list (+ (* a b) (* b b) 1)
                       (+ (* a b) (* b b) 2)))";
    let mut i = s1lisp_reader::Interner::new();
    let form = s1lisp_reader::read_str(src, &mut i).unwrap();
    let mut fe = s1lisp_frontend::Frontend::new(&mut i);
    let mut f = fe.convert_defun(&form).unwrap();
    let mut opt = s1lisp_opt::Optimizer::new();
    opt.optimize(&mut f.tree);
    let commoned = s1lisp_opt::cse::eliminate(&mut f.tree);
    assert!(commoned >= 1, "CSE found the duplicate");
    let after_cse = s1lisp_ast::unparse(&f.tree, f.tree.root).to_string();
    // A second optimizer run must not reintroduce the duplicates …
    let mut opt2 = s1lisp_opt::Optimizer::new();
    opt2.optimize(&mut f.tree);
    let after_second = s1lisp_ast::unparse(&f.tree, f.tree.root).to_string();
    assert_eq!(
        after_second.matches("(* a b)").count(),
        1,
        "thrash: optimizer undid CSE\nafter cse: {after_cse}\nafter opt: {after_second}"
    );
    // … and a second CSE run finds nothing new.
    assert_eq!(s1lisp_opt::cse::eliminate(&mut f.tree), 0);
}

/// Values survive injection into the machine, garbage collection, and
/// extraction.
#[test]
fn machine_data_round_trips_through_gc() {
    let mut c = Compiler::new();
    c.compile_str("(defun id (x) x) (defun churn (n) (if (zerop n) '() (cons n (churn (- n 1)))))")
        .unwrap();
    let mut m = s1lisp_s1sim::Machine::with_sizes(c.program().clone(), 1 << 16, 2000);
    let keep = Value::list([
        fx(1),
        Value::cons(fl(2.5), Value::Nil),
        Value::list([fx(3), fx(4)]),
    ]);
    let out = m.run("id", std::slice::from_ref(&keep)).unwrap();
    assert_eq!(out, keep);
    // Force collections with garbage churn; previously extracted data is
    // host-side and the machine's constants must survive.
    for _ in 0..50 {
        m.run("churn", &[fx(100)]).unwrap();
    }
    assert!(m.stats.heap.collections > 0);
    let again = m.run("id", std::slice::from_ref(&keep)).unwrap();
    assert_eq!(again, keep);
}

/// inject ∘ extract is the identity on function-free values, even
/// with a heap small enough to collect mid-test.
#[test]
fn inject_extract_identity() {
    let mut rng = SplitMix64::new(0x5115_0009);
    for _case in 0..32 {
        let src = random_value(&mut rng, 3);
        let mut c = Compiler::new();
        c.compile_str("(defun id (x) x)").unwrap();
        let mut m = s1lisp_s1sim::Machine::with_sizes(c.program().clone(), 1 << 16, 4000);
        let mut i = s1lisp_reader::Interner::new();
        let d = s1lisp_reader::read_str(&src, &mut i).unwrap();
        let v = Value::from_datum(&d);
        let out = m.run("id", std::slice::from_ref(&v)).unwrap();
        assert_eq!(out, v, "{src}");
    }
}

fn random_value(rng: &mut SplitMix64, depth: u32) -> String {
    if depth > 0 && rng.below(3) == 0 {
        let n = rng.range_usize(0, 4);
        let items: Vec<String> = (0..n).map(|_| random_value(rng, depth - 1)).collect();
        return format!("({})", items.join(" "));
    }
    match rng.below(6) {
        0 => (rng.next_u64() as i32).to_string(),
        1 => format!("{}", f64::from(rng.range_i64(-1000, 1000) as i32) / 4.0),
        2 => {
            let mut s = String::new();
            s.push(*rng.pick(b"abcdefghijklmnopqrstuvwxyz") as char);
            for _ in 0..rng.range_usize(0, 6) {
                s.push(*rng.pick(b"abcdefghijklmnopqrstuvwxyz0123456789") as char);
            }
            s
        }
        3 => "()".to_string(),
        4 => "\"a string\"".to_string(),
        _ => "#\\q".to_string(),
    }
}

/// The paper's Table 2 claim in reverse: *no* program, however twisty,
/// produces a construct outside the set (differential fuzz over the
/// whole corpus re-parsed from its own back-translation).
#[test]
fn corpus_back_translations_reparse() {
    for (id, src) in corpus() {
        let mut c = Compiler::new();
        c.compile_str(src).unwrap();
        for f in &c.functions {
            let mut i = s1lisp_reader::Interner::new();
            let d = s1lisp_reader::read_str(&f.optimized, &mut i)
                .unwrap_or_else(|e| panic!("{id}/{}: unreadable back-translation: {e}", f.name));
            assert!(d.to_string().starts_with("(lambda"), "{id}/{}: {d}", f.name);
        }
    }
}
