//! Whole-pipeline differential tests: for every corpus program and every
//! compiler configuration, the compiled code on the S-1 simulator must
//! agree with the reference interpreter.

use s1lisp::{CodegenOptions, Compiler, OptOptions, Value};
use s1lisp_suite::{build_with, check_agree, corpus, fl, fx};

/// The option grid: full, no source-level optimization, no codegen
/// niceties, and fully naive.
fn configurations() -> Vec<(&'static str, Compiler)> {
    let mut no_opt = Compiler::new();
    no_opt.opt_options = OptOptions::none();
    let mut no_codegen = Compiler::new();
    no_codegen.codegen_options = CodegenOptions {
        tail_calls: false,
        pdl_numbers: false,
        cache_specials: false,
        register_allocation: false,
        representation_analysis: false,
        backtracking_pack: false,
    };
    let mut cse = Compiler::new();
    cse.cse = true;
    vec![
        ("full", Compiler::new()),
        ("no-source-opt", no_opt),
        ("no-codegen-opts", no_codegen),
        ("naive", Compiler::unoptimized()),
        ("with-cse", cse),
    ]
}

/// Calls exercised per corpus program (sizes kept within the
/// interpreter's conservative recursion budget).
fn calls_for(id: &str) -> Vec<(&'static str, Vec<Value>)> {
    match id {
        "exptl" => vec![
            ("exptl", vec![fx(3), fx(10), fx(1)]),
            ("exptl", vec![fx(2), fx(30), fx(1)]),
            ("exptl", vec![fx(5), fx(0), fx(1)]),
        ],
        "quadratic" => vec![
            ("quadratic", vec![fl(1.0), fl(-3.0), fl(2.0)]),
            ("quadratic", vec![fl(1.0), fl(0.0), fl(1.0)]),
            ("quadratic", vec![fl(1.0), fl(-2.0), fl(1.0)]),
            ("quadratic", vec![fl(2.0), fl(5.0), fl(-3.0)]),
        ],
        "testfn" => vec![
            ("testfn", vec![fl(1.5)]),
            ("testfn", vec![fl(1.5), fl(2.5)]),
            ("testfn", vec![fl(1.5), fl(2.5), fl(-0.5)]),
            ("testfn", vec![]),
        ],
        "tak" => vec![("tak", vec![fx(12), fx(8), fx(4)])],
        "fib-iter" => vec![
            ("fib-iter", vec![fx(0)]),
            ("fib-iter", vec![fx(1)]),
            ("fib-iter", vec![fx(30)]),
        ],
        "fib" => vec![("fib", vec![fx(12)])],
        "nrev" => vec![("my-reverse", vec![Value::list((0..20).map(fx))])],
        "horner" => vec![
            (
                "horner",
                vec![fl(2.0), fl(1.0), fl(-2.0), fl(3.0), fl(-4.0)],
            ),
            ("horner", vec![fl(0.0), fl(1.0), fl(1.0), fl(1.0), fl(1.0)]),
            // Wrong type: both engines must reject.
            ("horner", vec![fx(2), fl(1.0), fl(-2.0), fl(3.0), fl(-4.0)]),
        ],
        "counter" => vec![("count-3", vec![])],
        "specials" => vec![("accumulate", vec![fx(50)])],
        _ => vec![],
    }
}

#[test]
fn corpus_agrees_across_all_configurations() {
    for (cfg_name, compiler) in configurations() {
        for (id, src) in corpus() {
            let (mut m, interp) = build_with(src, clone_compiler(&compiler));
            if id == "specials" {
                interp.set_global("*step*", fx(3));
                m.set_global("*step*", &fx(3)).unwrap();
            }
            for (name, args) in calls_for(id) {
                check_agree(&mut m, &interp, name, &args);
            }
            let _ = cfg_name;
        }
    }
}

/// `Compiler` intentionally has no `Clone` (it owns interner state); the
/// grid rebuilds from options instead.
fn clone_compiler(c: &Compiler) -> Compiler {
    let mut fresh = Compiler::new();
    fresh.opt_options = c.opt_options.clone();
    fresh.codegen_options = c.codegen_options.clone();
    fresh.cse = c.cse;
    fresh.tension_branches = c.tension_branches;
    fresh
}

#[test]
fn multi_function_programs_link_late() {
    // g is compiled after f but f calls it: late binding must resolve.
    let mut c = Compiler::new();
    c.compile_str("(defun f (x) (g (+ x 1)))").unwrap();
    let mut m = c.machine();
    assert!(m.run("f", &[fx(1)]).is_err(), "g is undefined so far");
    c.compile_str("(defun g (x) (* x 10))").unwrap();
    let mut m = c.machine();
    assert_eq!(m.run("f", &[fx(1)]).unwrap(), fx(20));
}

#[test]
fn random_arithmetic_agrees() {
    use s1lisp_trace::rng::SplitMix64;
    let mut rng = SplitMix64::new(0x0005_115b);
    let (mut m, interp) = s1lisp_suite::build(
        "(defun poly (a b c x) (+ (* a x x) (* b x) c))
         (defun fpoly (a b c x)
           (declare (flonum a b c x))
           (+$f (*$f a x x) (*$f b x) c))",
    );
    for _ in 0..50 {
        let args: Vec<Value> = (0..4).map(|_| fx(rng.range_i64(-50, 50))).collect();
        check_agree(&mut m, &interp, "poly", &args);
        let fargs: Vec<Value> = (0..4)
            .map(|_| fl(f64::from(rng.range_i64(-500, 500) as i32) / 10.0))
            .collect();
        check_agree(&mut m, &interp, "fpoly", &fargs);
    }
}

#[test]
fn wrong_arity_traps_everywhere() {
    let (mut m, interp) = s1lisp_suite::build("(defun f (a b) (+ a b))");
    for args in [vec![], vec![fx(1)], vec![fx(1), fx(2), fx(3)]] {
        let g = m.run("f", &args);
        let w = interp.call("f", &args);
        assert_eq!(g.is_err(), w.is_err(), "{args:?}");
    }
}

#[test]
fn stats_expose_the_headline_behaviours() {
    // Tail recursion: constant frames (E4's compiled half).
    let (mut m, _) = s1lisp_suite::build("(defun loopn (n) (if (= n 0) 'done (loopn (- n 1))))");
    m.run("loopn", &[fx(100_000)]).unwrap();
    assert_eq!(m.stats.max_call_depth, 0);
    assert_eq!(m.stats.tail_calls, 100_000);
}
