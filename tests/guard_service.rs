//! Tier-1 pins for guarded compilation (`ServiceConfig::guard`): the
//! phase validators, the seeded fault-injection facility, and the
//! differential execution oracle.
//!
//! The contracts pinned here:
//! * a guarded batch over the corpus is **byte-identical** to an
//!   unguarded one — the validators observe, they never perturb;
//! * a seeded storm arming *every* fault site completes with **zero
//!   lost functions**: each fault becomes a contained retry or a
//!   recovered `Incident`, and the same seed replays the same incident
//!   set;
//! * an injected miscompile is caught by the oracle, which ships the
//!   transformations-off reference artifact marked degraded;
//! * `BatchResult::load_globals` makes a batch directly runnable on a
//!   machine, `defvar` initializers included.

use std::path::PathBuf;
use std::time::Duration;

use s1lisp_bench::service_units;
use s1lisp_driver::{
    BatchResult, CompileService, FaultPlan, FaultSite, IncidentKind, OracleCase, Outcome,
    ServiceConfig, SourceUnit,
};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("s1lisp-guardtest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

fn storm_config(seed: u64, dir: Option<PathBuf>) -> ServiceConfig {
    ServiceConfig {
        jobs: 4,
        guard: true,
        time_budget: Some(Duration::from_millis(400)),
        fault_plan: Some(
            FaultPlan::new(seed)
                .arm(FaultSite::PhasePanic, 10)
                .arm(FaultSite::Overrun, 60)
                .arm(FaultSite::CacheRead, 500)
                .arm(FaultSite::CacheWrite, 500)
                .arm(FaultSite::CacheCorrupt, 500)
                .arm(FaultSite::SimTrap, 200)
                .arm(FaultSite::Miscompile, 200),
        ),
        // No disk eviction cap here: the replay assertion below needs
        // deterministic cache contents, and mtime-ordered sweeps under
        // parallel writes evict a scheduling-dependent subset — which
        // would turn fault-site hits (pure per key) into a race on
        // whether the key was still cached.  Eviction itself is pinned
        // by the cache unit tests.
        cache_dir: dir,
        oracle: vec![
            OracleCase::new("exptl", ["3", "10", "1"]),
            OracleCase::new("quadratic", ["1.0", "-3.0", "2.0"]),
            OracleCase::new("tak", ["10", "6", "3"]),
        ],
        ..ServiceConfig::default()
    }
}

fn storm_batch(seed: u64, dir: Option<PathBuf>) -> BatchResult {
    // Warm the disk tier with a clean pass so read-side faults have
    // bytes to fail on and corrupt.
    if let Some(d) = &dir {
        CompileService::new(ServiceConfig {
            jobs: 2,
            cache_dir: Some(d.clone()),
            ..ServiceConfig::default()
        })
        .compile_batch(&service_units());
    }
    CompileService::new(storm_config(seed, dir)).compile_batch(&service_units())
}

#[test]
fn guard_validators_do_not_perturb_artifacts() {
    let plain = CompileService::new(ServiceConfig::with_jobs(2)).compile_batch(&service_units());
    let guarded = CompileService::new(ServiceConfig {
        jobs: 2,
        guard: true,
        ..ServiceConfig::default()
    })
    .compile_batch(&service_units());
    assert!(guarded.failures.is_empty(), "{:?}", guarded.failures);
    assert!(guarded.incidents.is_empty(), "{:?}", guarded.incidents);
    assert_eq!(plain.render_artifacts(), guarded.render_artifacts());
    let report = guarded.guard.expect("guard report");
    assert!(report.contained);
    assert!(report.armed.is_empty());
}

#[test]
fn full_fault_storm_loses_no_functions_and_replays_from_its_seed() {
    let dir = tempdir("storm");
    let batch = quiet_panics(|| storm_batch(23, Some(dir.clone())));
    // Zero lost functions: one artifact per job, no failures, every
    // incident recovered.
    assert_eq!(batch.artifacts.len(), batch.stats.functions);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert!(
        batch.incidents.iter().all(|i| i.recovered),
        "{:?}",
        batch.incidents
    );
    assert!(batch.records.iter().all(|r| r.outcome != Outcome::Failed));
    let report = batch.guard.as_ref().expect("guard report");
    assert!(report.contained);
    assert_eq!(report.seed, 23);
    assert_eq!(
        report.armed.len(),
        7,
        "every site armed: {:?}",
        report.armed
    );
    // The storm actually stormed: injection left visible traces.
    let cache = &batch.stats.cache;
    assert!(
        cache.io_retries + cache.io_errors + cache.corrupt_reads > 0,
        "{cache:?}"
    );
    // Replay: the same seed reproduces the same incident set.
    let dir2 = tempdir("storm-replay");
    let replay = quiet_panics(|| storm_batch(23, Some(dir2.clone())));
    let summary = |b: &BatchResult| {
        let mut v: Vec<(String, &'static str)> = b
            .incidents
            .iter()
            .map(|i| (i.function.clone(), i.kind.as_str()))
            .collect();
        v.sort();
        v
    };
    assert_eq!(summary(&batch), summary(&replay));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn injected_miscompile_ships_the_reference_artifact() {
    let cfg = ServiceConfig {
        jobs: 2,
        guard: true,
        fault_plan: Some(FaultPlan::new(1).arm(FaultSite::Miscompile, 1000)),
        oracle: vec![OracleCase::new("exptl", ["3", "10", "1"])],
        ..ServiceConfig::default()
    };
    let batch = CompileService::new(cfg).compile_batch(&service_units());
    let incident = batch
        .incidents
        .iter()
        .find(|i| i.kind == IncidentKind::Miscompile)
        .expect("oracle flags the mismatch");
    assert_eq!(incident.function, "exptl");
    assert!(incident.recovered);
    // The shipped artifact is the transformations-off reference.
    let shipped = batch.artifact("exptl").expect("artifact still present");
    assert!(shipped.degraded);
    assert_eq!(shipped.transformations, 0);
    let report = batch.guard.expect("guard report");
    assert!(report.contained);
    let verdict = &report.oracle[0];
    assert!(!verdict.matched);
    assert!(verdict.injected);
    // The record reflects the downgrade.
    let record = batch
        .records
        .iter()
        .find(|r| r.function == "exptl")
        .unwrap();
    assert_eq!(record.outcome, Outcome::Degraded);
}

#[test]
fn clean_oracle_agrees_on_every_case() {
    let cfg = ServiceConfig {
        jobs: 2,
        guard: true,
        oracle: vec![
            OracleCase::new("exptl", ["3", "10", "1"]),
            OracleCase::new("quadratic", ["1.0", "-3.0", "2.0"]),
            OracleCase::new("loopn", ["1000"]),
            OracleCase::new("sum-horner", ["200"]),
            OracleCase::new("tak", ["10", "6", "3"]),
        ],
        ..ServiceConfig::default()
    };
    let batch = CompileService::new(cfg).compile_batch(&service_units());
    assert!(batch.incidents.is_empty(), "{:?}", batch.incidents);
    let report = batch.guard.expect("guard report");
    assert_eq!(report.oracle.len(), 5);
    for v in &report.oracle {
        assert!(v.matched, "{}: {} vs {}", v.entry, v.optimized, v.reference);
        assert!(!v.injected);
    }
}

#[test]
fn load_globals_makes_a_batch_runnable() {
    use s1lisp::{Compiler, Machine, Value};

    let src = "(defvar *step* 2)
               (defvar *names* '(a b))
               (defun accumulate (n)
                 (prog ((i 0) (acc 0))
                  top (cond ((not (< i n)) (return acc)))
                  (setq acc (+ acc *step*))
                  (setq i (+ i 1))
                  (go top)))";
    let batch = CompileService::new(ServiceConfig::with_jobs(1))
        .compile_batch(&[SourceUnit::new("globals", src)]);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);
    assert_eq!(batch.globals.len(), 2);

    // A program compiled elsewhere (same functions, no defvar values):
    // without the batch's globals the special is unbound; with them the
    // batch is directly runnable.
    let mut c = Compiler::new();
    c.proclaim_special("*step*");
    c.proclaim_special("*names*");
    c.compile_str(
        "(defun accumulate (n)
           (prog ((i 0) (acc 0))
            top (cond ((not (< i n)) (return acc)))
            (setq acc (+ acc *step*))
            (setq i (+ i 1))
            (go top)))",
    )
    .unwrap();
    let mut bare = Machine::new(c.program().clone());
    assert!(bare.run("accumulate", &[Value::Fixnum(3)]).is_err());

    let mut loaded = Machine::new(c.program().clone());
    let installed = batch.load_globals(&mut loaded).expect("globals install");
    assert_eq!(installed, 2);
    assert_eq!(
        loaded.run("accumulate", &[Value::Fixnum(3)]).unwrap(),
        Value::Fixnum(6)
    );
}
