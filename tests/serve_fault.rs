//! Seeded fault storm against a live server: every fault is contained
//! to its request, the whole session replays bit-for-bit from the
//! seed, and the daemon never goes down.

use s1lisp_bench::service_units;
use s1lisp_driver::{FaultPlan, ServiceConfig};
use s1lisp_server::{Body, CompileServer, Response, ServeClient, ServerConfig, ServerHandle};

const STORM_SEED: u64 = 0xD06;
const STORM_PERMILLE: u16 = 200;

fn storm_server(seed: u64) -> ServerHandle {
    CompileServer::new(ServerConfig {
        service: ServiceConfig {
            guard: true,
            fault_plan: Some(FaultPlan::storm(seed, STORM_PERMILLE)),
            ..ServiceConfig::default()
        },
        // A storm this dense exhausts the default budget part-way in;
        // that is fine (demotion is deterministic too), but a roomy
        // budget keeps most of the session compiling at full strength.
        incident_budget: 1_000,
        ..ServerConfig::default()
    })
    .serve_tcp(0)
    .expect("bind an ephemeral port")
}

/// Everything observable about a response, summarized for replay
/// comparison (timings excluded: they are honest wall-clock).
fn summarize(resp: &Response) -> String {
    let body = match &resp.body {
        Body::None => "none".to_string(),
        Body::Compile {
            artifacts,
            incidents,
            failures,
        } => format!(
            "compile[{}] incidents={:?} failures={failures:?}",
            artifacts
                .iter()
                .map(|a| a.to_json().to_string())
                .collect::<Vec<_>>()
                .join(","),
            incidents
        ),
        Body::Run { value } => format!("run={value}"),
        Body::Explain { dossier } => format!("explain={}b", dossier.len()),
    };
    format!(
        "id={} op={} ok={} err={:?} degraded={} incident={:?} {body}",
        resp.id, resp.op, resp.ok, resp.error, resp.slo.degraded, resp.slo.incident_kind
    )
}

/// One full storm session: compile the corpus, run a spread of entry
/// points (some draw injected simulator traps), and return the
/// summarized responses.
fn storm_session(handle: &ServerHandle) -> Vec<String> {
    let mut client =
        ServeClient::connect(&format!("127.0.0.1:{}", handle.port())).expect("connect");
    assert!(client.hello("storm", None).unwrap().ok);
    let mut log = Vec::new();
    for unit in service_units() {
        let resp = client.compile(&unit.name, &unit.source).unwrap();
        log.push(summarize(&resp));
    }
    // Sixteen distinct entry names: at 20% permille each, the
    // simulator-trap site fires for some of them regardless of seed
    // drift in the corpus above (decisions are per-(site, key)).  The
    // storm may fault this compile too — also deterministic, so it
    // just joins the log.
    let probes = client.compile("probes", &probe_unit()).unwrap();
    log.push(summarize(&probes));
    for i in 0..16 {
        let resp = client.run(&format!("probe{i}"), &["7"]).unwrap();
        log.push(summarize(&resp));
    }
    log
}

fn probe_unit() -> String {
    (0..16)
        .map(|i| format!("(defun probe{i} (x) (+ x {i}))"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fault_storm_is_contained_and_replays_from_seed() {
    let first = storm_server(STORM_SEED);
    let log_a = storm_session(&first);

    // Contained: the server is still alive and serving cleanly after
    // the whole storm.
    let mut client =
        ServeClient::connect(&format!("127.0.0.1:{}", first.port())).expect("reconnect");
    assert!(client.hello("after", None).unwrap().ok);
    // The plan stays armed for the server's lifetime, so this may draw
    // a fault too — but it must be answered, contained, and recovered.
    let clean = client.compile("after", "(defun calm (x) x)").unwrap();
    assert!(clean.ok, "post-storm compile failed: {:?}", clean.error);
    first.shutdown();
    first.join();

    // The storm actually stormed: incidents surfaced in the SLO stream,
    // and at least one injected simulator trap hit the run path.
    let stormed = log_a.iter().filter(|l| l.contains("incident=Some")).count();
    assert!(
        stormed > 0,
        "seed {STORM_SEED:#x} drew no faults:\n{log_a:#?}"
    );
    assert!(
        log_a
            .iter()
            .any(|l| l.contains("run=trap: injected simulator fault")),
        "no injected run trap; pick a different seed"
    );

    // Replays: a second server with the same seed serves the same
    // session byte-for-byte (timings aside).
    let second = storm_server(STORM_SEED);
    let log_b = storm_session(&second);
    second.shutdown();
    second.join();
    assert_eq!(log_a, log_b, "the storm must replay from its seed");

    // And a different seed draws a different storm.
    let third = storm_server(STORM_SEED + 1);
    let log_c = storm_session(&third);
    third.shutdown();
    third.join();
    assert_ne!(log_a, log_c, "different seeds should diverge");
}
