//! Shared corpus and helpers for the `s1lisp` workspace's integration
//! tests, examples, and benchmarks.
//!
//! The corpus leans on the programs the paper itself uses (`exptl`,
//! `quadratic`, `testfn`) plus small Gabriel-benchmark-flavored kernels
//! (`tak`, iterative `fib`) from the same lineage — Richard Gabriel, a
//! co-author, later assembled the standard Lisp benchmark suite.

use s1lisp::{Compiler, Interp, Machine, Value};

/// §2's worked example: exponentiation by repeated squaring, fully
/// tail-recursive.
pub const EXPTL: &str = "(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
        (t (exptl (* x x) (floor (/ n 2)) a))))";

/// §4.1's worked example: real roots of a quadratic.
pub const QUADRATIC: &str = "(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) two-a)
                     (/ (- (- b) sd) two-a)))))))";

/// §7's worked example, verbatim up to the undefined `frotz`.
pub const TESTFN: &str = "(defun frotz (a b c) '())
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))";

/// Takeuchi's function — the classic call-heavy kernel.
pub const TAK: &str = "(defun tak (x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))";

/// Iterative Fibonacci via `do`.
pub const FIB_ITER: &str = "(defun fib-iter (n)
  (do ((a 0 b) (b 1 (+ a b)) (i 0 (+ i 1)))
      ((= i n) a)))";

/// Naive doubly recursive Fibonacci.
pub const FIB: &str = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

/// List reversal written with an accumulator (tail recursive).
pub const NREV: &str = "(defun revappend (l acc)
  (if (null l) acc (revappend (cdr l) (cons (car l) acc))))
(defun my-reverse (l) (revappend l '()))";

/// Polynomial evaluation by Horner's rule over typed floats.
pub const HORNER: &str = "(defun horner (x c3 c2 c1 c0)
  (declare (flonum x c3 c2 c1 c0))
  (+$f (*$f (+$f (*$f (+$f (*$f c3 x) c2) x) c1) x) c0))";

/// A counter factory: closures with shared mutable state.
pub const COUNTER: &str = "(defun make-counter ()
  (let ((n 0)) (lambda () (setq n (+ n 1)) n)))
(defun count-3 ()
  (let ((c (make-counter))) (c) (c) (c)))";

/// A special-variable-heavy loop for E10.
pub const SPECIALS_LOOP: &str = "(proclaim '(special *step*))
(defun accumulate (n)
  (prog (acc)
    (setq acc 0)
    top
    (if (zerop n) (return acc))
    (setq acc (+ acc *step*))
    (setq n (- n 1))
    (go top)))";

/// Every corpus entry, with a short id.
pub fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("exptl", EXPTL),
        ("quadratic", QUADRATIC),
        ("testfn", TESTFN),
        ("tak", TAK),
        ("fib-iter", FIB_ITER),
        ("fib", FIB),
        ("nrev", NREV),
        ("horner", HORNER),
        ("counter", COUNTER),
        ("specials", SPECIALS_LOOP),
    ]
}

/// Compiles `src` with default options and returns the machine plus the
/// reference interpreter.
///
/// # Panics
///
/// Panics on compile errors (tests feed known-good sources).
pub fn build(src: &str) -> (Machine, Interp) {
    let mut c = Compiler::new();
    c.compile_str(src)
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    (c.machine(), c.interpreter())
}

/// Compiles with a configured compiler.
///
/// # Panics
///
/// Panics on compile errors.
pub fn build_with(src: &str, mut c: Compiler) -> (Machine, Interp) {
    c.compile_str(src)
        .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    (c.machine(), c.interpreter())
}

/// Runs the same call on machine and interpreter and asserts agreement
/// (both values and error-ness).
///
/// # Panics
///
/// Panics on divergence.
pub fn check_agree(m: &mut Machine, i: &Interp, name: &str, args: &[Value]) {
    let got = m.run(name, args);
    let want = i.call(name, args);
    match (&want, &got) {
        (Ok(w), Ok(g)) => assert_eq!(g, w, "result mismatch for {name} {args:?}"),
        (Err(_), Err(_)) => {}
        _ => panic!("divergence for {name} {args:?}: interp={want:?} machine={got:?}"),
    }
}

/// Shorthand constructors.
pub fn fx(n: i64) -> Value {
    Value::Fixnum(n)
}

/// Shorthand flonum constructor.
pub fn fl(x: f64) -> Value {
    Value::Flonum(x)
}
