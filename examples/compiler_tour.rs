//! A guided tour of the compiler on the paper's §7 worked example
//! (`testfn`): phase table, back-translation, transformation transcript,
//! the generated parenthesized assembly — the full Table 1 → Table 4
//! journey — and the observability surfaces (phase telemetry, execution
//! statistics, opcode profile, the per-function compilation dossier,
//! a trap post-mortem, and the batch compilation service with its
//! artifact cache and fault isolation), closing with the same function
//! compiled for both backends — S-1 and portable bytecode — and run to
//! the same answer on both engines.
//!
//! ```sh
//! cargo run --example compiler_tour
//! ```

use s1lisp::{phases, Compiler, PhaseStatus, Value};
use s1lisp_s1sim::ExecProfile;

const TESTFN: &str = "
(defun frotz (a b c) '())
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))";

fn main() {
    println!("=== Phase structure (Table 1) ===\n");
    for p in phases() {
        let mark = match p.status {
            PhaseStatus::Implemented => " ",
            PhaseStatus::OptionalExtension => "+",
            PhaseStatus::Subsumed => "~",
        };
        let bracket = if p.bracketed_in_paper {
            "[bracketed in 1982]"
        } else {
            ""
        };
        println!("{mark} {:<36} {:<20} {}", p.name, bracket, p.module);
    }

    let mut compiler = Compiler::new();
    compiler.enable_trace();
    compiler.compile_str(TESTFN).expect("compiles");
    let f = compiler.function("testfn").expect("compiled");

    println!("\n=== testfn, converted to the internal tree (back-translated) ===\n");
    println!("{}", f.converted);

    println!("\n=== source-level transformation transcript (§7 style) ===\n");
    println!("{}", f.transcript);

    println!(
        "=== after optimization ({} transformations) ===\n",
        f.transformations
    );
    println!("{}", f.optimized);

    println!("\n=== generated S-1 code (parenthesized assembly, Table 4 style) ===\n");
    println!("{}", compiler.disassemble("testfn").expect("defined"));

    println!(
        "total code size: {} thirty-six-bit words across {} instructions",
        compiler.code_size_words(),
        compiler.program().total_insns()
    );

    println!("\n=== compilation telemetry (per-phase spans, wall time, counters) ===\n");
    print!("{}", compiler.trace_report());

    println!("\n=== one profiled run of (testfn 1.5 2.5 0.5) ===\n");
    let mut m = compiler.machine();
    m.profile = Some(Box::new(ExecProfile::new()));
    let v = m
        .run(
            "testfn",
            &[Value::Flonum(1.5), Value::Flonum(2.5), Value::Flonum(0.5)],
        )
        .expect("runs");
    println!("value: {v}\n");
    print!("{}", m.stats);
    if let Some(p) = m.profile.take() {
        println!("\nretired opcodes:");
        let mut ops: Vec<(&str, u64)> = p.opcodes.iter().map(|(&k, &v)| (k, v)).collect();
        ops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (op, n) in ops {
            println!("  {op:<14} {n:>8}");
        }
    }

    // Everything above, joined into one report: the compilation dossier.
    // (The `explain` bin renders these for any experiment-corpus
    // function: `cargo run -p s1lisp-bench --bin explain -- testfn`.)
    println!("\n=== the same story as one dossier: explain(\"testfn\") ===\n");
    let dossier = compiler.explain("testfn").expect("testfn was compiled");
    print!("{dossier}");

    // And the failure side: run a function on an argument it cannot
    // handle, with a post-mortem ring attached, and read the wreckage.
    println!("\n=== trap post-mortem: (car 5) deep in a call chain ===\n");
    let mut c2 = Compiler::new();
    c2.compile_str(
        "(defun boom (x) (car x))
         (defun outer (x) (+ 1 (boom x)))",
    )
    .expect("compiles");
    let mut crash = c2.machine();
    crash.enable_post_mortem(16);
    let trap = crash
        .run("outer", &[Value::Fixnum(5)])
        .expect_err("CAR of a fixnum traps");
    println!("trap: {trap}");
    println!("fault site: {:?}\n", trap.site());
    let pm = crash.post_mortem.as_ref().expect("post-mortem captured");
    print!("{pm}");

    // Scale out: the same pipeline as a batch service.  Compile a unit
    // twice through one service — the second batch is answered entirely
    // from the content-addressed artifact cache.
    println!("\n=== the compilation service: batch compile, then a warm recompile ===\n");
    use s1lisp_driver::{CompileService, FaultInjection, FaultMode, ServiceConfig, SourceUnit};
    let units = [SourceUnit::new(
        "tour",
        "(defun square (x) (* x x))
         (defun cube (x) (* x (square x)))
         (defun poly (x) (+ (cube x) (square x) x 1))",
    )];
    let service = CompileService::new(ServiceConfig::with_jobs(2));
    let cold = service.compile_batch(&units);
    let warm = service.compile_batch(&units);
    for (label, batch) in [("cold", &cold), ("warm", &warm)] {
        println!(
            "{label}: workers={} functions={} hit_rate={}% (hits={} misses={})",
            batch.stats.workers_used,
            batch.stats.functions,
            batch.hit_rate_percent(),
            batch.stats.cache.hits,
            batch.stats.cache.misses
        );
    }
    assert_eq!(cold.render_artifacts(), warm.render_artifacts());

    // And its failure side: inject a panic into one function's
    // optimization.  The batch completes; the victim is recompiled with
    // transformations off and the incident is on the record.
    println!("\n=== fault isolation: a panic injected into cube's optimizer ===\n");
    let cfg = ServiceConfig {
        jobs: 2,
        fault: Some(FaultInjection {
            function: "cube".to_string(),
            mode: FaultMode::Panic,
        }),
        ..ServiceConfig::default()
    };
    // Quiet the default panic hook for the demo — the injected panic is
    // the point, not the backtrace.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let faulted = CompileService::new(cfg).compile_batch(&units);
    std::panic::set_hook(prev_hook);
    for i in &faulted.incidents {
        println!(
            "incident: function={} kind={} recovered={} ({})",
            i.function,
            i.kind.as_str(),
            i.recovered,
            i.detail
        );
    }
    for r in &faulted.records {
        println!("  {:<8} {}", r.function, r.outcome.as_str());
    }
    assert!(faulted.artifact("cube").expect("still compiled").degraded);

    // The closing act: where did the cycles go?  A healthy run folded
    // into flamegraph.pl/speedscope stacks, the same view of a trapping
    // run (the stack tracker survives the trap — the folded output shows
    // exactly which call path burned cycles before the fault), and the
    // whole pipeline + batch timeline as a Chrome trace.
    println!("\n=== profiling: folded stacks of a healthy run (exptl) ===\n");
    let mut c3 = Compiler::new();
    c3.compile_str(
        "(defun exptl (x n a)
                      (cond ((zerop n) a)
                            ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                            (t (exptl (* x x) (floor (/ n 2)) a))))",
    )
    .expect("compiles");
    let mut prof = c3.machine();
    prof.profile = Some(Box::new(ExecProfile::new()));
    prof.run(
        "exptl",
        &[Value::Fixnum(3), Value::Fixnum(10), Value::Fixnum(1)],
    )
    .expect("runs");
    print!("{}", prof.folded_stacks().expect("profile attached"));
    println!("\n{}", prof.stats_report());

    println!("=== profiling: folded stacks of the trapping run (outer -> boom) ===\n");
    let mut crash2 = c2.machine();
    crash2.profile = Some(Box::new(ExecProfile::new()));
    crash2
        .run("outer", &[Value::Fixnum(5)])
        .expect_err("still traps");
    print!("{}", crash2.folded_stacks().expect("profile attached"));

    println!("\n=== chrome trace: load this JSON in chrome://tracing or Perfetto ===\n");
    let trace = s1lisp_bench::chrome_trace();
    let events = s1lisp_trace::chrome::validate_trace(&trace).expect("valid trace-event JSON");
    let text = trace.to_string();
    println!("{} events, {} bytes; first 200 bytes:", events, text.len());
    println!("{}…", &text[..text.len().min(200)]);

    // The closing act: the whole pipeline as a resident service.  An
    // in-process daemon, two tenants whose namespaces disagree about
    // whether `cell` is special, and an SLO verdict on every response.
    println!("\n=== the compile server: two tenants, one daemon ===\n");
    use s1lisp_server::{CompileServer, ServeClient, ServerConfig};
    let handle = CompileServer::new(ServerConfig::default())
        .serve_tcp(0)
        .expect("bind an ephemeral port");
    let addr = format!("127.0.0.1:{}", handle.port());
    let shared = "(defun poke (x) (let ((cell (+ x 21))) (* cell 2)))";

    let mut alpha = ServeClient::connect(&addr).expect("connect");
    alpha.hello("alpha", None).expect("hello");
    alpha
        .compile("decls", "(proclaim (quote (special cell)))")
        .expect("proclaim");
    let a = alpha.compile("lib", shared).expect("compile");

    let mut beta = ServeClient::connect(&addr).expect("connect");
    beta.hello("beta", None).expect("hello");
    let b = beta.compile("lib", shared).expect("compile");

    for (who, resp) in [("alpha", &a), ("beta", &b)] {
        println!(
            "{who}: ok={} degraded={} queue_wait_us={} wall_us={}",
            resp.ok, resp.slo.degraded, resp.slo.queue_wait_us, resp.slo.wall_us
        );
    }
    let assembly = |r: &s1lisp_server::Response| match &r.body {
        s1lisp_server::Body::Compile { artifacts, .. } => artifacts[0].assembly.clone(),
        _ => unreachable!("compile response"),
    };
    assert_ne!(
        assembly(&a),
        assembly(&b),
        "alpha proclaimed cell special; its poke deep-binds where beta's is lexical"
    );
    let run = alpha.run("poke", &["0"]).expect("run");
    println!(
        "alpha (run poke 0) => {:?}  [same value from beta: {:?}]",
        run.body,
        beta.run("poke", &["0"]).expect("run").body
    );
    handle.shutdown();
    handle.join();
    println!("daemon drained and joined cleanly");

    // The closing act: the same function through both backends.  The
    // 13-pass middle end is shared; only the emission tail differs —
    // S-1 registers and TNs on one side, a flat bytecode frame on the
    // other — and the two engines must agree on every value.
    println!("\n=== two backends, one middle end: exptl for S-1 and bytecode ===\n");
    let exptl = "(defun exptl (base exp acc)
                   (if (zerop exp) acc
                       (exptl base (- exp 1) (* acc base))))";
    let mut s1_c = Compiler::new();
    s1_c.compile_str(exptl).expect("compile for S-1");
    let mut bc_c = Compiler::new();
    bc_c.backend = s1lisp::BackendKind::Bytecode;
    bc_c.compile_str(exptl).expect("compile for bytecode");

    println!("--- S-1 backend (registers, TNs, tensioned branches) ---");
    print!("{}", s1_c.disassemble("exptl").expect("s1 listing"));
    println!("\n--- bytecode backend (fixed-width ops, constant pool) ---");
    print!("{}", bc_c.disassemble("exptl").expect("bytecode listing"));

    let s1_a = s1_c.artifact("exptl").expect("s1 artifact");
    let bc_a = bc_c.artifact("exptl").expect("bytecode artifact");
    println!(
        "\ndossier diff: backend {} vs {}, {} vs {} insns; salted option \
         fingerprints {:016x} vs {:016x} (the cache partition key)",
        s1_a.backend,
        bc_a.backend,
        s1_a.insns,
        bc_a.insns,
        s1_c.options_fingerprint(),
        bc_c.options_fingerprint(),
    );
    let args = [Value::Fixnum(2), Value::Fixnum(10), Value::Fixnum(1)];
    let on_s1 = s1_c.machine().run("exptl", &args).expect("s1 run");
    let on_bc = bc_c.evaluator().run("exptl", &args).expect("bytecode run");
    assert_eq!(on_s1, on_bc, "the cross-backend oracle's contract");
    println!("(exptl 2 10 1) => {on_s1} on the simulator, {on_bc} on the evaluator — agreed");
}
