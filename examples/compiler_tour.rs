//! A guided tour of the compiler on the paper's §7 worked example
//! (`testfn`): phase table, back-translation, transformation transcript,
//! the generated parenthesized assembly — the full Table 1 → Table 4
//! journey — and the observability surfaces (phase telemetry, execution
//! statistics, opcode profile).
//!
//! ```sh
//! cargo run --example compiler_tour
//! ```

use s1lisp::{phases, Compiler, PhaseStatus, Value};
use s1lisp_s1sim::ExecProfile;

const TESTFN: &str = "
(defun frotz (a b c) '())
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))";

fn main() {
    println!("=== Phase structure (Table 1) ===\n");
    for p in phases() {
        let mark = match p.status {
            PhaseStatus::Implemented => " ",
            PhaseStatus::OptionalExtension => "+",
            PhaseStatus::Subsumed => "~",
        };
        let bracket = if p.bracketed_in_paper {
            "[bracketed in 1982]"
        } else {
            ""
        };
        println!("{mark} {:<36} {:<20} {}", p.name, bracket, p.module);
    }

    let mut compiler = Compiler::new();
    compiler.enable_trace();
    compiler.compile_str(TESTFN).expect("compiles");
    let f = compiler.function("testfn").expect("compiled");

    println!("\n=== testfn, converted to the internal tree (back-translated) ===\n");
    println!("{}", f.converted);

    println!("\n=== source-level transformation transcript (§7 style) ===\n");
    println!("{}", f.transcript);

    println!(
        "=== after optimization ({} transformations) ===\n",
        f.transformations
    );
    println!("{}", f.optimized);

    println!("\n=== generated S-1 code (parenthesized assembly, Table 4 style) ===\n");
    println!("{}", compiler.disassemble("testfn").expect("defined"));

    println!(
        "total code size: {} thirty-six-bit words across {} instructions",
        compiler.code_size_words(),
        compiler.program().total_insns()
    );

    println!("\n=== compilation telemetry (per-phase spans, wall time, counters) ===\n");
    print!("{}", compiler.trace_report());

    println!("\n=== one profiled run of (testfn 1.5 2.5 0.5) ===\n");
    let mut m = compiler.machine();
    m.profile = Some(Box::new(ExecProfile::new()));
    let v = m
        .run(
            "testfn",
            &[Value::Flonum(1.5), Value::Flonum(2.5), Value::Flonum(0.5)],
        )
        .expect("runs");
    println!("value: {v}\n");
    print!("{}", m.stats);
    if let Some(p) = m.profile.take() {
        println!("\nretired opcodes:");
        let mut ops: Vec<(&str, u64)> = p.opcodes.iter().map(|(&k, &v)| (k, v)).collect();
        ops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (op, n) in ops {
            println!("  {op:<14} {n:>8}");
        }
    }
}
