//! Symbolic differentiation — the kind of symbolic workload (MACSYMA)
//! that motivated making Lisp fast in the first place (§1 of the paper).
//!
//! The differentiator is written *in the compiled Lisp dialect* and run
//! on the S-1 simulator; the host program just feeds it expressions.
//!
//! ```sh
//! cargo run --example symbolic
//! ```

use s1lisp::{Compiler, Value};
use s1lisp_reader::{read_str, Interner};

/// d/dx for expressions built from +, *, constants, and symbols.
const DERIV: &str = "
(defun deriv (e x)
  (cond ((numberp e) 0)
        ((symbolp e) (if (eq e x) 1 0))
        ((eq (car e) '+)
         (list '+ (deriv (cadr e) x) (deriv (caddr e) x)))
        ((eq (car e) '*)
         (list '+
               (list '* (cadr e) (deriv (caddr e) x))
               (list '* (caddr e) (deriv (cadr e) x))))
        (t (error 'unknown-operator))))

(defun simplify (e)
  (cond ((atom e) e)
        (t (simp1 (car e) (simplify (cadr e)) (simplify (caddr e))))))

(defun simp1 (op a b)
  (cond ((eq op '+)
         (cond ((equal a 0) b)
               ((equal b 0) a)
               ((and (numberp a) (numberp b)) (+ a b))
               (t (list '+ a b))))
        ((eq op '*)
         (cond ((equal a 0) 0)
               ((equal b 0) 0)
               ((equal a 1) b)
               ((equal b 1) a)
               ((and (numberp a) (numberp b)) (* a b))
               (t (list '* a b))))
        (t (list op a b))))

(defun deriv-simplified (e x) (simplify (deriv e x)))
";

fn main() {
    let mut compiler = Compiler::new();
    compiler.compile_str(DERIV).expect("compiles");
    let mut machine = compiler.machine();

    let mut interner = Interner::new();
    let mut differentiate = |expr: &str| {
        let datum = read_str(expr, &mut interner).expect("reads");
        let x = Value::from_datum(&read_str("x", &mut interner).unwrap());
        let e = Value::from_datum(&datum);
        let d = machine
            .run("deriv-simplified", &[e, x])
            .expect("differentiates");
        println!("d/dx {expr:<24} = {d}");
    };

    differentiate("(+ x 3)");
    differentiate("(* x x)");
    differentiate("(* 3 (* x x))");
    differentiate("(+ (* x x) (* 2 x))");
    differentiate("(* (+ x 1) (+ x 2))");

    println!(
        "\nsimulator: {} instructions, {} conses allocated, {} GCs",
        machine.stats.insns, machine.stats.heap.conses, machine.stats.heap.collections
    );
}
