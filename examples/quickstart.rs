//! Quickstart: compile two small functions, run them on the S-1
//! simulator, and peek at what the compiler did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use s1lisp::{Compiler, Value};

fn main() {
    let mut compiler = Compiler::new();
    compiler
        .compile_str(
            "(defun square (x) (* x x))
             (defun exptl (x n a)
               (cond ((zerop n) a)
                     ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                     (t (exptl (* x x) (floor (/ n 2)) a))))",
        )
        .expect("compiles");

    let mut machine = compiler.machine();
    let v = machine.run("square", &[Value::Fixnum(12)]).expect("runs");
    println!("(square 12) = {v}");

    let v = machine
        .run(
            "exptl",
            &[Value::Fixnum(2), Value::Fixnum(20), Value::Fixnum(1)],
        )
        .expect("runs");
    println!("(exptl 2 20 1) = {v}");
    println!(
        "tail calls: {} — frames pushed: {} (the paper's §2 claim: \
         tail-recursive calls are parameter-passing gotos)",
        machine.stats.tail_calls, machine.stats.max_call_depth
    );

    println!("\n--- back-translated internal tree for exptl ---");
    let f = compiler.function("exptl").expect("compiled");
    println!("{}", f.optimized);

    println!("\n--- generated S-1 code for square ---");
    println!("{}", compiler.disassemble("square").expect("defined"));
}
