//! A tiny read-eval-print loop over the compiled pipeline: every form you
//! type is macro-expanded, optimized, compiled to S-1 code, and executed
//! on the simulator.  `defun`s persist; try:
//!
//! ```text
//! (defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
//! (fib 20)
//! :code fib          ; disassemble
//! :tree fib          ; back-translated optimized tree
//! ```
//!
//! ```sh
//! echo '(+ 1 2)' | cargo run --example repl
//! ```

use std::io::{BufRead, Write};

use s1lisp::Compiler;

fn main() {
    let mut compiler = Compiler::new();
    let stdin = std::io::stdin();
    print!("s1lisp> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            print!("s1lisp> ");
            std::io::stdout().flush().ok();
            continue;
        }
        if let Some(name) = line.strip_prefix(":code ") {
            match compiler.disassemble(name.trim()) {
                Some(code) => println!("{code}"),
                None => println!("; {name} is not defined"),
            }
        } else if let Some(name) = line.strip_prefix(":tree ") {
            match compiler.function(name.trim()) {
                Some(f) => println!("{}", f.optimized),
                None => println!("; {name} is not defined"),
            }
        } else {
            match compiler.eval(line) {
                Ok(Ok(v)) => println!("{v}"),
                Ok(Err(trap)) => println!("; run-time error: {trap}"),
                Err(e) => println!("; compile error: {e}"),
            }
        }
        print!("s1lisp> ");
        std::io::stdout().flush().ok();
    }
    println!();
}
