//! The numeric side of the paper's thesis: "generate high-quality
//! numerical code" from Lisp (§1, §6).  Compiles a quadratic solver and a
//! typed polynomial kernel, then shows what representation analysis and
//! pdl numbers save.
//!
//! ```sh
//! cargo run --example numeric
//! ```

use s1lisp::{CodegenOptions, Compiler, Value};

const SRC: &str = "
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((two-a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) two-a)
                     (/ (- (- b) sd) two-a)))))))

(defun horner (x c3 c2 c1 c0)
  (declare (flonum x c3 c2 c1 c0))
  (+$f (*$f (+$f (*$f (+$f (*$f c3 x) c2) x) c1) x) c0))

(defun sum-horner (n)
  (declare (fixnum n))
  (prog (acc x)
    (setq acc 0.0 x 0.0)
    top
    (if (zerop n) (return acc))
    (setq acc (+$f acc (horner x 1.0 -2.0 3.0 -4.0)))
    (setq x (+$f x 0.001))
    (setq n (- n 1))
    (go top)))
";

fn fl(x: f64) -> Value {
    Value::Flonum(x)
}

fn run_config(name: &str, options: CodegenOptions) -> (Value, u64, u64) {
    let mut c = Compiler::new();
    c.codegen_options = options;
    c.compile_str(SRC).expect("compiles");
    let mut m = c.machine();
    let v = m.run("sum-horner", &[Value::Fixnum(10_000)]).expect(name);
    (v, m.stats.insns, m.stats.heap.flonums)
}

fn main() {
    let mut c = Compiler::new();
    c.compile_str(SRC).expect("compiles");
    let mut m = c.machine();

    println!("--- quadratic roots ---");
    for (a, b, cc) in [(1.0, -3.0, 2.0), (1.0, 2.0, 5.0), (2.0, 4.0, 2.0)] {
        let v = m.run("quadratic", &[fl(a), fl(b), fl(cc)]).expect("solves");
        println!("{a}x² + {b}x + {cc} = 0   →  {v}");
    }

    println!("\n--- representation analysis & pdl numbers on a 10k-iteration kernel ---");
    let (v_full, insns_full, boxes_full) = run_config("full", CodegenOptions::default());
    let (v_norep, insns_norep, boxes_norep) = run_config(
        "no representation analysis",
        CodegenOptions {
            representation_analysis: false,
            ..CodegenOptions::default()
        },
    );
    assert_eq!(v_full, v_norep);
    println!("result: {v_full}");
    println!(
        "{:<36} {:>12} {:>14}",
        "configuration", "instructions", "flonum boxes"
    );
    println!(
        "{:<36} {:>12} {:>14}",
        "representation analysis ON", insns_full, boxes_full
    );
    println!(
        "{:<36} {:>12} {:>14}",
        "representation analysis OFF", insns_norep, boxes_norep
    );
    println!(
        "\nanalysis keeps intermediate floats raw: {:.1}× fewer instructions, {:.1}× fewer heap boxes",
        insns_norep as f64 / insns_full as f64,
        boxes_norep as f64 / boxes_full.max(1) as f64
    );
}
